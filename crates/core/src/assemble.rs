//! Shared matrix-assembly state used by every engine.

use crate::Result;
use nanosim_circuit::{Circuit, MnaSystem};
use nanosim_numeric::sparse::{CsrMatrix, TripletMatrix};

/// Pre-stamped circuit matrices: the linear part of `G`, the full `C`, and
/// the MNA structure. Engines clone `g_lin` each step/iteration and append
/// their device linearization stamps.
#[derive(Debug, Clone)]
pub(crate) struct CircuitMatrices {
    pub mna: MnaSystem,
    /// Linear (time-invariant) part of `G` as triplets.
    pub g_lin: TripletMatrix,
    /// Capacitance/inductance matrix `C` as triplets (for re-stamping).
    pub c_triplets: TripletMatrix,
    /// `C` in CSR form (for `C·x` products).
    pub c_csr: CsrMatrix,
}

impl CircuitMatrices {
    pub fn new(circuit: &Circuit) -> Result<Self> {
        let mna = MnaSystem::new(circuit)?;
        let dim = mna.dim();
        let mut g_lin = TripletMatrix::new(dim, dim);
        mna.stamp_linear_g(&mut g_lin);
        let mut c_triplets = TripletMatrix::new(dim, dim);
        mna.stamp_c(&mut c_triplets);
        let c_csr = c_triplets.to_csr();
        Ok(CircuitMatrices {
            mna,
            g_lin,
            c_triplets,
            c_csr,
        })
    }
}

/// Names of all MNA variables in column order: non-ground node names first,
/// then `I(<element>)` for every branch-current variable.
pub(crate) fn mna_var_names(mna: &MnaSystem) -> Vec<String> {
    let circuit = mna.circuit();
    let mut names: Vec<String> = Vec::with_capacity(mna.dim());
    for (id, name) in circuit.nodes().iter() {
        if !id.is_ground() {
            names.push(name.to_string());
        }
    }
    for (i, e) in circuit.elements().iter().enumerate() {
        if mna.branch_var(i).is_some() {
            names.push(format!("I({})", e.name()));
        }
    }
    names
}

/// Branch voltage `v(+) - v(-)` of a two-terminal binding given the MNA
/// solution vector.
#[inline]
pub(crate) fn branch_voltage(x: &[f64], var_plus: Option<usize>, var_minus: Option<usize>) -> f64 {
    let vp = var_plus.map_or(0.0, |i| x[i]);
    let vm = var_minus.map_or(0.0, |i| x[i]);
    vp - vm
}

/// Adjusts an already-stamped right-hand side so the named independent
/// source takes `value` instead of its waveform value at `time`. Used by the
/// DC sweep engines.
pub(crate) fn override_source_rhs(
    mna: &MnaSystem,
    element_name: &str,
    value: f64,
    time: f64,
    rhs: &mut [f64],
) -> bool {
    let circuit = mna.circuit();
    for (i, e) in circuit.elements().iter().enumerate() {
        if e.name() != element_name {
            continue;
        }
        if let Some(wf) = mna.source_waveform(i) {
            let delta = value - wf.value(time);
            if let Some(br) = mna.branch_var(i) {
                // Voltage source: branch row carries the source value.
                rhs[br] += delta;
            } else {
                // Current source: node injections.
                if let Some(p) = mna.var_of_node(e.node_plus()) {
                    rhs[p] -= delta;
                }
                if let Some(m) = mna.var_of_node(e.nodes()[1]) {
                    rhs[m] += delta;
                }
            }
            return true;
        }
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_devices::sources::SourceWaveform;

    fn divider() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-12).unwrap();
        ckt
    }

    #[test]
    fn matrices_have_consistent_shapes() {
        let m = CircuitMatrices::new(&divider()).unwrap();
        assert_eq!(m.mna.dim(), 3);
        assert_eq!(m.g_lin.rows(), 3);
        assert_eq!(m.c_csr.rows(), 3);
        assert_eq!(m.c_csr.get(1, 1), 1e-12);
    }

    #[test]
    fn branch_voltage_handles_ground() {
        let x = [2.0, 0.5];
        assert_eq!(branch_voltage(&x, Some(0), Some(1)), 1.5);
        assert_eq!(branch_voltage(&x, Some(0), None), 2.0);
        assert_eq!(branch_voltage(&x, None, Some(1)), -0.5);
        assert_eq!(branch_voltage(&x, None, None), 0.0);
    }

    #[test]
    fn override_voltage_source() {
        let ckt = divider();
        let m = CircuitMatrices::new(&ckt).unwrap();
        let mut rhs = vec![0.0; 3];
        m.mna.stamp_rhs(0.0, &mut rhs);
        assert_eq!(rhs[2], 1.0);
        assert!(override_source_rhs(&m.mna, "V1", 2.5, 0.0, &mut rhs));
        assert_eq!(rhs[2], 2.5);
        assert!(!override_source_rhs(&m.mna, "R1", 2.5, 0.0, &mut rhs));
        assert!(!override_source_rhs(&m.mna, "nope", 2.5, 0.0, &mut rhs));
    }

    #[test]
    fn override_current_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_current_source("I1", a, Circuit::GROUND, SourceWaveform::dc(1e-3))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let m = CircuitMatrices::new(&ckt).unwrap();
        let mut rhs = vec![0.0; 1];
        m.mna.stamp_rhs(0.0, &mut rhs);
        assert_eq!(rhs[0], -1e-3);
        assert!(override_source_rhs(&m.mna, "I1", 3e-3, 0.0, &mut rhs));
        assert_eq!(rhs[0], -3e-3);
    }
}
