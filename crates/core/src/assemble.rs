//! Shared matrix-assembly state used by every engine.
//!
//! [`CircuitMatrices`] holds the per-circuit constants; [`AssemblyWorkspace`]
//! holds the per-run mutable state that makes the hot loops allocation-free:
//! a CSR matrix whose sparsity pattern (linear G + every possible device
//! stamp + optionally C) is computed **once per circuit**, value-scatter maps
//! from each device to its slots in that pattern, a cached LU factorization
//! that is *refactored* (values-only) instead of re-analyzed every solve,
//! and reusable right-hand-side/solution buffers.

use crate::Result;
use nanosim_circuit::{Circuit, MnaSystem};
use nanosim_numeric::solve::{LinearSolver, LuStats, PrecisionMode, SparseLuSolver};
use nanosim_numeric::sparse::{CsrMatrix, OrderingChoice, TripletMatrix};
use nanosim_numeric::{FaultPlan, FlopCounter};

/// Pre-stamped circuit matrices: the linear part of `G`, the full `C`, and
/// the MNA structure. Engines build an [`AssemblyWorkspace`] from these and
/// re-stamp only the device values each step/iteration.
#[derive(Debug, Clone)]
pub(crate) struct CircuitMatrices {
    pub mna: MnaSystem,
    /// Linear (time-invariant) part of `G` as triplets.
    pub g_lin: TripletMatrix,
    /// Capacitance/inductance matrix `C` as triplets (for re-stamping).
    pub c_triplets: TripletMatrix,
    /// `C` in CSR form (for `C·x` products).
    pub c_csr: CsrMatrix,
}

impl CircuitMatrices {
    pub fn new(circuit: &Circuit) -> Result<Self> {
        let mna = MnaSystem::new(circuit)?;
        let dim = mna.dim();
        let mut g_lin = TripletMatrix::new(dim, dim);
        mna.stamp_linear_g(&mut g_lin);
        let mut c_triplets = TripletMatrix::new(dim, dim);
        mna.stamp_c(&mut c_triplets);
        let c_csr = c_triplets.to_csr();
        Ok(CircuitMatrices {
            mna,
            g_lin,
            c_triplets,
            c_csr,
        })
    }
}

/// Value-slot indices of one two-terminal conductance stamp
/// (`+g` at `(p,p)`/`(m,m)`, `-g` at `(p,m)`/`(m,p)`); `None` = grounded
/// terminal, no slot.
#[derive(Debug, Clone, Copy, Default)]
struct CondSites {
    pp: Option<usize>,
    pm: Option<usize>,
    mp: Option<usize>,
    mm: Option<usize>,
}

impl CondSites {
    fn lookup(a: &CsrMatrix, p: Option<usize>, m: Option<usize>) -> CondSites {
        let (pm, mp) = match (p, m) {
            (Some(i), Some(j)) => (Some(slot(a, i, j)), Some(slot(a, j, i))),
            _ => (None, None),
        };
        CondSites {
            pp: p.map(|i| slot(a, i, i)),
            pm,
            mp,
            mm: m.map(|i| slot(a, i, i)),
        }
    }
}

/// Value-slot indices of one MOSFET's stamps: the drain–source conductance
/// plus (when Newton transconductance stamps are enabled) the `gm` entries
/// at `(d,g)`, `(d,s)`, `(s,g)`, `(s,s)`.
#[derive(Debug, Clone, Copy, Default)]
struct MosSites {
    cond: CondSites,
    dg: Option<usize>,
    ds: Option<usize>,
    sg: Option<usize>,
    ss: Option<usize>,
}

fn slot(a: &CsrMatrix, r: usize, c: usize) -> usize {
    a.position(r, c)
        .expect("stamp site present in prebuilt pattern")
}

/// Per-run assembly + solve state: a prebuilt sparsity pattern re-stamped in
/// place, a pattern-reusing cached LU, and reusable vectors. After the first
/// solve, one `begin → stamp → solve` cycle performs zero heap allocations.
#[derive(Debug, Clone)]
pub(crate) struct AssemblyWorkspace {
    /// The system matrix; pattern fixed, values rewritten per assembly.
    a: CsrMatrix,
    /// Linear-G values aligned with `a`'s value slots (structural zeros at
    /// device/C sites).
    base_vals: Vec<f64>,
    /// `(slot, c)` pairs; `add_c_over_h` adds `c/h` at each slot.
    c_sites: Vec<(usize, f64)>,
    /// Stamp sites per nonlinear two-terminal binding.
    nl_sites: Vec<CondSites>,
    /// Stamp sites per MOSFET binding.
    mos_sites: Vec<MosSites>,
    /// Caching sparse solver (factor once, refactor on same pattern).
    solver: SparseLuSolver,
    /// Armed fault-injection plan: advanced once per factor-solve, right
    /// after assembly and before factorization (so injected faults hit the
    /// exact matrix the solver sees). `None` — the production default —
    /// costs one branch per solve.
    fault: Option<FaultPlan>,
}

/// The value-and-scatter half of a workspace: everything derived from the
/// circuit's matrices except the caching solver. Split out so
/// [`AssemblyWorkspace::rebind`] can rebuild it for a same-pattern circuit
/// while the solver (and its symbolic analysis) survives.
#[derive(Debug)]
struct PatternParts {
    a: CsrMatrix,
    base_vals: Vec<f64>,
    c_sites: Vec<(usize, f64)>,
    nl_sites: Vec<CondSites>,
    mos_sites: Vec<MosSites>,
}

impl PatternParts {
    fn build(mats: &CircuitMatrices, with_mos_gm: bool, with_c: bool) -> Self {
        let mna = &mats.mna;
        let dim = mna.dim();
        let mut trip: Vec<(usize, usize, f64)> = mats.g_lin.iter().cloned().collect();
        let push_pair = |t: &mut Vec<(usize, usize, f64)>, p: Option<usize>, m: Option<usize>| {
            if let Some(i) = p {
                t.push((i, i, 0.0));
            }
            if let Some(i) = m {
                t.push((i, i, 0.0));
            }
            if let (Some(i), Some(j)) = (p, m) {
                t.push((i, j, 0.0));
                t.push((j, i, 0.0));
            }
        };
        for b in mna.nonlinear_bindings() {
            push_pair(&mut trip, b.var_plus, b.var_minus);
        }
        for m in mna.mosfet_bindings() {
            push_pair(&mut trip, m.var_drain, m.var_source);
            if with_mos_gm {
                if let Some(d) = m.var_drain {
                    if let Some(g) = m.var_gate {
                        trip.push((d, g, 0.0));
                    }
                    if let Some(s) = m.var_source {
                        trip.push((d, s, 0.0));
                    }
                }
                if let Some(s) = m.var_source {
                    if let Some(g) = m.var_gate {
                        trip.push((s, g, 0.0));
                    }
                    trip.push((s, s, 0.0));
                }
            }
        }
        if with_c {
            for &(r, c, _) in mats.c_triplets.iter() {
                trip.push((r, c, 0.0));
            }
        }
        let a = CsrMatrix::from_triplets(dim, dim, &trip);
        let base_vals = a.values().to_vec();

        let c_sites = if with_c {
            // Duplicate C triplets at one position are pre-summed so the
            // per-step loop touches each slot once.
            let mut summed: Vec<(usize, f64)> = Vec::new();
            for &(r, c, v) in mats.c_triplets.iter() {
                let s = slot(&a, r, c);
                match summed.iter_mut().find(|(slot, _)| *slot == s) {
                    Some((_, acc)) => *acc += v,
                    None => summed.push((s, v)),
                }
            }
            summed
        } else {
            Vec::new()
        };
        let nl_sites = mna
            .nonlinear_bindings()
            .iter()
            .map(|b| CondSites::lookup(&a, b.var_plus, b.var_minus))
            .collect();
        let mos_sites = mna
            .mosfet_bindings()
            .iter()
            .map(|m| {
                let cond = CondSites::lookup(&a, m.var_drain, m.var_source);
                let mut sites = MosSites {
                    cond,
                    ..MosSites::default()
                };
                if with_mos_gm {
                    if let Some(d) = m.var_drain {
                        sites.dg = m.var_gate.map(|g| slot(&a, d, g));
                        sites.ds = m.var_source.map(|s| slot(&a, d, s));
                    }
                    if let Some(s) = m.var_source {
                        sites.sg = m.var_gate.map(|g| slot(&a, s, g));
                        sites.ss = Some(slot(&a, s, s));
                    }
                }
                sites
            })
            .collect();

        PatternParts {
            a,
            base_vals,
            c_sites,
            nl_sites,
            mos_sites,
        }
    }
}

impl AssemblyWorkspace {
    /// Builds the workspace for a circuit. `with_mos_gm` reserves slots for
    /// the Newton transconductance stamps (NR/MLA engines); `with_c` merges
    /// the C pattern into the matrix so `G + C/h` systems assemble in place
    /// (transient engines); `ordering` selects the fill-reducing ordering
    /// the embedded sparse solver applies inside its cached symbolic
    /// analysis (the scatter maps are in original numbering either
    /// way — the solver permutes on scatter-in/solve-out, so per-step
    /// assembly stays zero-alloc and ordering-agnostic).
    pub fn new(
        mats: &CircuitMatrices,
        with_mos_gm: bool,
        with_c: bool,
        ordering: OrderingChoice,
    ) -> Self {
        let parts = PatternParts::build(mats, with_mos_gm, with_c);
        AssemblyWorkspace {
            a: parts.a,
            base_vals: parts.base_vals,
            c_sites: parts.c_sites,
            nl_sites: parts.nl_sites,
            mos_sites: parts.mos_sites,
            solver: SparseLuSolver::with_ordering(ordering),
            fault: None,
        }
    }

    /// Rebinds the workspace to a *different circuit with the same sparsity
    /// pattern*: rebuilds the base values and scatter maps from `mats`
    /// (built with the same `with_mos_gm`/`with_c` flags as this workspace)
    /// while keeping the cached solver — and with it the symbolic analysis
    /// and supernode plan — alive, so the next solve refactors instead of
    /// re-analyzing. Returns `false` (workspace untouched) when the new
    /// pattern differs; the caller must then build a fresh workspace.
    pub fn rebind(&mut self, mats: &CircuitMatrices, with_mos_gm: bool, with_c: bool) -> bool {
        let parts = PatternParts::build(mats, with_mos_gm, with_c);
        if parts.a.structure() != self.a.structure() {
            return false;
        }
        self.a = parts.a;
        self.base_vals = parts.base_vals;
        self.c_sites = parts.c_sites;
        self.nl_sites = parts.nl_sites;
        self.mos_sites = parts.mos_sites;
        true
    }

    /// Arms a deterministic fault-injection plan: each subsequent
    /// factor-solve advances the plan by one call, applying whatever
    /// faults are scheduled at that call number. Cloning the workspace
    /// clones the plan's position, so sharded sweeps replay the same fault
    /// schedule per chunk at every worker count.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// The armed fault plan, if any (for inspecting injected/missed
    /// counters after a run).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Advances the armed fault plan (if any) against the assembled
    /// matrix, returning an error for a scheduled singular pivot.
    fn apply_faults(&mut self) -> nanosim_numeric::Result<()> {
        if let Some(plan) = &mut self.fault {
            let action = plan.advance(&mut self.a);
            if let Some(pivot) = action.singular_pivot {
                return Err(nanosim_numeric::NumericError::SingularMatrix { pivot });
            }
            if action.degrade {
                self.solver.force_degraded();
            }
        }
        Ok(())
    }

    /// Starts a fresh assembly: resets the matrix values to the linear part
    /// of `G` (device and C slots back to zero).
    pub fn begin(&mut self) {
        self.a.values_mut().copy_from_slice(&self.base_vals);
    }

    /// Adds conductance `g` across nonlinear binding `i`'s terminals.
    pub fn stamp_nonlinear(&mut self, i: usize, g: f64) {
        Self::stamp_cond(self.a.values_mut(), &self.nl_sites[i], g);
    }

    /// Adds conductance `g` across MOSFET `k`'s drain–source terminals.
    pub fn stamp_mosfet_cond(&mut self, k: usize, g: f64) {
        let sites = self.mos_sites[k].cond;
        Self::stamp_cond(self.a.values_mut(), &sites, g);
    }

    /// Adds the Newton transconductance stamps of MOSFET `k` (requires the
    /// workspace to have been built `with_mos_gm`).
    pub fn stamp_mosfet_gm(&mut self, k: usize, gm: f64) {
        let sites = self.mos_sites[k];
        let vals = self.a.values_mut();
        if let Some(p) = sites.dg {
            vals[p] += gm;
        }
        if let Some(p) = sites.ds {
            vals[p] -= gm;
        }
        if let Some(p) = sites.sg {
            vals[p] -= gm;
        }
        if let Some(p) = sites.ss {
            vals[p] += gm;
        }
    }

    fn stamp_cond(vals: &mut [f64], sites: &CondSites, g: f64) {
        if let Some(p) = sites.pp {
            vals[p] += g;
        }
        if let Some(p) = sites.mm {
            vals[p] += g;
        }
        if let Some(p) = sites.pm {
            vals[p] -= g;
        }
        if let Some(p) = sites.mp {
            vals[p] -= g;
        }
    }

    /// Adds conductance `g` on the diagonal of the first `rows` rows (the
    /// node rows) wherever the pattern has a diagonal slot — the shunt
    /// behind the rescue ladder's gmin-stepping and pseudo-transient
    /// rungs. Rows without a diagonal slot (possible for a node touched
    /// only by branch-current constraints) are skipped, which is safe: the
    /// shunt is a regularization aid, not a correctness requirement.
    pub fn stamp_diag_shunt(&mut self, rows: usize, g: f64) {
        for r in 0..rows.min(self.a.rows()) {
            if let Some(p) = self.a.position(r, r) {
                self.a.values_mut()[p] += g;
            }
        }
    }

    /// Adds `C/h` over the merged C pattern (requires `with_c`).
    pub fn add_c_over_h(&mut self, h: f64, flops: &mut FlopCounter) {
        let vals = self.a.values_mut();
        for &(s, c) in &self.c_sites {
            vals[s] += c / h;
        }
        flops.div(self.c_sites.len() as u64);
    }

    /// Scales every assembled value by `alpha` (trapezoidal's `G/2`).
    pub fn scale_values(&mut self, alpha: f64, flops: &mut FlopCounter) {
        for v in self.a.values_mut() {
            *v *= alpha;
        }
        flops.mul(self.a.nnz() as u64);
    }

    /// The assembled matrix (for matvec products against the current state).
    pub fn matrix(&self) -> &CsrMatrix {
        &self.a
    }

    /// Snapshots the assembled values into `out` (e.g. the G-only values
    /// before `C/h` is added).
    pub fn snapshot_values(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(self.a.values());
    }

    /// Accumulates `y += alpha · A(vals)·x` where `vals` is a value snapshot
    /// over this workspace's pattern.
    pub fn matvec_acc_with(
        &self,
        vals: &[f64],
        alpha: f64,
        x: &[f64],
        y: &mut [f64],
        flops: &mut FlopCounter,
    ) {
        let (row_ptr, col_idx) = self.a.structure();
        debug_assert_eq!(vals.len(), col_idx.len());
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for p in row_ptr[r]..row_ptr[r + 1] {
                acc += vals[p] * x[col_idx[p]];
            }
            *yr += alpha * acc;
        }
        flops.fma(vals.len() as u64 + y.len() as u64);
    }

    /// Per-row sums of `|A(vals)|` over the first `out.len()` rows (the RC
    /// time-step constraint of the SWEC controller).
    pub fn row_abs_sums(&self, vals: &[f64], out: &mut [f64]) {
        let (row_ptr, _) = self.a.structure();
        for (r, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for p in row_ptr[r]..row_ptr[r + 1] {
                acc += vals[p].abs();
            }
            *o = acc;
        }
    }

    /// Factors (or refactors, when the cached symbolic analysis applies) the
    /// assembled matrix and solves into `x`.
    ///
    /// # Errors
    /// Propagates singular-matrix errors from the factorization.
    pub fn factor_solve(
        &mut self,
        rhs: &[f64],
        x: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> nanosim_numeric::Result<()> {
        self.apply_faults()?;
        self.solver.solve_into(&self.a, rhs, x, flops)
    }

    /// Batched variant of [`AssemblyWorkspace::factor_solve`]: one factor
    /// (or refactor) of the assembled matrix serves `nrhs` right-hand
    /// sides given column-major in `rhs` (`rhs[j*n..][..n]` is column
    /// `j`), solutions written column-major into `x`. The solver walks the
    /// factor structure once for the whole block; results are
    /// bit-identical to `nrhs` separate [`AssemblyWorkspace::factor_solve`]
    /// calls on the same assembled values.
    ///
    /// # Errors
    /// Propagates singular-matrix errors and shape mismatches.
    pub fn factor_solve_many(
        &mut self,
        rhs: &[f64],
        nrhs: usize,
        x: &mut Vec<f64>,
        flops: &mut FlopCounter,
    ) -> nanosim_numeric::Result<()> {
        self.apply_faults()?;
        self.solver.solve_many_into(&self.a, rhs, nrhs, x, flops)
    }

    /// Cumulative sparse-LU telemetry of the embedded solver: factor /
    /// refactor counts, the flop split between them, and the fill of the
    /// cached analysis. Engines delta-account this into
    /// [`crate::report::EngineStats`] via
    /// [`crate::report::EngineStats::absorb_lu`].
    pub fn lu_stats(&self) -> LuStats {
        self.solver.lu_stats()
    }

    /// Name of the fill ordering the solver applies ("natural", "rcm",
    /// "amd"; the configured tag while cold).
    pub fn ordering_name(&self) -> &'static str {
        self.solver.ordering_name()
    }

    /// Selects the working precision of the embedded solver's triangular
    /// solves (see [`PrecisionMode`]): `Mixed` runs f32 panel sweeps
    /// polished by f64 refinement, with automatic per-solve fallback.
    /// Factorizations always stay f64.
    pub fn set_precision(&mut self, mode: PrecisionMode) {
        self.solver.set_precision(mode);
    }

    /// The embedded solver's working precision.
    #[allow(dead_code)] // accessor kept for tests / diagnostics
    pub fn precision(&self) -> PrecisionMode {
        self.solver.precision()
    }
}

/// Names of all MNA variables in column order: non-ground node names first,
/// then `I(<element>)` for every branch-current variable.
pub(crate) fn mna_var_names(mna: &MnaSystem) -> Vec<String> {
    let circuit = mna.circuit();
    let mut names: Vec<String> = Vec::with_capacity(mna.dim());
    for (id, name) in circuit.nodes().iter() {
        if !id.is_ground() {
            names.push(name.to_string());
        }
    }
    for (i, e) in circuit.elements().iter().enumerate() {
        if mna.branch_var(i).is_some() {
            names.push(format!("I({})", e.name()));
        }
    }
    names
}

/// Branch voltage `v(+) - v(-)` of a two-terminal binding given the MNA
/// solution vector.
#[inline]
pub(crate) fn branch_voltage(x: &[f64], var_plus: Option<usize>, var_minus: Option<usize>) -> f64 {
    let vp = var_plus.map_or(0.0, |i| x[i]);
    let vm = var_minus.map_or(0.0, |i| x[i]);
    vp - vm
}

/// Validates that `source` names an *independent* V/I source that a DC
/// sweep can drive. Dependent (E/G/F/H) sources and passives have no
/// waveform to override — rejecting them here keeps
/// [`override_source_rhs`] from silently no-oping through a whole sweep.
pub(crate) fn require_sweepable_source(mna: &MnaSystem, source: &str) -> crate::Result<()> {
    let circuit = mna.circuit();
    let Some(index) = find_element_index(circuit, source) else {
        return Err(crate::SimError::InvalidConfig {
            context: format!("unknown sweep source `{source}`"),
        });
    };
    if mna.source_waveform(index).is_none() {
        return Err(crate::SimError::InvalidConfig {
            context: format!(
                "sweep source `{source}` is a `{}` element, not an independent V/I source",
                circuit.elements()[index].kind().type_tag()
            ),
        });
    }
    Ok(())
}

/// Element index by name — exact match first, then case-insensitive (SPICE
/// decks are case-insensitive, so `.dc v1 ...` must find `V1`). Shared by
/// [`require_sweepable_source`] and [`override_source_rhs`] so validation
/// and the per-point override always resolve the same element.
fn find_element_index(circuit: &nanosim_circuit::Circuit, name: &str) -> Option<usize> {
    circuit
        .elements()
        .iter()
        .position(|e| e.name() == name)
        .or_else(|| {
            circuit
                .elements()
                .iter()
                .position(|e| e.name().eq_ignore_ascii_case(name))
        })
}

/// Adjusts an already-stamped right-hand side so the named independent
/// source takes `value` instead of its waveform value at `time`. Used by the
/// DC sweep engines.
pub(crate) fn override_source_rhs(
    mna: &MnaSystem,
    element_name: &str,
    value: f64,
    time: f64,
    rhs: &mut [f64],
) -> bool {
    let circuit = mna.circuit();
    let Some(i) = find_element_index(circuit, element_name) else {
        return false;
    };
    let e = &circuit.elements()[i];
    if let Some(wf) = mna.source_waveform(i) {
        let delta = value - wf.value(time);
        if let Some(br) = mna.branch_var(i) {
            // Voltage source: branch row carries the source value.
            rhs[br] += delta;
        } else {
            // Current source: node injections.
            if let Some(p) = mna.var_of_node(e.node_plus()) {
                rhs[p] -= delta;
            }
            if let Some(m) = mna.var_of_node(e.nodes()[1]) {
                rhs[m] += delta;
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_devices::sources::SourceWaveform;

    fn divider() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-12).unwrap();
        ckt
    }

    #[test]
    fn matrices_have_consistent_shapes() {
        let m = CircuitMatrices::new(&divider()).unwrap();
        assert_eq!(m.mna.dim(), 3);
        assert_eq!(m.g_lin.rows(), 3);
        assert_eq!(m.c_csr.rows(), 3);
        assert_eq!(m.c_csr.get(1, 1), 1e-12);
    }

    #[test]
    fn branch_voltage_handles_ground() {
        let x = [2.0, 0.5];
        assert_eq!(branch_voltage(&x, Some(0), Some(1)), 1.5);
        assert_eq!(branch_voltage(&x, Some(0), None), 2.0);
        assert_eq!(branch_voltage(&x, None, Some(1)), -0.5);
        assert_eq!(branch_voltage(&x, None, None), 0.0);
    }

    #[test]
    fn override_voltage_source() {
        let ckt = divider();
        let m = CircuitMatrices::new(&ckt).unwrap();
        let mut rhs = vec![0.0; 3];
        m.mna.stamp_rhs(0.0, &mut rhs);
        assert_eq!(rhs[2], 1.0);
        assert!(override_source_rhs(&m.mna, "V1", 2.5, 0.0, &mut rhs));
        assert_eq!(rhs[2], 2.5);
        assert!(!override_source_rhs(&m.mna, "R1", 2.5, 0.0, &mut rhs));
        assert!(!override_source_rhs(&m.mna, "nope", 2.5, 0.0, &mut rhs));
    }

    #[test]
    fn sweep_source_resolution_is_case_insensitive() {
        let ckt = divider();
        let m = CircuitMatrices::new(&ckt).unwrap();
        assert!(require_sweepable_source(&m.mna, "V1").is_ok());
        assert!(require_sweepable_source(&m.mna, "v1").is_ok());
        assert!(require_sweepable_source(&m.mna, "V9").is_err());
        // Passives are not sweepable, whatever the case.
        assert!(require_sweepable_source(&m.mna, "r1").is_err());
        // The per-point override resolves the same element.
        let mut rhs = vec![0.0; 3];
        m.mna.stamp_rhs(0.0, &mut rhs);
        assert!(override_source_rhs(&m.mna, "v1", 2.5, 0.0, &mut rhs));
        assert_eq!(rhs[2], 2.5);
    }

    #[test]
    fn dependent_source_not_sweepable() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        ckt.add_vcvs("E1", b, Circuit::GROUND, a, Circuit::GROUND, 2.0)
            .unwrap();
        ckt.add_resistor("RL", b, Circuit::GROUND, 1e3).unwrap();
        let m = CircuitMatrices::new(&ckt).unwrap();
        let err = require_sweepable_source(&m.mna, "E1").unwrap_err();
        assert!(err.to_string().contains("independent"), "{err}");
    }

    #[test]
    fn armed_faults_fire_once_then_clear() {
        let m = CircuitMatrices::new(&divider()).unwrap();
        let mut ws = AssemblyWorkspace::new(&m, false, false, OrderingChoice::default());
        ws.arm_faults(FaultPlan::new().with_singular_pivot(0, 1));
        ws.begin();
        let mut rhs = vec![0.0; 3];
        m.mna.stamp_rhs(0.0, &mut rhs);
        let mut x = Vec::new();
        let mut flops = FlopCounter::new();
        let err = ws.factor_solve(&rhs, &mut x, &mut flops).unwrap_err();
        assert!(matches!(
            err,
            nanosim_numeric::NumericError::SingularMatrix { pivot: 1 }
        ));
        // The fault was one-shot: a clean re-assembly solves fine.
        ws.begin();
        ws.factor_solve(&rhs, &mut x, &mut flops).unwrap();
        assert_eq!(ws.fault_plan().unwrap().injected(), 1);
        // And the result matches an unfaulted workspace bit for bit.
        let mut clean = AssemblyWorkspace::new(&m, false, false, OrderingChoice::default());
        clean.begin();
        let mut xc = Vec::new();
        clean.factor_solve(&rhs, &mut xc, &mut flops).unwrap();
        assert_eq!(x, xc);
    }

    #[test]
    fn mixed_precision_workspace_matches_f64_to_refinement_tolerance() {
        let m = CircuitMatrices::new(&divider()).unwrap();
        let mut ws = AssemblyWorkspace::new(&m, false, false, OrderingChoice::default());
        assert_eq!(ws.precision(), PrecisionMode::F64);
        ws.set_precision(PrecisionMode::Mixed);
        assert_eq!(ws.precision(), PrecisionMode::Mixed);
        ws.begin();
        let mut rhs = vec![0.0; 3];
        m.mna.stamp_rhs(0.0, &mut rhs);
        let mut x = Vec::new();
        let mut flops = FlopCounter::new();
        ws.factor_solve(&rhs, &mut x, &mut flops).unwrap();
        let lu = ws.lu_stats();
        assert!(lu.f32_panel_solves >= 1, "mixed path ran: {lu:?}");
        assert_eq!(lu.precision_fallbacks, 0, "healthy deck never falls back");

        let mut f64_ws = AssemblyWorkspace::new(&m, false, false, OrderingChoice::default());
        f64_ws.begin();
        let mut xf = Vec::new();
        f64_ws.factor_solve(&rhs, &mut xf, &mut flops).unwrap();
        let scale = xf.iter().fold(0.0f64, |a, v| a.max(v.abs()));
        for (a, b) in x.iter().zip(xf.iter()) {
            assert!((a - b).abs() <= 1e-12 * scale.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn diag_shunt_stamps_node_rows() {
        let m = CircuitMatrices::new(&divider()).unwrap();
        let mut ws = AssemblyWorkspace::new(&m, false, false, OrderingChoice::default());
        ws.begin();
        let before: Vec<f64> = (0..2).map(|i| ws.matrix().get(i, i)).collect();
        ws.stamp_diag_shunt(2, 1e-3);
        for (i, b) in before.iter().enumerate() {
            assert!((ws.matrix().get(i, i) - b - 1e-3).abs() < 1e-15);
        }
    }

    #[test]
    fn rebind_same_pattern_refactors_instead_of_reanalyzing() {
        let m = CircuitMatrices::new(&divider()).unwrap();
        let mut ws = AssemblyWorkspace::new(&m, false, false, OrderingChoice::default());
        ws.begin();
        let mut rhs = vec![0.0; 3];
        m.mna.stamp_rhs(0.0, &mut rhs);
        let mut x = Vec::new();
        let mut flops = FlopCounter::new();
        ws.factor_solve(&rhs, &mut x, &mut flops).unwrap();
        assert_eq!(ws.lu_stats().full_factors, 1);

        // Same topology, different values: rebind keeps the analysis.
        let mut ckt2 = Circuit::new();
        let a = ckt2.node("a");
        let b = ckt2.node("b");
        ckt2.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(2.0))
            .unwrap();
        ckt2.add_resistor("R1", a, b, 2e3).unwrap();
        ckt2.add_resistor("R2", b, Circuit::GROUND, 2e3).unwrap();
        ckt2.add_capacitor("C1", b, Circuit::GROUND, 2e-12).unwrap();
        let m2 = CircuitMatrices::new(&ckt2).unwrap();
        assert!(ws.rebind(&m2, false, false));
        ws.begin();
        let mut rhs2 = vec![0.0; 3];
        m2.mna.stamp_rhs(0.0, &mut rhs2);
        ws.factor_solve(&rhs2, &mut x, &mut flops).unwrap();
        let stats = ws.lu_stats();
        assert_eq!(stats.full_factors, 1, "rebind must not force a re-analysis");
        assert_eq!(stats.refactors, 1);
        assert!((x[1] - 1.0).abs() < 1e-12, "divider midpoint at 2 V supply");

        // A different pattern is rejected and leaves the workspace intact.
        let mut ckt3 = Circuit::new();
        let a3 = ckt3.node("a");
        ckt3.add_voltage_source("V1", a3, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt3.add_resistor("R1", a3, Circuit::GROUND, 1e3).unwrap();
        let m3 = CircuitMatrices::new(&ckt3).unwrap();
        assert!(!ws.rebind(&m3, false, false));
        ws.begin();
        ws.factor_solve(&rhs2, &mut x, &mut flops).unwrap();
        assert_eq!(ws.lu_stats().full_factors, 1);
    }

    #[test]
    fn override_current_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_current_source("I1", a, Circuit::GROUND, SourceWaveform::dc(1e-3))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let m = CircuitMatrices::new(&ckt).unwrap();
        let mut rhs = vec![0.0; 1];
        m.mna.stamp_rhs(0.0, &mut rhs);
        assert_eq!(rhs[0], -1e-3);
        assert!(override_source_rhs(&m.mna, "I1", 3e-3, 0.0, &mut rhs));
        assert_eq!(rhs[0], -3e-3);
    }
}
