//! ACES-like piecewise-linear baseline engine (paper reference \[2\],
//! Le–Pileggi–Devgan, ICCAD 2003).
//!
//! The device I-V curve is tabulated into linear segments; each analysis
//! point stamps the **differential segment conductance** (the segment's
//! slope) plus a companion current source, non-iteratively. The paper's
//! Figure 3 contrasts exactly this linearization with SWEC: in an NDR
//! region the segment slope — and therefore the stamped conductance — is
//! *negative*, while SWEC's `I/V` secant stays positive. The engine keeps
//! the step small enough that the trajectory stays within one segment per
//! step (the "adaptive time step control mechanism together with the
//! current stepping approach" of \[2\]).

use crate::assemble::{
    branch_voltage, mna_var_names, override_source_rhs, require_sweepable_source, CircuitMatrices,
};
use crate::report::EngineStats;
use crate::waveform::{DcSweepResult, TransientResult};
use crate::{Result, SimError};
use nanosim_circuit::element::SharedDevice;
use nanosim_circuit::{Circuit, MnaSystem};
use nanosim_numeric::interp::PwlFunction;
use nanosim_numeric::sparse::SparseLu;
use nanosim_numeric::FlopCounter;
use std::time::Instant;

/// A piecewise-linear tabulation of a device I-V curve.
///
/// # Example
/// ```
/// use nanosim_circuit::element::SharedDevice;
/// use nanosim_core::pwl::PwlDeviceTable;
/// use nanosim_devices::rtd::Rtd;
/// use std::sync::Arc;
///
/// let rtd = Rtd::date2005();
/// let peak = rtd.peak().unwrap();
/// let device: SharedDevice = Arc::new(rtd);
/// let table = PwlDeviceTable::tabulate(&device, -1.0, 6.0, 200);
/// // Right after the peak the PWL segment slope is negative (Figure 3(a)).
/// assert!(table.segment_conductance(peak.voltage + 0.3) < 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PwlDeviceTable {
    table: PwlFunction,
}

impl PwlDeviceTable {
    /// Samples `device` on `[v_min, v_max]` into `segments + 1` breakpoints.
    ///
    /// # Panics
    /// Panics if `segments < 1` or `v_min >= v_max`.
    pub fn tabulate(device: &SharedDevice, v_min: f64, v_max: f64, segments: usize) -> Self {
        assert!(segments >= 1, "need at least one segment");
        assert!(v_min < v_max, "invalid voltage range");
        let flops = std::cell::RefCell::new(FlopCounter::new());
        let table = PwlFunction::from_samples(v_min, v_max, segments + 1, |v| {
            device.current(v, &mut flops.borrow_mut())
        })
        .expect("validated sampling parameters");
        PwlDeviceTable { table }
    }

    /// Interpolated current at `v` (clamped outside the tabulated range).
    pub fn current(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        flops.mul(2);
        flops.add(3);
        flops.div(1);
        self.table.eval(v)
    }

    /// Differential conductance of the segment containing `v` — negative in
    /// an NDR region (the Figure 3(a) linearization).
    pub fn segment_conductance(&self, v: f64) -> f64 {
        self.table.slope(v)
    }

    /// Companion model of the segment at `v`: `(g_seg, i_eq)` such that the
    /// branch is `i = g_seg·v + i_eq` within the segment.
    pub fn companion(&self, v: f64, flops: &mut FlopCounter) -> (f64, f64) {
        let g = self.segment_conductance(v);
        let i = self.current(v, flops);
        flops.fma(1);
        (g, i - g * v)
    }

    /// Width of the tabulation segments (V).
    pub fn segment_width(&self) -> f64 {
        let pts = self.table.points();
        (pts[pts.len() - 1].0 - pts[0].0) / (pts.len() - 1) as f64
    }

    /// Tabulated voltage range.
    pub fn range(&self) -> (f64, f64) {
        (self.table.x_min(), self.table.x_max())
    }
}

/// Options of the PWL engine.
#[derive(Debug, Clone, PartialEq)]
pub struct PwlOptions {
    /// Segments per device table.
    pub segments: usize,
    /// Tabulation range lower bound (V).
    pub v_min: f64,
    /// Tabulation range upper bound (V).
    pub v_max: f64,
    /// Parallel conductance keeping matrices nonsingular.
    pub gmin: f64,
    /// Minimum transient step before giving up.
    pub h_min: f64,
}

impl Default for PwlOptions {
    fn default() -> Self {
        PwlOptions {
            segments: 200,
            v_min: -8.0,
            v_max: 8.0,
            gmin: 1e-12,
            h_min: 1e-18,
        }
    }
}

/// The ACES-like piecewise-linear engine.
#[derive(Debug, Clone, Default)]
pub struct PwlEngine {
    opts: PwlOptions,
}

impl PwlEngine {
    /// Creates the engine with the given options.
    pub fn new(opts: PwlOptions) -> Self {
        PwlEngine { opts }
    }

    /// The engine options.
    pub fn options(&self) -> &PwlOptions {
        &self.opts
    }

    /// DC sweep: one linear solve per point with segment companions taken
    /// at the previous point's voltages (non-iterative, like \[2\]).
    ///
    /// # Errors
    /// Fails on invalid parameters or a singular stamped matrix — which
    /// *can* genuinely happen here when a negative segment conductance
    /// cancels the load, unlike with SWEC.
    pub fn run_dc_sweep(
        &self,
        circuit: &Circuit,
        source: &str,
        start: f64,
        stop: f64,
        step: f64,
    ) -> Result<DcSweepResult> {
        if step == 0.0 || !step.is_finite() || (stop - start) * step < 0.0 {
            return Err(SimError::InvalidConfig {
                context: format!("dc sweep {start}..{stop} with step {step}"),
            });
        }
        let t0 = Instant::now();
        let mats = CircuitMatrices::new(circuit)?;
        require_sweepable_source(&mats.mna, source)?;
        let tables = self.tabulate_all(&mats);
        let mut stats = EngineStats::new();
        let n_points = (((stop - start) / step).round() as i64 + 1).max(1) as usize;

        let var_names = mna_var_names(&mats.mna);
        let mut names = var_names.clone();
        for b in mats.mna.nonlinear_bindings() {
            names.push(format!("I({})", b.name));
        }
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(n_points); names.len()];
        let mut sweep = Vec::with_capacity(n_points);
        let mut x = vec![0.0; mats.mna.dim()];
        for k in 0..n_points {
            let value = start + step * k as f64;
            x = self.solve_point(&mats, &tables, Some((source, value)), &x, &mut stats)?;
            sweep.push(value);
            for (i, &xi) in x.iter().enumerate() {
                columns[i].push(xi);
            }
            let mut col = var_names.len();
            let mut flops = FlopCounter::new();
            for (bi, b) in mats.mna.nonlinear_bindings().iter().enumerate() {
                let v = branch_voltage(&x, b.var_plus, b.var_minus);
                columns[col].push(tables[bi].current(v, &mut flops));
                col += 1;
            }
            stats.flops += flops;
            stats.steps += 1;
        }
        stats.elapsed = t0.elapsed();
        Ok(DcSweepResult::new(sweep, names, columns, stats))
    }

    /// Transient analysis: backward Euler with segment companions, step
    /// halving whenever a device crosses more than one segment per step.
    ///
    /// # Errors
    /// Fails on invalid parameters, singular matrices or step underflow.
    pub fn run_transient(
        &self,
        circuit: &Circuit,
        tstep: f64,
        tstop: f64,
    ) -> Result<TransientResult> {
        if !(tstep > 0.0 && tstop > 0.0 && tstep <= tstop) {
            return Err(SimError::InvalidConfig {
                context: format!("transient needs 0 < tstep <= tstop (got {tstep}, {tstop})"),
            });
        }
        let t0 = Instant::now();
        let mats = CircuitMatrices::new(circuit)?;
        let mna = &mats.mna;
        let dim = mna.dim();
        let tables = self.tabulate_all(&mats);
        let mut stats = EngineStats::new();

        // Operating point via the same companion stamping, iterated a few
        // times (the tables are linear, so this settles fast).
        let mut x = vec![0.0; dim];
        for _ in 0..8 {
            x = self.solve_point(&mats, &tables, None, &x, &mut stats)?;
        }

        let names = mna_var_names(mna);
        let mut times = vec![0.0];
        let mut columns: Vec<Vec<f64>> = (0..dim).map(|i| vec![x[i]]).collect();
        let seg_w = tables
            .iter()
            .map(PwlDeviceTable::segment_width)
            .fold(f64::INFINITY, f64::min);

        let mut t = 0.0;
        let t_end = tstop * (1.0 - 1e-12);
        while t < t_end {
            let mut h = tstep.min(tstop - t);
            loop {
                if h < self.opts.h_min {
                    return Err(SimError::step_underflow(t, h));
                }
                let x_new = self.solve_step(&mats, &tables, &x, t, h, &mut stats)?;
                // Segment-crossing control: each device may move at most one
                // segment width per step.
                let mut ok = true;
                for (bi, b) in mna.nonlinear_bindings().iter().enumerate() {
                    let v_old = branch_voltage(&x, b.var_plus, b.var_minus);
                    let v_new = branch_voltage(&x_new, b.var_plus, b.var_minus);
                    if (v_new - v_old).abs() > tables[bi].segment_width() {
                        ok = false;
                        break;
                    }
                }
                if ok || seg_w.is_infinite() {
                    x = x_new;
                    break;
                }
                stats.rejected_steps += 1;
                h *= 0.5;
            }
            t += h;
            stats.steps += 1;
            times.push(t);
            for (i, c) in columns.iter_mut().enumerate() {
                c.push(x[i]);
            }
        }
        stats.flops += FlopCounter::new();
        stats.elapsed = t0.elapsed();
        Ok(TransientResult::new(times, names, columns, stats))
    }

    fn tabulate_all(&self, mats: &CircuitMatrices) -> Vec<PwlDeviceTable> {
        mats.mna
            .nonlinear_bindings()
            .iter()
            .map(|b| {
                PwlDeviceTable::tabulate(
                    &b.device,
                    self.opts.v_min,
                    self.opts.v_max,
                    self.opts.segments,
                )
            })
            .collect()
    }

    /// One DC solve with segment companions at `x0`.
    fn solve_point(
        &self,
        mats: &CircuitMatrices,
        tables: &[PwlDeviceTable],
        override_src: Option<(&str, f64)>,
        x0: &[f64],
        stats: &mut EngineStats,
    ) -> Result<Vec<f64>> {
        let mna = &mats.mna;
        let dim = mna.dim();
        let mut flops = FlopCounter::new();
        let mut g = mats.g_lin.clone();
        let mut rhs = vec![0.0; dim];
        mna.stamp_rhs(0.0, &mut rhs);
        if let Some((name, value)) = override_src {
            override_source_rhs(mna, name, value, 0.0, &mut rhs);
        }
        self.stamp_companions(mats, tables, x0, &mut g, &mut rhs, stats, &mut flops);
        let lu = SparseLu::factor(&g.to_csr(), &mut flops)?;
        let x = lu.solve(&rhs, &mut flops)?;
        stats.linear_solves += 1;
        stats.iterations += 1;
        stats.flops += flops;
        Ok(x)
    }

    /// One backward-Euler step with segment companions at `x0`.
    fn solve_step(
        &self,
        mats: &CircuitMatrices,
        tables: &[PwlDeviceTable],
        x0: &[f64],
        t: f64,
        h: f64,
        stats: &mut EngineStats,
    ) -> Result<Vec<f64>> {
        let mna = &mats.mna;
        let dim = mna.dim();
        let mut flops = FlopCounter::new();
        let mut g = mats.g_lin.clone();
        for &(r, c, v) in mats.c_triplets.iter() {
            g.push(r, c, v / h);
        }
        flops.div(mats.c_triplets.len() as u64);
        let mut rhs = vec![0.0; dim];
        mna.stamp_rhs(t + h, &mut rhs);
        mats.c_csr.matvec_acc(1.0 / h, x0, &mut rhs, &mut flops)?;
        self.stamp_companions(mats, tables, x0, &mut g, &mut rhs, stats, &mut flops);
        let lu = SparseLu::factor(&g.to_csr(), &mut flops)?;
        let x = lu.solve(&rhs, &mut flops)?;
        stats.linear_solves += 1;
        stats.flops += flops;
        Ok(x)
    }

    #[allow(clippy::too_many_arguments)]
    fn stamp_companions(
        &self,
        mats: &CircuitMatrices,
        tables: &[PwlDeviceTable],
        x0: &[f64],
        g: &mut nanosim_numeric::sparse::TripletMatrix,
        rhs: &mut [f64],
        stats: &mut EngineStats,
        flops: &mut FlopCounter,
    ) {
        let mna = &mats.mna;
        for (bi, b) in mna.nonlinear_bindings().iter().enumerate() {
            let v = branch_voltage(x0, b.var_plus, b.var_minus);
            let (g_seg, i_eq) = tables[bi].companion(v, flops);
            stats.device_evals += 1;
            MnaSystem::stamp_conductance(g, b.var_plus, b.var_minus, g_seg + self.opts.gmin);
            if let Some(p) = b.var_plus {
                rhs[p] -= i_eq;
            }
            if let Some(m) = b.var_minus {
                rhs[m] += i_eq;
            }
            flops.add(2);
        }
        // MOSFETs are stamped with their (positive) SWEC channel conductance
        // — [2]'s PWL treatment targets the nano-devices; the FET is not the
        // problem device.
        for m in mna.mosfet_bindings() {
            let vd = m.var_drain.map_or(0.0, |i| x0[i]);
            let vg = m.var_gate.map_or(0.0, |i| x0[i]);
            let vs = m.var_source.map_or(0.0, |i| x0[i]);
            let geq = m.model.geq(vg - vs, vd - vs, flops) + self.opts.gmin;
            stats.device_evals += 1;
            MnaSystem::stamp_conductance(g, m.var_drain, m.var_source, geq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_devices::rtd::Rtd;
    use nanosim_devices::sources::SourceWaveform;
    use nanosim_devices::traits::NonlinearTwoTerminal;
    use std::sync::Arc;

    fn rtd_table() -> PwlDeviceTable {
        let dev: SharedDevice = Arc::new(Rtd::date2005());
        PwlDeviceTable::tabulate(&dev, -1.0, 6.0, 350)
    }

    #[test]
    fn table_matches_device_current() {
        let t = rtd_table();
        let rtd = Rtd::date2005();
        let mut f = FlopCounter::new();
        for v in [0.3, 1.0, 2.7, 4.0, 5.5] {
            let exact = rtd.current(v, &mut f);
            let approx = t.current(v, &mut f);
            assert!((exact - approx).abs() < 2e-4, "v={v}: {exact} vs {approx}");
        }
    }

    #[test]
    fn figure3_contrast_pwl_negative_swec_positive() {
        // The heart of Figure 3: same device, same bias, opposite signs.
        let t = rtd_table();
        let rtd = Rtd::date2005();
        let mut f = FlopCounter::new();
        let peak = rtd.peak().unwrap();
        let v_ndr = peak.voltage + 0.4;
        assert!(t.segment_conductance(v_ndr) < 0.0, "PWL slope in NDR");
        assert!(
            rtd.equivalent_conductance(v_ndr, &mut f) > 0.0,
            "SWEC secant in NDR"
        );
        // And in PDR1 both are positive.
        assert!(t.segment_conductance(0.5) > 0.0);
    }

    #[test]
    fn companion_reproduces_segment_line() {
        let t = rtd_table();
        let mut f = FlopCounter::new();
        let v = 2.05;
        let (g, ieq) = t.companion(v, &mut f);
        let i_lin = g * v + ieq;
        assert!((i_lin - t.current(v, &mut f)).abs() < 1e-12);
    }

    #[test]
    fn segment_width_and_range() {
        let t = rtd_table();
        assert!((t.segment_width() - 0.02).abs() < 1e-12);
        assert_eq!(t.range(), (-1.0, 6.0));
    }

    fn rtd_divider() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("mid");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(0.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 50.0).unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        ckt
    }

    #[test]
    fn dc_sweep_tracks_rtd_curve() {
        let engine = PwlEngine::new(PwlOptions::default());
        let sweep = engine
            .run_dc_sweep(&rtd_divider(), "V1", 0.0, 5.0, 0.02)
            .unwrap();
        let iv = sweep.curve("I(X1)").unwrap();
        // The non-iterative companion lags the true curve by roughly one
        // sweep step, so allow a loose window around the true 3.3 V peak.
        let (v_peak, _) = iv.peak().unwrap();
        assert!(v_peak > 2.5 && v_peak < 4.5, "peak at {v_peak}");
    }

    #[test]
    fn transient_rc_sanity() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("out");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pwl(vec![(0.0, 0.0), (1e-12, 1.0), (1.0, 1.0)]).unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-12).unwrap();
        let r = PwlEngine::new(PwlOptions::default())
            .run_transient(&ckt, 0.02e-9, 5e-9)
            .unwrap();
        let out = r.waveform("out").unwrap();
        let expected = 1.0 - (-1.0f64).exp();
        assert!((out.value_at(1e-9) - expected).abs() < 0.02);
    }

    #[test]
    fn transient_rtd_ramp_with_segment_control() {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("mid");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pwl(vec![(0.0, 0.0), (10e-9, 5.0), (20e-9, 5.0)]).unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", a, b, 50.0).unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-13).unwrap();
        let r = PwlEngine::new(PwlOptions::default())
            .run_transient(&ckt, 0.05e-9, 20e-9)
            .unwrap();
        let end = r.waveform("mid").unwrap().final_value();
        assert!(end > 4.0 && end < 5.0, "end {end}");
        // The segment-crossing control had to shrink steps somewhere.
        assert!(r.stats.steps > 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let engine = PwlEngine::new(PwlOptions::default());
        let ckt = rtd_divider();
        assert!(engine.run_dc_sweep(&ckt, "V1", 0.0, 1.0, 0.0).is_err());
        assert!(engine.run_dc_sweep(&ckt, "zz", 0.0, 1.0, 0.1).is_err());
        assert!(engine.run_transient(&ckt, 1.0, 0.5).is_err());
    }
}
