//! The convergence-rescue ladder.
//!
//! When an operating-point or sweep-point solve fails — Newton oscillation,
//! fixed-point stagnation, or a singular/collapsed pivot — the engines do
//! not give up immediately. They climb a deterministic ladder of
//! progressively heavier continuation strategies, in a fixed order so two
//! runs of the same deck always attempt the same rungs:
//!
//! 1. [`RescueRung::DampedRetry`] — re-run the failed solve from a cold
//!    start with heavy iterate damping. Cheap; rescues mild oscillation.
//! 2. [`RescueRung::GminStep`] — gmin-stepping homotopy: solve with a
//!    large shunt conductance from every node to ground (which makes the
//!    Jacobian diagonally dominant), then relax the shunt decade by decade
//!    re-seeding each solve from the last.
//! 3. [`RescueRung::SourceStep`] — source-stepping: ramp every independent
//!    source from zero (where the zero solution is exact) up to full value
//!    in small increments, warm-starting each solve.
//! 4. [`RescueRung::PseudoTransient`] — pseudo-transient continuation:
//!    treat the DC problem as the steady state of an artificial transient
//!    and let the physical damping of the integration find the attractor.
//!
//! Every attempt is recorded in a [`RescueTrace`], which travels inside the
//! [`crate::error::Forensics`] payload of a terminal failure and feeds the
//! `rescues` / `rescue_rungs` counters of [`crate::EngineStats`]. The
//! ladder is *inactive* on healthy decks: it only runs after a failure
//! that would otherwise have been returned to the caller, so enabling it
//! cannot change the results of a deck that already converges.

use std::fmt;

/// One strategy of the convergence-rescue ladder, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RescueRung {
    /// Cold-start retry with heavy iterate damping.
    DampedRetry,
    /// Gmin-stepping homotopy (shunt conductance relaxed to zero).
    GminStep,
    /// Source-stepping (independent sources ramped from zero).
    SourceStep,
    /// Pseudo-transient continuation toward the DC attractor.
    PseudoTransient,
}

impl RescueRung {
    /// The full ladder, in the order the engines climb it.
    pub const LADDER: [RescueRung; 4] = [
        RescueRung::DampedRetry,
        RescueRung::GminStep,
        RescueRung::SourceStep,
        RescueRung::PseudoTransient,
    ];
}

impl fmt::Display for RescueRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RescueRung::DampedRetry => "damped-retry",
            RescueRung::GminStep => "gmin-step",
            RescueRung::SourceStep => "source-step",
            RescueRung::PseudoTransient => "pseudo-transient",
        })
    }
}

/// The outcome of attempting one rung during a rescue.
#[derive(Debug, Clone, PartialEq)]
pub struct RescueEvent {
    /// Which rung was attempted.
    pub rung: RescueRung,
    /// Whether this rung produced a converged solution.
    pub succeeded: bool,
    /// Short human-readable note (steps taken, last error, ...).
    pub detail: String,
}

/// Ordered record of every rung attempted while rescuing one failed solve.
///
/// An empty trace means the ladder never ran (the healthy path).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RescueTrace {
    events: Vec<RescueEvent>,
}

impl RescueTrace {
    /// An empty trace.
    pub fn new() -> Self {
        RescueTrace::default()
    }

    /// Appends one rung attempt.
    pub fn record(&mut self, rung: RescueRung, succeeded: bool, detail: impl Into<String>) {
        self.events.push(RescueEvent {
            rung,
            succeeded,
            detail: detail.into(),
        });
    }

    /// The recorded attempts, in order.
    pub fn events(&self) -> &[RescueEvent] {
        &self.events
    }

    /// Number of rungs attempted.
    pub fn rungs(&self) -> usize {
        self.events.len()
    }

    /// `true` when no rung was ever attempted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `true` when the rescue ended in a converged solution (i.e. the last
    /// attempted rung succeeded).
    pub fn succeeded(&self) -> bool {
        self.events.last().is_some_and(|e| e.succeeded)
    }
}

impl fmt::Display for RescueTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return f.write_str("no rescue attempted");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                f.write_str(" -> ")?;
            }
            write!(
                f,
                "{} ({}{})",
                e.rung,
                if e.succeeded { "ok" } else { "failed" },
                if e.detail.is_empty() {
                    String::new()
                } else {
                    format!(": {}", e.detail)
                }
            )?;
        }
        Ok(())
    }
}

/// Tuning knobs for the rescue ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct RescueOptions {
    /// Master switch. When `false` a failed solve returns its original
    /// error untouched.
    pub enabled: bool,
    /// Iterate damping factor used by the damped-retry rung (0 < d ≤ 1;
    /// smaller is heavier damping).
    pub damping: f64,
    /// Starting shunt conductance of the gmin-stepping rung (siemens).
    pub gmin_start: f64,
    /// Number of decades over which the gmin shunt is relaxed to zero.
    pub gmin_steps: usize,
    /// Number of increments of the source-stepping ramp.
    pub source_steps: usize,
    /// Number of artificial time steps of the pseudo-transient rung.
    pub ptran_steps: usize,
}

impl Default for RescueOptions {
    fn default() -> Self {
        RescueOptions {
            enabled: true,
            damping: 0.25,
            gmin_start: 1e-2,
            gmin_steps: 8,
            source_steps: 25,
            ptran_steps: 40,
        }
    }
}

impl RescueOptions {
    /// A ladder that never runs.
    pub fn disabled() -> Self {
        RescueOptions {
            enabled: false,
            ..RescueOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_order_is_fixed() {
        assert_eq!(RescueRung::LADDER[0], RescueRung::DampedRetry);
        assert_eq!(RescueRung::LADDER[3], RescueRung::PseudoTransient);
        // Ord agrees with escalation order.
        assert!(RescueRung::DampedRetry < RescueRung::GminStep);
        assert!(RescueRung::SourceStep < RescueRung::PseudoTransient);
    }

    #[test]
    fn trace_records_in_order_and_reports_outcome() {
        let mut t = RescueTrace::new();
        assert!(t.is_empty());
        assert!(!t.succeeded());
        t.record(RescueRung::DampedRetry, false, "still oscillating");
        t.record(RescueRung::GminStep, true, "converged at gmin 1e-9");
        assert_eq!(t.rungs(), 2);
        assert!(t.succeeded());
        assert_eq!(t.events()[0].rung, RescueRung::DampedRetry);
        let s = t.to_string();
        assert!(s.contains("damped-retry (failed"));
        assert!(s.contains("gmin-step (ok"));
    }

    #[test]
    fn default_options_are_sane() {
        let o = RescueOptions::default();
        assert!(o.enabled);
        assert!(o.damping > 0.0 && o.damping <= 1.0);
        assert!(o.gmin_start > 0.0);
        assert!(o.source_steps > 1);
        assert!(!RescueOptions::disabled().enabled);
    }
}
