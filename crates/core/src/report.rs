//! Engine statistics — the accounting behind the paper's Table I.

use nanosim_numeric::solve::LuStats;
use nanosim_numeric::FlopCounter;
use std::fmt;
use std::time::Duration;

/// Work performed by one engine run.
///
/// The floating point counts are gathered with the same rules in every
/// engine (solver FLOPs via `nanosim-numeric`, model-evaluation FLOPs via
/// the device implementations), so SWEC-vs-baseline ratios are meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Accepted time points / sweep points.
    pub steps: usize,
    /// Rejected (redone) steps.
    pub rejected_steps: usize,
    /// Newton (or fixed-point) iterations summed over all points.
    pub iterations: u64,
    /// Sparse/dense LU factorizations + solves performed.
    pub linear_solves: u64,
    /// Full (ordering + symbolic + numeric) sparse LU factorizations.
    pub full_factors: u64,
    /// Values-only refactorizations that reused a cached symbolic analysis.
    pub refactors: u64,
    /// Floating point operations spent in full factorizations (a subset of
    /// `flops`).
    pub factor_flops: u64,
    /// Floating point operations spent in refactorizations (a subset of
    /// `flops`).
    pub refactor_flops: u64,
    /// Floating point operations spent in triangular solves (a subset of
    /// `flops`) — the per-solve attribution behind the solve benches.
    pub solve_flops: u64,
    /// Iterative-refinement steps taken on degraded-pivot refactorizations
    /// (each one kept a cached analysis alive past a pivot decay instead
    /// of paying a full re-pivoting factorization).
    pub refinement_steps: u64,
    /// Stored nonzeros of `L + U` in the run's sparse-LU analysis (the
    /// largest seen when several analyses were involved; 0 when the run
    /// never factored).
    pub nnz_lu: u64,
    /// Fill ratio `nnz(L + U) / nnz(A)` of that analysis (1.0 = no
    /// fill-in; 0 when the run never factored).
    pub fill_ratio: f64,
    /// Multi-column supernodes of that analysis's blocked kernel plan.
    pub supernodes: u64,
    /// Factor columns covered by those supernodes.
    pub supernode_cols: u64,
    /// Single-precision panel solves performed by the mixed-precision
    /// ladder (initial f32 sweeps plus f32 correction solves; see
    /// [`LuStats::f32_panel_solves`]).
    pub f32_panel_solves: u64,
    /// Mixed-precision solves whose refinement failed to contract and
    /// fell back to the plain f64 path (0 on healthy decks — the bench
    /// smoke gates on this in CI).
    pub precision_fallbacks: u64,
    /// Batched ensemble factorizations: `BatchedLu` passes that advanced
    /// k same-pattern factors in lockstep (one per path chunk and step of
    /// an EM run with per-path parameter variation).
    pub batched_factors: u64,
    /// Nonlinear device model evaluations.
    pub device_evals: u64,
    /// Convergence rescues: points/steps that initially failed and were
    /// recovered by the rescue ladder (0 on a healthy run — the golden
    /// decks gate on this in CI).
    pub rescues: u64,
    /// Total rescue-ladder rungs climbed across all rescues (a rescue that
    /// needed damped-retry *and* gmin-stepping counts 2).
    pub rescue_rungs: u64,
    /// Smallest reciprocal pivot-growth ratio observed by the run's sparse
    /// LU factorizations (`+inf` when the run never factored). Values near
    /// 1.0 are well-conditioned pivot sequences; below `1e-6` the solver
    /// switched to refinement; below `1e-12` it declared collapse.
    pub min_recip_pivot: f64,
    /// Warning-severity diagnostics the session's preflight static
    /// analyzer reported for the circuit (0 with preflight off or a clean
    /// deck). A session property stamped onto every run, not per-run work.
    pub preflight_warnings: u64,
    /// Floating point operations (solves + model evaluations).
    pub flops: FlopCounter,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl Default for EngineStats {
    fn default() -> Self {
        EngineStats {
            steps: 0,
            rejected_steps: 0,
            iterations: 0,
            linear_solves: 0,
            full_factors: 0,
            refactors: 0,
            factor_flops: 0,
            refactor_flops: 0,
            solve_flops: 0,
            refinement_steps: 0,
            nnz_lu: 0,
            fill_ratio: 0.0,
            supernodes: 0,
            supernode_cols: 0,
            f32_panel_solves: 0,
            precision_fallbacks: 0,
            batched_factors: 0,
            device_evals: 0,
            rescues: 0,
            rescue_rungs: 0,
            min_recip_pivot: f64::INFINITY,
            preflight_warnings: 0,
            flops: FlopCounter::new(),
            elapsed: Duration::ZERO,
        }
    }
}

/// Summary verdict of a run's numerical health, computed from the
/// [`EngineStats`] counters by [`EngineStats::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthVerdict {
    /// No rescues, no refinement, pivot ratios comfortably above the
    /// degradation threshold.
    Healthy,
    /// The run completed but leaned on the numerical safety nets: pivot
    /// decay forced iterative refinement, or the reciprocal pivot ratio
    /// dipped below `1e-6`.
    Degraded,
    /// At least one point failed outright and was recovered by the
    /// convergence-rescue ladder.
    Rescued,
}

impl fmt::Display for HealthVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HealthVerdict::Healthy => "healthy",
            HealthVerdict::Degraded => "degraded",
            HealthVerdict::Rescued => "rescued",
        })
    }
}

impl EngineStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        EngineStats::default()
    }

    /// Average nonlinear iterations per accepted point (0 when no points).
    pub fn iterations_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.iterations as f64 / self.steps as f64
        }
    }

    /// Classifies the run's numerical health from the recorded counters.
    ///
    /// `Rescued` dominates `Degraded` dominates `Healthy`: a run that
    /// needed the ladder is flagged even when its final factorizations
    /// were pristine.
    pub fn health(&self) -> HealthVerdict {
        if self.rescues > 0 {
            HealthVerdict::Rescued
        } else if self.refinement_steps > 0 || self.min_recip_pivot < 1e-6 {
            HealthVerdict::Degraded
        } else {
            HealthVerdict::Healthy
        }
    }

    /// Merges another run's statistics into this one.
    pub fn merge(&mut self, other: &EngineStats) {
        self.steps += other.steps;
        self.rejected_steps += other.rejected_steps;
        self.iterations += other.iterations;
        self.linear_solves += other.linear_solves;
        self.full_factors += other.full_factors;
        self.refactors += other.refactors;
        self.factor_flops += other.factor_flops;
        self.refactor_flops += other.refactor_flops;
        self.solve_flops += other.solve_flops;
        self.refinement_steps += other.refinement_steps;
        // Fill/supernode diagnostics describe an analysis, not a quantity
        // of work: adopt the largest analysis seen, keeping its
        // (nnz_lu, fill_ratio, supernodes) tuple coherent (never mixing
        // one analysis's nnz with another's ratio).
        if other.nnz_lu > self.nnz_lu
            || (other.nnz_lu == self.nnz_lu && other.fill_ratio > self.fill_ratio)
        {
            self.nnz_lu = other.nnz_lu;
            self.fill_ratio = other.fill_ratio;
            self.supernodes = other.supernodes;
            self.supernode_cols = other.supernode_cols;
        }
        self.f32_panel_solves += other.f32_panel_solves;
        self.precision_fallbacks += other.precision_fallbacks;
        self.batched_factors += other.batched_factors;
        self.device_evals += other.device_evals;
        self.rescues += other.rescues;
        self.rescue_rungs += other.rescue_rungs;
        // Health minima are not quantities of work: merging keeps the worst
        // (smallest) ratio seen by either run.
        self.min_recip_pivot = self.min_recip_pivot.min(other.min_recip_pivot);
        // Preflight warnings describe the session's circuit, not work done
        // by a run: shards of the same session all carry the same count,
        // so max-folding (not summing) keeps the merged value truthful.
        self.preflight_warnings = self.preflight_warnings.max(other.preflight_warnings);
        self.flops += other.flops;
        self.elapsed += other.elapsed;
    }

    /// Delta-accounts a solver's cumulative [`LuStats`] into this run:
    /// counts and flop splits accumulate as `after - before` (workspaces
    /// are cached across analyses, so absolute counts would double-bill),
    /// while the fill diagnostics adopt the solver's current analysis.
    pub fn absorb_lu(&mut self, before: &LuStats, after: &LuStats) {
        self.full_factors += after.full_factors - before.full_factors;
        self.refactors += after.refactors - before.refactors;
        self.factor_flops += after.factor_flops - before.factor_flops;
        self.refactor_flops += after.refactor_flops - before.refactor_flops;
        self.solve_flops += after.solve_flops - before.solve_flops;
        self.refinement_steps += after.refinement_steps - before.refinement_steps;
        self.f32_panel_solves += after.f32_panel_solves - before.f32_panel_solves;
        self.precision_fallbacks += after.precision_fallbacks - before.precision_fallbacks;
        self.batched_factors += after.batched_factors - before.batched_factors;
        if after.nnz_lu > self.nnz_lu
            || (after.nnz_lu == self.nnz_lu && after.fill_ratio() > self.fill_ratio)
        {
            self.nnz_lu = after.nnz_lu;
            self.fill_ratio = after.fill_ratio();
            self.supernodes = after.supernodes;
            self.supernode_cols = after.supernode_cols;
        }
        // `after.min_recip_pivot` is the solver's lifetime minimum, which
        // already includes everything `before` saw — min-folding it is both
        // correct and idempotent across repeated absorptions.
        self.min_recip_pivot = self.min_recip_pivot.min(after.min_recip_pivot);
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The factor/refactor/solve flop split and the refinement count
        // print unconditionally (zeros included) so bench report bins show
        // one consistent table whatever the run did.
        write!(
            f,
            "{} steps ({} rejected), {} iterations, {} solves ({} factor / {} refactor, \
             {} refinement), lu flops {} factor / {} refactor / {} solve, \
             lu nnz {} (fill {:.2}x, {} supernodes over {} cols), \
             {} f32 panel solves ({} precision fallbacks), {} batched factors, \
             {} device evals, \
             {} rescues ({} rungs), min pivot ratio {:.1e}, health {}, \
             {} preflight warnings, {}, {:.3} ms",
            self.steps,
            self.rejected_steps,
            self.iterations,
            self.linear_solves,
            self.full_factors,
            self.refactors,
            self.refinement_steps,
            self.factor_flops,
            self.refactor_flops,
            self.solve_flops,
            self.nnz_lu,
            self.fill_ratio,
            self.supernodes,
            self.supernode_cols,
            self.f32_panel_solves,
            self.precision_fallbacks,
            self.batched_factors,
            self.device_evals,
            self.rescues,
            self.rescue_rungs,
            self.min_recip_pivot,
            self.health(),
            self.preflight_warnings,
            self.flops,
            self.elapsed.as_secs_f64() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let s = EngineStats::new();
        assert_eq!(s.steps, 0);
        assert_eq!(s.flops.total(), 0);
        assert_eq!(s.iterations_per_step(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EngineStats::new();
        a.steps = 10;
        a.iterations = 30;
        a.flops.add(100);
        let mut b = EngineStats::new();
        b.steps = 5;
        b.iterations = 10;
        b.rejected_steps = 2;
        b.flops.mul(50);
        a.merge(&b);
        assert_eq!(a.steps, 15);
        assert_eq!(a.iterations, 40);
        assert_eq!(a.rejected_steps, 2);
        assert_eq!(a.flops.total(), 150);
    }

    #[test]
    fn iterations_per_step_average() {
        let mut s = EngineStats::new();
        s.steps = 4;
        s.iterations = 10;
        assert!((s.iterations_per_step() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn absorb_lu_is_delta_based() {
        let mut s = EngineStats::new();
        let before = LuStats {
            full_factors: 2,
            refactors: 10,
            factor_flops: 100,
            refactor_flops: 50,
            solve_flops: 7,
            refinement_steps: 0,
            nnz_lu: 40,
            nnz_a: 20,
            supernodes: 3,
            supernode_cols: 9,
            ..LuStats::default()
        };
        let after = LuStats {
            full_factors: 3,
            refactors: 25,
            factor_flops: 180,
            refactor_flops: 90,
            solve_flops: 27,
            refinement_steps: 2,
            nnz_lu: 40,
            nnz_a: 20,
            supernodes: 3,
            supernode_cols: 9,
            f32_panel_solves: 6,
            precision_fallbacks: 1,
            min_recip_pivot: 1e-3,
            ..LuStats::default()
        };
        s.absorb_lu(&before, &after);
        assert_eq!(s.full_factors, 1);
        assert_eq!(s.refactors, 15);
        assert_eq!(s.factor_flops, 80);
        assert_eq!(s.refactor_flops, 40);
        assert_eq!(s.solve_flops, 20);
        assert_eq!(s.refinement_steps, 2);
        assert_eq!(s.f32_panel_solves, 6);
        assert_eq!(s.precision_fallbacks, 1);
        assert_eq!(s.batched_factors, 0);
        assert_eq!(s.supernodes, 3);
        assert_eq!(s.supernode_cols, 9);
        assert_eq!(s.nnz_lu, 40);
        assert!((s.fill_ratio - 2.0).abs() < 1e-12);
        assert_eq!(s.min_recip_pivot, 1e-3);
        // Merging keeps the largest analysis's coherent (nnz, fill) pair —
        // never the small analysis's higher ratio paired with the large
        // analysis's nnz — and sums the work.
        let mut other = EngineStats::new();
        other.nnz_lu = 10;
        other.fill_ratio = 3.0;
        other.refactor_flops = 1;
        s.merge(&other);
        assert_eq!(s.nnz_lu, 40);
        assert!((s.fill_ratio - 2.0).abs() < 1e-12);
        assert_eq!(s.refactor_flops, 41);
        // A larger analysis replaces the pair wholesale.
        let mut bigger = EngineStats::new();
        bigger.nnz_lu = 100;
        bigger.fill_ratio = 1.5;
        s.merge(&bigger);
        assert_eq!(s.nnz_lu, 100);
        assert!((s.fill_ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let mut s = EngineStats::new();
        s.steps = 7;
        s.device_evals = 3;
        let out = s.to_string();
        assert!(out.contains("7 steps"));
        assert!(out.contains("3 device evals"));
        assert!(out.contains("0 rescues"));
        assert!(out.contains("0 f32 panel solves (0 precision fallbacks)"));
        assert!(out.contains("0 batched factors"));
        assert!(out.contains("health healthy"));
        assert!(out.contains("0 preflight warnings"));
    }

    #[test]
    fn merge_max_folds_preflight_warnings() {
        let mut a = EngineStats::new();
        a.preflight_warnings = 2;
        let mut b = EngineStats::new();
        b.preflight_warnings = 2;
        a.merge(&b);
        // Same-session shards don't double-count the shared report.
        assert_eq!(a.preflight_warnings, 2);
        a.merge(&EngineStats::new());
        assert_eq!(a.preflight_warnings, 2);
    }

    #[test]
    fn health_verdict_ladder() {
        let mut s = EngineStats::new();
        assert_eq!(s.health(), HealthVerdict::Healthy);
        assert_eq!(s.min_recip_pivot, f64::INFINITY);
        s.min_recip_pivot = 0.5;
        assert_eq!(s.health(), HealthVerdict::Healthy);
        s.refinement_steps = 1;
        assert_eq!(s.health(), HealthVerdict::Degraded);
        s.refinement_steps = 0;
        s.min_recip_pivot = 1e-9;
        assert_eq!(s.health(), HealthVerdict::Degraded);
        s.rescues = 1;
        assert_eq!(s.health(), HealthVerdict::Rescued);
    }

    #[test]
    fn merge_folds_health_counters() {
        let mut a = EngineStats::new();
        a.min_recip_pivot = 0.3;
        let mut b = EngineStats::new();
        b.rescues = 2;
        b.rescue_rungs = 5;
        b.min_recip_pivot = 1e-8;
        a.merge(&b);
        assert_eq!(a.rescues, 2);
        assert_eq!(a.rescue_rungs, 5);
        assert_eq!(a.min_recip_pivot, 1e-8);
        // Merging a run that never factored leaves the minimum alone.
        a.merge(&EngineStats::new());
        assert_eq!(a.min_recip_pivot, 1e-8);
    }
}
