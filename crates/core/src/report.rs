//! Engine statistics — the accounting behind the paper's Table I.

use nanosim_numeric::FlopCounter;
use std::fmt;
use std::time::Duration;

/// Work performed by one engine run.
///
/// The floating point counts are gathered with the same rules in every
/// engine (solver FLOPs via `nanosim-numeric`, model-evaluation FLOPs via
/// the device implementations), so SWEC-vs-baseline ratios are meaningful.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Accepted time points / sweep points.
    pub steps: usize,
    /// Rejected (redone) steps.
    pub rejected_steps: usize,
    /// Newton (or fixed-point) iterations summed over all points.
    pub iterations: u64,
    /// Sparse/dense LU factorizations + solves performed.
    pub linear_solves: u64,
    /// Full (symbolic + numeric) sparse LU factorizations.
    pub full_factors: u64,
    /// Values-only refactorizations that reused a cached symbolic analysis.
    pub refactors: u64,
    /// Nonlinear device model evaluations.
    pub device_evals: u64,
    /// Floating point operations (solves + model evaluations).
    pub flops: FlopCounter,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl EngineStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        EngineStats::default()
    }

    /// Average nonlinear iterations per accepted point (0 when no points).
    pub fn iterations_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.iterations as f64 / self.steps as f64
        }
    }

    /// Merges another run's statistics into this one.
    pub fn merge(&mut self, other: &EngineStats) {
        self.steps += other.steps;
        self.rejected_steps += other.rejected_steps;
        self.iterations += other.iterations;
        self.linear_solves += other.linear_solves;
        self.full_factors += other.full_factors;
        self.refactors += other.refactors;
        self.device_evals += other.device_evals;
        self.flops += other.flops;
        self.elapsed += other.elapsed;
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steps ({} rejected), {} iterations, {} solves ({} factor / {} refactor), \
             {} device evals, {}, {:.3} ms",
            self.steps,
            self.rejected_steps,
            self.iterations,
            self.linear_solves,
            self.full_factors,
            self.refactors,
            self.device_evals,
            self.flops,
            self.elapsed.as_secs_f64() * 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zero() {
        let s = EngineStats::new();
        assert_eq!(s.steps, 0);
        assert_eq!(s.flops.total(), 0);
        assert_eq!(s.iterations_per_step(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EngineStats::new();
        a.steps = 10;
        a.iterations = 30;
        a.flops.add(100);
        let mut b = EngineStats::new();
        b.steps = 5;
        b.iterations = 10;
        b.rejected_steps = 2;
        b.flops.mul(50);
        a.merge(&b);
        assert_eq!(a.steps, 15);
        assert_eq!(a.iterations, 40);
        assert_eq!(a.rejected_steps, 2);
        assert_eq!(a.flops.total(), 150);
    }

    #[test]
    fn iterations_per_step_average() {
        let mut s = EngineStats::new();
        s.steps = 4;
        s.iterations = 10;
        assert!((s.iterations_per_step() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let mut s = EngineStats::new();
        s.steps = 7;
        s.device_evals = 3;
        let out = s.to_string();
        assert!(out.contains("7 steps"));
        assert!(out.contains("3 device evals"));
    }
}
