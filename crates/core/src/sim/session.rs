//! The [`Simulator`] session: one circuit, many analyses, shared solver
//! state.

use crate::assemble::{
    branch_voltage, mna_var_names, require_sweepable_source, AssemblyWorkspace, CircuitMatrices,
};
use crate::em::EmEngine;
use crate::error::Forensics;
use crate::mla::MlaEngine;
use crate::pwl::PwlEngine;
use crate::report::EngineStats;
use crate::sim::dataset::{AnalysisKind, Axis, Dataset};
use crate::sim::plan::ExecPlan;
use crate::sim::request::{
    Analysis, BaselineRequest, DcSweep, EmEnsemble, Mla, Op, Pwl, Transient,
};
use crate::swec::dc::DcBuffers;
use crate::swec::{DcMode, SwecDcSweep, SwecTransient};
use crate::{Result, SimError};
use nanosim_circuit::Circuit;
use nanosim_numeric::parallel::{try_par_map, try_par_map_partial};
use nanosim_numeric::solve::{LuStats, PrecisionMode};
use nanosim_numeric::sparse::OrderingChoice;
use nanosim_numeric::{Budget, BudgetMeter, CancelToken, FlopCounter};
use std::time::Instant;

/// Sweep points per shard chunk. Chunk boundaries are a function of the
/// point index only (never of the worker count), which is what keeps
/// sharded DC sweeps bit-identical at any parallelism level — the same
/// contract as [`crate::em::PATH_CHUNK`] for Monte-Carlo ensembles.
pub const SWEEP_CHUNK: usize = 16;

/// Non-iterative warm-up solves a shard performs to approach its first
/// point from the sweep's start value (the per-shard continuation ramp).
const WARM_START_RAMP: usize = 8;

/// What the session does with the preflight static-analysis report
/// ([`nanosim_circuit::lint`]) computed when it opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreflightMode {
    /// Run the analyzer; error-severity diagnostics abort session
    /// construction with [`SimError::Preflight`] before any matrix is
    /// assembled. Warnings are kept and surface in [`EngineStats`]. The
    /// default.
    #[default]
    Enforce,
    /// Run the analyzer and keep the report (warnings still surface), but
    /// never refuse a circuit — structurally singular decks proceed and
    /// fail numerically, which is what the `min_recip_pivot` cross-check
    /// tests exercise.
    WarnOnly,
    /// Skip the analyzer entirely; [`Simulator::preflight`] returns an
    /// empty report.
    Off,
}

/// Session-wide options applying to every analysis run through one
/// [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimOptions {
    /// Fill-reducing ordering for the session's sparse-LU pipeline. The
    /// default [`OrderingChoice::Auto`] picks AMD for systems of at least
    /// [`OrderingChoice::AUTO_AMD_THRESHOLD`] unknowns and the natural
    /// order below; [`OrderingChoice::Natural`] reproduces the
    /// pre-ordering pipeline bit-for-bit. The choice is applied inside the
    /// cached symbolic analyses of the session workspaces, so `swec` DC
    /// sweeps, transients and every analysis sharing those workspaces
    /// inherit it — `Dataset` results stay in original MNA numbering
    /// whatever the ordering, and [`crate::EngineStats`] reports the
    /// resulting `nnz_lu` / `fill_ratio`.
    pub ordering: OrderingChoice,
    /// Preflight static-analysis behavior (default: run and enforce).
    /// Preflight is pattern-only — it performs no factorization and no
    /// numeric solve, so results are bit-identical with it on or off.
    pub preflight: PreflightMode,
    /// Working precision of the session's sparse solves (default
    /// [`PrecisionMode::F64`]). [`PrecisionMode::Mixed`] runs panel solves
    /// in `f32` and polishes with `f64` iterative refinement to a residual
    /// of at most `1e-12` of scale, falling back to the full `f64` path
    /// (counted in [`LuStats::precision_fallbacks`]) whenever refinement
    /// stops contracting — accuracy is gated, only the work mix changes.
    /// Applied to every workspace the session creates, including sharded
    /// sweep clones.
    pub precision: PrecisionMode,
}

/// A simulation session bound to one circuit.
///
/// `Simulator::new` assembles the MNA structure once; every analysis run
/// through the session shares it, along with cached assembly workspaces
/// whose sparse-LU symbolic analyses survive across analyses (an `.op`
/// followed by a `.dc` refactors instead of re-analyzing). Analyses are
/// typed [`Analysis`] requests built with builders, every result is a
/// [`Dataset`], and scale-out is an [`ExecPlan`] — not a different engine.
///
/// # Example
/// ```
/// use nanosim_core::sim::{Analysis, ExecPlan, Simulator};
/// use nanosim_circuit::Circuit;
/// use nanosim_devices::rtd::Rtd;
/// use nanosim_devices::sources::SourceWaveform;
///
/// # fn main() -> Result<(), nanosim_core::SimError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let mid = ckt.node("mid");
/// ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(0.0))?;
/// ckt.add_resistor("R1", vin, mid, 50.0)?;
/// ckt.add_rtd("X1", mid, Circuit::GROUND, Rtd::date2005())?;
///
/// let mut sim = Simulator::new(ckt)?;
/// let sweep = sim.run(Analysis::dc_sweep("V1", 0.0, 2.5, 0.1))?;
/// assert_eq!(sweep.points(), 26);
/// // The same request sharded over 4 workers is bit-identical.
/// let sharded = sim.run(
///     Analysis::dc_sweep("V1", 0.0, 2.5, 0.1).plan(ExecPlan::sharded(4)),
/// )?;
/// assert_eq!(sweep.column("mid"), sharded.column("mid"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    circuit: Circuit,
    mats: CircuitMatrices,
    opts: SimOptions,
    /// Cached no-C assembly workspace (operating points, DC sweeps).
    dc_ws: Option<AssemblyWorkspace>,
    /// Cached with-C assembly workspace (transients).
    tran_ws: Option<AssemblyWorkspace>,
    /// Armed fault-injection plan; cloned onto every workspace the session
    /// creates (testing/robustness harness — see
    /// [`nanosim_numeric::FaultPlan`]).
    fault: Option<nanosim_numeric::FaultPlan>,
    /// Preflight lint report computed at session construction (empty when
    /// [`PreflightMode::Off`]).
    preflight: nanosim_circuit::LintReport,
    /// Run budget applied to every analysis (default: unlimited — the
    /// budget machinery is completely inert and results are bit-identical
    /// to an unbudgeted session).
    budget: Budget,
    /// Cooperative cancellation token shared with callers; tripping it
    /// stops any running analysis at its next checkpoint with
    /// [`SimError::BudgetExceeded`].
    cancel: CancelToken,
}

impl Simulator {
    /// Opens a session on `circuit` with default [`SimOptions`],
    /// assembling its MNA structure once.
    ///
    /// # Errors
    /// Propagates circuit validation / MNA construction failures.
    pub fn new(circuit: Circuit) -> Result<Simulator> {
        Self::with_options(circuit, SimOptions::default())
    }

    /// Opens a session with explicit [`SimOptions`] (e.g. a pinned
    /// [`OrderingChoice`] or a [`PreflightMode`]).
    ///
    /// Unless preflight is [`PreflightMode::Off`], the static analyzer
    /// runs here — before any matrix is assembled — and, under
    /// [`PreflightMode::Enforce`], error-severity diagnostics (guaranteed
    /// singular topologies, duplicate names, ...) abort construction with
    /// [`SimError::Preflight`].
    ///
    /// # Errors
    /// Returns [`SimError::Preflight`] for circuits the analyzer rejects,
    /// and propagates circuit validation / MNA construction failures.
    pub fn with_options(circuit: Circuit, opts: SimOptions) -> Result<Simulator> {
        let preflight = match opts.preflight {
            PreflightMode::Off => nanosim_circuit::LintReport::default(),
            PreflightMode::Enforce | PreflightMode::WarnOnly => {
                let report = nanosim_circuit::lint_circuit(&circuit);
                if opts.preflight == PreflightMode::Enforce && report.has_errors() {
                    return Err(SimError::Preflight(Box::new(report)));
                }
                report
            }
        };
        let mats = CircuitMatrices::new(&circuit)?;
        Ok(Simulator {
            circuit,
            mats,
            opts,
            dc_ws: None,
            tran_ws: None,
            fault: None,
            preflight,
            budget: Budget::unlimited(),
            cancel: CancelToken::new(),
        })
    }

    /// Sets the run budget applied to every subsequent analysis. The
    /// default is [`Budget::unlimited`]; with it, every checkpoint reduces
    /// to one relaxed atomic load and results are bit-identical to an
    /// unbudgeted session.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The session's run budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The session's cancellation token. Clone it (cloning shares the
    /// flag) and call [`CancelToken::cancel`] from another thread — or
    /// before [`Simulator::run`] — to stop analyses at their next
    /// deterministic checkpoint with [`SimError::BudgetExceeded`].
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Replaces the session's cancellation token (e.g. a service layer
    /// installing one token per request so runs are individually
    /// cancellable).
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// Rebinds the session to a new circuit, preserving warm solver state
    /// when the new circuit has the same MNA sparsity pattern.
    ///
    /// This is the cross-request session-reuse hook: a parameter study (or
    /// a service-layer session pool) submits many circuits that differ
    /// only in component values. Rebinding refreshes the assembled base
    /// values and device scatter maps while keeping each cached workspace's
    /// solver — symbolic analysis, fill ordering and supernode plan — so
    /// the next analysis *refactors* instead of re-analyzing. Returns
    /// `Ok(true)` when at least one warmed workspace survived the swap
    /// (every subsequent solve reuses its analysis); `Ok(false)` means the
    /// session was rebound cold (no warm workspaces, or a sparsity-pattern
    /// mismatch forced a rebuild).
    ///
    /// Preflight runs on the new circuit under the session's configured
    /// [`PreflightMode`] exactly as in [`Simulator::with_options`]; on a
    /// preflight or assembly error the session keeps its previous circuit
    /// and remains usable.
    ///
    /// # Errors
    /// Returns [`SimError::Preflight`] for circuits the analyzer rejects
    /// under [`PreflightMode::Enforce`], and propagates circuit validation
    /// / MNA construction failures.
    ///
    /// # Example
    /// ```
    /// use nanosim_circuit::parse_netlist;
    /// use nanosim_core::{Analysis, Simulator};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let a = parse_netlist("V1 in 0 DC 1\nR1 in out 100\nR2 out 0 100\n.end\n")?;
    /// let b = parse_netlist("V1 in 0 DC 1\nR1 in out 220\nR2 out 0 100\n.end\n")?;
    /// let mut sim = Simulator::new(a.circuit)?;
    /// let cold = sim.run(Analysis::op())?;
    /// assert_eq!(cold.stats.full_factors, 1);
    /// assert!(sim.rebind(b.circuit)?); // warm: same sparsity pattern
    /// let warm = sim.run(Analysis::op())?;
    /// assert_eq!(warm.stats.full_factors, 0); // values-only refactor
    /// # Ok(())
    /// # }
    /// ```
    pub fn rebind(&mut self, circuit: Circuit) -> Result<bool> {
        let preflight = match self.opts.preflight {
            PreflightMode::Off => nanosim_circuit::LintReport::default(),
            PreflightMode::Enforce | PreflightMode::WarnOnly => {
                let report = nanosim_circuit::lint_circuit(&circuit);
                if self.opts.preflight == PreflightMode::Enforce && report.has_errors() {
                    return Err(SimError::Preflight(Box::new(report)));
                }
                report
            }
        };
        let mats = CircuitMatrices::new(&circuit)?;
        let had_warm = self.dc_ws.is_some() || self.tran_ws.is_some();
        let mut all_rebound = true;
        if let Some(mut ws) = self.dc_ws.take() {
            if ws.rebind(&mats, false, false) {
                self.dc_ws = Some(ws);
            } else {
                all_rebound = false;
            }
        }
        if let Some(mut ws) = self.tran_ws.take() {
            if ws.rebind(&mats, false, true) {
                self.tran_ws = Some(ws);
            } else {
                all_rebound = false;
            }
        }
        self.circuit = circuit;
        self.mats = mats;
        self.preflight = preflight;
        Ok(had_warm && all_rebound)
    }

    /// The preflight lint report computed when the session opened (empty
    /// when preflight was [`PreflightMode::Off`]). Under
    /// [`PreflightMode::Enforce`] the report never contains errors — a
    /// session that constructed successfully passed.
    pub fn preflight(&self) -> &nanosim_circuit::LintReport {
        &self.preflight
    }

    /// Arms a deterministic fault-injection plan: every assembly workspace
    /// the session uses (existing and future) gets its own clone, so the
    /// scheduled faults fire at the same factorization calls regardless of
    /// how analyses share or clone workspaces. Testing harness — see
    /// [`nanosim_numeric::FaultPlan`].
    pub fn arm_faults(&mut self, plan: nanosim_numeric::FaultPlan) {
        if let Some(ws) = self.dc_ws.as_mut() {
            ws.arm_faults(plan.clone());
        }
        if let Some(ws) = self.tran_ws.as_mut() {
            ws.arm_faults(plan.clone());
        }
        self.fault = Some(plan);
    }

    /// Total faults actually injected so far across the session's
    /// workspaces (zero when no plan is armed or nothing has fired yet).
    pub fn injected_faults(&self) -> u64 {
        self.dc_ws
            .iter()
            .chain(self.tran_ws.iter())
            .filter_map(|ws| ws.fault_plan())
            .map(|p| p.injected())
            .sum()
    }

    /// The session's circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The session options.
    pub fn options(&self) -> &SimOptions {
        &self.opts
    }

    /// Name of the fill ordering the session's solver applies ("natural",
    /// "rcm", "amd"). Before the first analysis warms a workspace this is
    /// the configured choice's tag (`Auto` reports "auto" until resolved
    /// against the system size).
    pub fn ordering_name(&self) -> &'static str {
        self.dc_ws
            .as_ref()
            .or(self.tran_ws.as_ref())
            .map(|ws| ws.ordering_name())
            .unwrap_or_else(|| self.opts.ordering.name())
    }

    /// Names of all MNA variables in solution order (node voltages, then
    /// branch currents).
    pub fn var_names(&self) -> Vec<String> {
        mna_var_names(&self.mats.mna)
    }

    /// Runs one analysis and returns its [`Dataset`].
    ///
    /// # Errors
    /// Propagates request validation failures ([`SimError::InvalidConfig`])
    /// and engine failures.
    pub fn run(&mut self, analysis: impl Into<Analysis>) -> Result<Dataset> {
        let analysis = analysis.into();
        analysis.validate()?;
        // One meter per run: the deadline clock starts here and is shared
        // (via forks) by every engine, loop and sweep chunk the analysis
        // spawns. A pre-cancelled token or zero deadline trips right away.
        let meter = BudgetMeter::new(self.budget, self.cancel.clone());
        meter
            .checkpoint()
            .map_err(|stop| SimError::budget_exceeded(stop, "analysis start"))?;
        let mut ds = match analysis {
            Analysis::Op(op) => self.run_op(op, &meter),
            Analysis::DcSweep(sweep) => self.run_dc_sweep(sweep, &meter),
            Analysis::Transient(tran) => self.run_transient(tran, &meter),
            Analysis::EmEnsemble(em) => self.run_em(em, &meter),
            Analysis::Mla(mla) => self.run_mla(mla, &meter),
            Analysis::Pwl(pwl) => self.run_pwl(pwl),
        }?;
        ds.stats.preflight_warnings = self.preflight.warning_count() as u64;
        Ok(ds)
    }

    /// Lazily creates the no-C workspace, arming any session fault plan.
    fn ensure_dc_ws(&mut self) {
        if self.dc_ws.is_none() {
            let mut ws = AssemblyWorkspace::new(&self.mats, false, false, self.opts.ordering);
            ws.set_precision(self.opts.precision);
            if let Some(plan) = &self.fault {
                ws.arm_faults(plan.clone());
            }
            self.dc_ws = Some(ws);
        }
    }

    /// Lazily creates the with-C workspace, arming any session fault plan.
    fn ensure_tran_ws(&mut self) {
        if self.tran_ws.is_none() {
            let mut ws = AssemblyWorkspace::new(&self.mats, false, true, self.opts.ordering);
            ws.set_precision(self.opts.precision);
            if let Some(plan) = &self.fault {
                ws.arm_faults(plan.clone());
            }
            self.tran_ws = Some(ws);
        }
    }

    fn run_op(&mut self, op: Op, meter: &BudgetMeter) -> Result<Dataset> {
        let t0 = Instant::now();
        self.ensure_dc_ws();
        let ws = self.dc_ws.as_mut().expect("created above");
        let lu0 = ws.lu_stats();
        let engine = SwecDcSweep::new(op.options).with_meter(meter.fork());
        let mut stats = EngineStats::new();
        let values = engine.solve_op_ws(&self.mats, ws, &mut stats)?;
        stats.absorb_lu(&lu0, &ws.lu_stats());
        stats.steps += 1;
        stats.elapsed = t0.elapsed();
        let names = mna_var_names(&self.mats.mna);
        Ok(Dataset::from_op("swec", names, values, stats))
    }

    fn run_transient(&mut self, tran: Transient, meter: &BudgetMeter) -> Result<Dataset> {
        self.ensure_tran_ws();
        self.ensure_dc_ws();
        let ws = self.tran_ws.as_mut().expect("created above");
        let op_ws = self.dc_ws.as_mut().expect("created above");
        let engine = SwecTransient::new(tran.options).with_meter(meter.fork());
        let result = engine.run_with(&self.mats, ws, Some(op_ws), tran.tstep, tran.tstop)?;
        Ok(Dataset::from_transient("swec", result))
    }

    fn run_em(&mut self, em: EmEnsemble, meter: &BudgetMeter) -> Result<Dataset> {
        let mut options = em.options;
        // The plan owns scheduling: Serial runs one worker, Sharded{n} runs
        // n (`ExecPlan::sharded(0)` already resolved auto at build time).
        options.threads = em.plan.workers();
        let result = EmEngine::new(options)
            .with_meter(meter.fork())
            .run(&self.circuit, em.horizon)?;
        Ok(Dataset::from_em(result))
    }

    fn run_mla(&mut self, mla: Mla, meter: &BudgetMeter) -> Result<Dataset> {
        let engine = MlaEngine::new(mla.options).with_meter(meter.fork());
        match mla.request {
            BaselineRequest::DcSweep {
                source,
                start,
                stop,
                step,
            } => {
                let r = engine.run_dc_sweep(&self.circuit, &source, start, stop, step)?;
                Ok(Dataset::from_dc_sweep("mla", &source, r))
            }
            BaselineRequest::Transient { tstep, tstop } => {
                let r = engine.run_transient(&self.circuit, tstep, tstop)?;
                if let Some((t, outcome)) = r.failures.first() {
                    return Err(SimError::non_convergence(
                        *t,
                        format!(
                            "MLA transient: {} steps failed (first: {outcome:?})",
                            r.failures.len()
                        ),
                    ));
                }
                Ok(Dataset::from_transient("mla", r.result))
            }
        }
    }

    fn run_pwl(&mut self, pwl: Pwl) -> Result<Dataset> {
        let engine = PwlEngine::new(pwl.options);
        match pwl.request {
            BaselineRequest::DcSweep {
                source,
                start,
                stop,
                step,
            } => {
                let r = engine.run_dc_sweep(&self.circuit, &source, start, stop, step)?;
                Ok(Dataset::from_dc_sweep("pwl", &source, r))
            }
            BaselineRequest::Transient { tstep, tstop } => {
                let r = engine.run_transient(&self.circuit, tstep, tstop)?;
                Ok(Dataset::from_transient("pwl", r))
            }
        }
    }

    /// Sharded (or serial — same algorithm, one worker) SWEC DC sweep.
    ///
    /// The sweep is cut into fixed [`SWEEP_CHUNK`]-point chunks. The session
    /// workspace is first warmed with one assembly + solve at the sweep
    /// start, so every chunk clone inherits the same cached LU symbolic
    /// analysis and refactors instead of re-factoring. Chunk 0 reproduces
    /// the legacy serial sweep exactly (full fixed point at the first
    /// value, continuation after); later chunks warm-start with a forward
    /// non-iterative continuation ramp from the sweep start to the point
    /// *before* their range — tracking the same branch a serial
    /// continuation chain selects through NDR/hysteresis regions — then
    /// refine that point to self-consistency (keeping the ramp iterate at a
    /// genuine bistability fold) and continue like the serial sweep would.
    /// Because chunk boundaries and warm-starts depend only on the point
    /// index, results are bit-identical for every worker count.
    ///
    /// All chunks' *first* ramp points share one state (`x = 0`, the
    /// warmed `Geq(0)` matrix), so they are computed up front by a single
    /// batched multi-RHS solve ([`AssemblyWorkspace::factor_solve_many`])
    /// before the fan-out — one refactor and one factor traversal replace
    /// one refactor per chunk, bit-identically.
    fn run_dc_sweep(&mut self, req: DcSweep, meter: &BudgetMeter) -> Result<Dataset> {
        let DcSweep {
            source,
            start,
            stop,
            step,
            options,
            plan,
        } = req;
        if step == 0.0 || !step.is_finite() || (stop - start) * step < 0.0 {
            return Err(SimError::InvalidConfig {
                context: format!("dc sweep {start}..{stop} with step {step}"),
            });
        }
        require_sweepable_source(&self.mats.mna, &source)?;
        let t0 = Instant::now();
        self.ensure_dc_ws();
        let engine = SwecDcSweep::new(options);
        let mut run_meter = meter.fork();
        let mut warm_stats = EngineStats::new();
        let warm_lu = {
            // Warm the session workspace with one assembly + solve at the
            // sweep start (the matrix the first chunk assembles first), so
            // every chunk clone starts from the same cached symbolic
            // analysis and refactors instead of paying a full factor.
            let ws = self.dc_ws.as_mut().expect("created above");
            let lu0 = ws.lu_stats();
            let mut buf = DcBuffers::default();
            let x0 = vec![0.0; self.mats.mna.dim()];
            engine.solve_noniterative_ws(
                &self.mats,
                ws,
                &mut buf,
                Some((&source, start)),
                &x0,
                &mut warm_stats,
                &mut run_meter.fork(),
            )?;
            let warm_lu = ws.lu_stats();
            warm_stats.absorb_lu(&lu0, &warm_lu);
            warm_lu
        };
        let n_points = ((stop - start) / step).round() as i64 + 1;
        let n_points = n_points.max(1) as usize;
        let values: Vec<f64> = (0..n_points).map(|k| start + step * k as f64).collect();
        let n_chunks = n_points.div_ceil(SWEEP_CHUNK);

        // The result shape is known up front: charge the whole payload
        // (axis + every output column) before any chunk work is fanned out,
        // so a byte budget too small for the sweep fails immediately and
        // identically at every worker count.
        let n_cols = 1
            + self.mats.mna.dim()
            + self.mats.mna.nonlinear_bindings().len()
            + self.mats.mna.mosfet_bindings().len();
        run_meter
            .charge_bytes(8 * (n_points as u64) * (n_cols as u64))
            .map_err(|stop| {
                SimError::budget_exceeded(stop, format!("dc sweep of {n_points} points"))
            })?;

        // Every chunk past the first begins its continuation ramp at the
        // same state (`x = 0`, `Geq(0)` — exactly the warmed matrix), so
        // all first ramp points are computed up front with **one** batched
        // multi-RHS solve instead of one refactor per chunk. Each seed is
        // bit-identical to the solve the chunk would have performed, and
        // the batch happens before the fan-out, so worker counts cannot
        // affect it.
        let (warm_lu, seeds) = if n_chunks > 1 {
            let ramp_values: Vec<f64> = (1..n_chunks)
                .map(|ci| {
                    let prev = values[ci * SWEEP_CHUNK - 1];
                    start + (prev - start) / WARM_START_RAMP as f64
                })
                .collect();
            let ws = self.dc_ws.as_mut().expect("created above");
            let lu0 = ws.lu_stats();
            let mut buf = DcBuffers::default();
            let x0 = vec![0.0; self.mats.mna.dim()];
            let seeds = engine.solve_noniterative_batch_ws(
                &self.mats,
                ws,
                &mut buf,
                &source,
                &ramp_values,
                &x0,
                &mut warm_stats,
                &run_meter,
            )?;
            let warm_lu = ws.lu_stats();
            warm_stats.absorb_lu(&lu0, &warm_lu);
            (warm_lu, seeds)
        } else {
            (warm_lu, Vec::new())
        };
        let base_ws = self.dc_ws.as_ref().expect("created above");
        let mats = &self.mats;

        let rescue_enabled = engine.options().rescue.enabled;
        let chunk_meter = &run_meter;
        let (chunks, failure) = try_par_map_partial(n_chunks, plan.workers(), |ci| {
            let lo = ci * SWEEP_CHUNK;
            let hi = n_points.min(lo + SWEEP_CHUNK);
            let seed = if ci > 0 {
                Some(&seeds[ci - 1][..])
            } else {
                None
            };
            match sweep_chunk(
                &engine,
                mats,
                base_ws,
                warm_lu,
                &source,
                start,
                &values,
                lo,
                hi,
                seed,
                WARM_START_RAMP,
                chunk_meter,
            ) {
                Ok(c) => Ok(c),
                Err(SimError::NonConvergence { .. } | SimError::Numeric(_)) if rescue_enabled => {
                    // Rescue: retry the whole chunk with an 8x finer
                    // continuation ramp, recomputed locally (the batched
                    // seed only applies to the default ramp). Healthy
                    // chunks never take this path, and the decision
                    // depends only on the chunk index — never the worker
                    // count — so sharded results stay bit-identical.
                    // Budget stops are excluded: a chunk killed by the
                    // budget must not burn 8x the work retrying.
                    match sweep_chunk(
                        &engine,
                        mats,
                        base_ws,
                        warm_lu,
                        &source,
                        start,
                        &values,
                        lo,
                        hi,
                        None,
                        WARM_START_RAMP * 8,
                        chunk_meter,
                    ) {
                        Ok(mut c) => {
                            c.stats.rescues += 1;
                            c.stats.rescue_rungs += 1;
                            Ok(c)
                        }
                        Err(e) => Err(tag_chunk_failure(e, ci)),
                    }
                }
                Err(e) => Err(tag_chunk_failure(e, ci)),
            }
        });

        // Partial salvage: a sweep killed by its budget keeps the accepted
        // chunk prefix when the caller opted in. `try_par_map_partial`
        // reports the smallest failing chunk index, so chunks `0..fi` are
        // all present and the salvaged prefix is bit-identical at every
        // worker count. Non-budget failures (and budget stops with nothing
        // accepted) propagate as errors exactly as before.
        let (kept_chunks, truncated_after) = match failure {
            None => (n_chunks, None),
            Some((fi, e)) => {
                let salvage = engine.options().allow_partial
                    && matches!(e, SimError::BudgetExceeded { .. })
                    && fi > 0;
                if !salvage {
                    return Err(e);
                }
                (fi, Some(values[fi * SWEEP_CHUNK - 1]))
            }
        };

        // Deterministic stitch: solutions and statistics in chunk order.
        let mut stats = warm_stats;
        let mut solutions: Vec<Vec<f64>> = Vec::with_capacity(n_points);
        for chunk in chunks.into_iter().take(kept_chunks) {
            let chunk = chunk.expect("chunks before the smallest failing index all succeeded");
            solutions.extend(chunk.xs);
            stats.merge(&chunk.stats);
        }
        let mut values = values;
        values.truncate(solutions.len());

        // Output columns: node voltages / branch currents, then per-device
        // currents (same layout as the legacy engine result).
        let var_names = mna_var_names(&mats.mna);
        let mut names = var_names.clone();
        for b in mats.mna.nonlinear_bindings() {
            names.push(format!("I({})", b.name));
        }
        for m in mats.mna.mosfet_bindings() {
            names.push(format!("I({})", m.name));
        }
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(n_points); names.len()];
        let mut flops = FlopCounter::new();
        for x in &solutions {
            for (i, &xi) in x.iter().enumerate() {
                columns[i].push(xi);
            }
            let mut col = var_names.len();
            for b in mats.mna.nonlinear_bindings() {
                let v = branch_voltage(x, b.var_plus, b.var_minus);
                columns[col].push(b.device.current(v, &mut flops));
                col += 1;
            }
            for m in mats.mna.mosfet_bindings() {
                let vd = m.var_drain.map_or(0.0, |i| x[i]);
                let vg = m.var_gate.map_or(0.0, |i| x[i]);
                let vs = m.var_source.map_or(0.0, |i| x[i]);
                columns[col].push(m.model.ids(vg - vs, vd - vs, &mut flops));
                col += 1;
            }
        }
        stats.flops += flops;
        stats.elapsed = t0.elapsed();
        let ds = Dataset::new(
            AnalysisKind::Dc,
            "swec",
            Axis::Sweep { source, values },
            names,
            columns,
            stats,
        );
        Ok(match truncated_after {
            Some(at) => ds.truncated(at),
            None => ds,
        })
    }
}

/// One chunk's solutions and work accounting.
struct SweepChunk {
    xs: Vec<Vec<f64>>,
    stats: EngineStats,
}

/// Annotates a failed chunk's error with the chunk index (the failing
/// point index and sweep value ride in the forensics payload).
fn tag_chunk_failure(e: SimError, ci: usize) -> SimError {
    match e {
        SimError::NonConvergence {
            at,
            context,
            forensics,
        } => SimError::NonConvergence {
            at,
            context: format!("{context} [sweep chunk {ci}]"),
            forensics,
        },
        SimError::BudgetExceeded {
            stop,
            context,
            forensics,
        } => SimError::BudgetExceeded {
            stop,
            context: format!("{context} [sweep chunk {ci}]"),
            forensics,
        },
        other => other,
    }
}

/// Attaches the failing point index and sweep value to a per-point
/// non-convergence error.
fn tag_sweep_failure(e: SimError, k: usize, value: f64) -> SimError {
    match e {
        SimError::NonConvergence {
            at,
            context,
            forensics,
        } => {
            let mut fx = forensics.map_or_else(Forensics::default, |b| *b);
            fx.point_index = Some(k);
            fx.sweep_value = Some(value);
            SimError::non_convergence_with(at, context, fx)
        }
        SimError::BudgetExceeded {
            stop,
            context,
            forensics,
        } => {
            let mut fx = forensics.map_or_else(Forensics::default, |b| *b);
            fx.point_index = Some(k);
            fx.sweep_value = Some(value);
            SimError::budget_exceeded_with(stop, context, fx)
        }
        other => other,
    }
}

/// Solves sweep points `lo..hi` on a fresh clone of `base_ws` (see
/// [`Simulator::run_dc_sweep`] for the warm-start contract).
#[allow(clippy::too_many_arguments)]
fn sweep_chunk(
    engine: &SwecDcSweep,
    mats: &CircuitMatrices,
    base_ws: &AssemblyWorkspace,
    base_lu: LuStats,
    source: &str,
    sweep_start: f64,
    values: &[f64],
    lo: usize,
    hi: usize,
    warm_seed: Option<&[f64]>,
    ramp_steps: usize,
    meter: &BudgetMeter,
) -> Result<SweepChunk> {
    let mut ws = base_ws.clone();
    let mut buf = DcBuffers::default();
    let mut stats = EngineStats::new();
    let dim = mats.mna.dim();
    let fixed_point = engine.options().dc_mode == DcMode::FixedPoint;

    // Per-shard warm start: approach the point *before* this chunk with a
    // forward non-iterative continuation ramp from the sweep start — the
    // quasi-transient the paper runs — so through an NDR/hysteresis region
    // the shard lands on the same branch the serial continuation chain
    // selects (a fixed point solved from zero could silently converge to
    // the other branch of a bistable circuit). The ramp iterate is then
    // refined to self-consistency; at a genuine fold (no unique fixed
    // point) the ramp iterate is kept, exactly like the serial sweep's
    // fold fallback.
    let mut x = vec![0.0; dim];
    if lo > 0 {
        let prev = values[lo - 1];
        meter.checkpoint().map_err(|stop| {
            SimError::budget_exceeded(stop, format!("dc sweep warm start for point {lo}"))
        })?;
        // The first ramp point is normally computed centrally by the
        // batched multi-RHS warm start (bit-identical to solving it here);
        // the shard continues the ramp from that seed. On the finer-ramp
        // rescue retry there is no seed and the whole ramp is recomputed
        // locally.
        let first_step = match warm_seed {
            Some(seed) => {
                x = seed.to_vec();
                2
            }
            None => 1,
        };
        for s in first_step..=ramp_steps {
            let frac = s as f64 / ramp_steps as f64;
            let v = sweep_start + (prev - sweep_start) * frac;
            x = engine
                .solve_noniterative_ws(
                    mats,
                    &mut ws,
                    &mut buf,
                    Some((source, v)),
                    &x,
                    &mut stats,
                    &mut meter.fork(),
                )
                .map_err(|e| tag_sweep_failure(e, lo - 1, v))?;
        }
        match engine.solve_point_ws(
            mats,
            &mut ws,
            &mut buf,
            Some((source, prev)),
            &x,
            None,
            &mut stats,
            &mut meter.fork(),
        ) {
            Ok(x_new) => x = x_new,
            Err(SimError::NonConvergence { .. }) => {}
            Err(e) => return Err(tag_sweep_failure(e, lo - 1, prev)),
        }
    }

    let mut xs = Vec::with_capacity(hi - lo);
    for k in lo..hi {
        let value = values[k];
        meter
            .checkpoint()
            .map_err(|stop| SimError::budget_exceeded(stop, format!("dc sweep point {k}")))?;
        // Same per-point policy as the legacy serial engine: the very first
        // sweep point is always solved to self-consistency; afterwards the
        // non-iterative mode performs exactly one solve per point, and the
        // fixed-point mode falls back to a non-iterative step across
        // bistability folds.
        x = if k == 0 || fixed_point {
            match engine.solve_point_ws(
                mats,
                &mut ws,
                &mut buf,
                Some((source, value)),
                &x,
                None,
                &mut stats,
                &mut meter.fork(),
            ) {
                Ok(x_new) => x_new,
                Err(SimError::NonConvergence { .. }) if k > 0 => engine
                    .solve_noniterative_ws(
                        mats,
                        &mut ws,
                        &mut buf,
                        Some((source, value)),
                        &x,
                        &mut stats,
                        &mut meter.fork(),
                    )
                    .map_err(|e| tag_sweep_failure(e, k, value))?,
                Err(e) => return Err(tag_sweep_failure(e, k, value)),
            }
        } else {
            engine
                .solve_noniterative_ws(
                    mats,
                    &mut ws,
                    &mut buf,
                    Some((source, value)),
                    &x,
                    &mut stats,
                    &mut meter.fork(),
                )
                .map_err(|e| tag_sweep_failure(e, k, value))?
        };
        stats.steps += 1;
        xs.push(x.clone());
    }
    stats.absorb_lu(&base_lu, &ws.lu_stats());
    Ok(SweepChunk { xs, stats })
}

/// Runs the same analysis over many circuit variants in parallel — the
/// parameter-sweep / Monte-Carlo-over-process-variation workload. Each
/// variant gets its own [`Simulator`] (and therefore its own workspaces),
/// results come back in variant order, and
/// [`nanosim_numeric::parallel::par_map`]'s determinism contract makes the
/// output independent of the worker count.
///
/// The per-variant `analysis` is typically [`ExecPlan::Serial`]; a sharded
/// inner plan multiplies thread counts.
///
/// # Errors
/// Returns the failure of the smallest failing variant index, if any.
pub fn run_ensemble(
    variants: &[Circuit],
    analysis: &Analysis,
    plan: ExecPlan,
) -> Result<Vec<Dataset>> {
    plan.validate()?;
    analysis.validate()?;
    try_par_map(variants.len(), plan.workers(), |i| {
        Simulator::new(variants[i].clone())?.run(analysis.clone())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::request::Analysis;
    use nanosim_devices::rtd::Rtd;
    use nanosim_devices::sources::SourceWaveform;

    fn rtd_divider() -> Circuit {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(0.0))
            .unwrap();
        ckt.add_resistor("R1", vin, mid, 50.0).unwrap();
        ckt.add_rtd("X1", mid, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        ckt
    }

    fn rc_divider() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(2.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-12).unwrap();
        ckt
    }

    #[test]
    fn op_then_sweep_share_the_solver_cache() {
        let mut sim = Simulator::new(rc_divider()).unwrap();
        let op = sim.run(Analysis::op()).unwrap();
        assert_eq!(op.kind(), AnalysisKind::Op);
        assert!((op.value("b").unwrap() - 1.0).abs() < 1e-9);
        assert_eq!(op.stats.full_factors, 1, "cold session factors once");
        // Second op reuses the cached symbolic analysis: zero full factors.
        let op2 = sim.run(Analysis::op()).unwrap();
        assert_eq!(op2.stats.full_factors, 0);
        assert!(op2.stats.refactors >= 1);
        // And so does a sweep: the warm-up solve plus every chunk refactor
        // against the analysis cached by the ops.
        let sweep = sim.run(Analysis::dc_sweep("V1", 0.0, 2.0, 0.05)).unwrap();
        assert_eq!(sweep.stats.full_factors, 0);
        assert!(sweep.stats.refactors > sweep.points() as u64);
    }

    #[test]
    fn cold_sweep_factors_once_and_refactors_the_rest() {
        // The pre-warm guarantee: one full factor for the whole sweep, no
        // matter how many chunks it spans — every chunk clone inherits the
        // warmed analysis.
        let mut sim = Simulator::new(rtd_divider()).unwrap();
        let ds = sim.run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.02)).unwrap();
        assert!(ds.points() > 10 * SWEEP_CHUNK);
        assert_eq!(ds.stats.full_factors, 1, "{}", ds.stats);
        assert!(ds.stats.refactors >= ds.points() as u64);
    }

    #[test]
    fn session_transient_matches_engine() {
        let mut sim = Simulator::new(rc_divider()).unwrap();
        let ds = sim.run(Analysis::transient(0.05e-9, 5e-9)).unwrap();
        assert_eq!(ds.kind(), AnalysisKind::Tran);
        let legacy = SwecTransient::new(Default::default())
            .run(&rc_divider(), 0.05e-9, 5e-9)
            .unwrap();
        assert_eq!(ds.points(), legacy.points());
        assert_eq!(ds.column("b").unwrap(), legacy.column("b").unwrap());
        // A second transient on the same session reuses both cached
        // workspaces (the transient LU and the initial operating point's
        // no-C workspace): zero full factors.
        let ds2 = sim.run(Analysis::transient(0.05e-9, 5e-9)).unwrap();
        assert_eq!(ds2.stats.full_factors, 0, "{}", ds2.stats);
        assert_eq!(ds2.column("b").unwrap(), ds.column("b").unwrap());
    }

    #[test]
    fn first_chunk_matches_legacy_serial_sweep_exactly() {
        // Chunk 0 is algorithmically identical to the legacy engine, so a
        // sweep short enough to fit one chunk must be bit-equal to it.
        let mut sim = Simulator::new(rtd_divider()).unwrap();
        let n = SWEEP_CHUNK as f64;
        let ds = sim
            .run(Analysis::dc_sweep("V1", 0.0, (n - 1.0) * 0.05, 0.05))
            .unwrap();
        assert_eq!(ds.points(), SWEEP_CHUNK);
        let legacy = SwecDcSweep::new(Default::default())
            .run(&rtd_divider(), "V1", 0.0, (n - 1.0) * 0.05, 0.05)
            .unwrap();
        assert_eq!(ds.column("mid").unwrap(), legacy.column("mid").unwrap());
        assert_eq!(ds.column("I(X1)").unwrap(), legacy.column("I(X1)").unwrap());
    }

    #[test]
    fn invalid_sweeps_rejected_with_structured_errors() {
        let mut sim = Simulator::new(rtd_divider()).unwrap();
        assert!(matches!(
            sim.run(Analysis::dc_sweep("V1", 0.0, 1.0, 0.0)),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            sim.run(Analysis::dc_sweep("Vmissing", 0.0, 1.0, 0.1)),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            sim.run(Analysis::dc_sweep("V1", 0.0, 1.0, 0.1).plan(ExecPlan::Sharded { workers: 0 })),
            Err(SimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn ensemble_runs_variants_in_order() {
        let variants: Vec<Circuit> = [40.0, 50.0, 60.0, 70.0, 80.0]
            .iter()
            .map(|r| {
                let mut ckt = Circuit::new();
                let vin = ckt.node("in");
                let mid = ckt.node("mid");
                ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(0.0))
                    .unwrap();
                ckt.add_resistor("R1", vin, mid, *r).unwrap();
                ckt.add_rtd("X1", mid, Circuit::GROUND, Rtd::date2005())
                    .unwrap();
                ckt
            })
            .collect();
        let analysis: Analysis = Analysis::dc_sweep("V1", 0.0, 1.0, 0.1).into();
        let serial = run_ensemble(&variants, &analysis, ExecPlan::Serial).unwrap();
        let parallel = run_ensemble(&variants, &analysis, ExecPlan::sharded(4)).unwrap();
        assert_eq!(serial.len(), 5);
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.column("mid"), p.column("mid"), "variant order + bits");
        }
        // Heavier series resistance sags the mid node harder at full drive.
        let v0 = serial[0].at("mid", 1.0).unwrap();
        let v4 = serial[4].at("mid", 1.0).unwrap();
        assert!(v4 < v0, "{v4} !< {v0}");
    }
}
