//! The unified simulation session API.
//!
//! The paper presents Nano-Sim as *one* simulator with several analyses;
//! this module is that surface. A [`Simulator`] session is opened on a
//! circuit, typed [`Analysis`] requests (built with builders) are run
//! through it, and every result comes back as one [`Dataset`] shape:
//!
//! ```text
//! Simulator::new(circuit)          // MNA assembled once, solver cached
//!     .run(Analysis)               // Op | DcSweep | Transient |
//!                                  // EmEnsemble | Mla | Pwl
//!         -> Dataset               // named signals x one axis + stats
//! ```
//!
//! Execution is a strategy, not an engine: an [`ExecPlan`] picks between
//! [`ExecPlan::Serial`] and [`ExecPlan::Sharded`] without changing a single
//! bit of the result.
//!
//! # Determinism contract
//!
//! Work is cut into fixed-size chunks whose boundaries depend only on item
//! indices ([`SWEEP_CHUNK`] sweep points, [`crate::em::PATH_CHUNK`]
//! Monte-Carlo paths), each chunk computes on its own workspace from a
//! deterministic warm start, and chunk results are stitched back in chunk
//! order. Threads only decide *when* a chunk runs, never what it computes —
//! so `Sharded { workers: n }` is **bit-identical** to `Serial` for every
//! `n`, and `tests/session.rs` locks that in.
//!
//! Engine-level types ([`crate::swec::SwecDcSweep`],
//! [`crate::swec::SwecTransient`], [`crate::em::EmEngine`], ...) remain
//! available for specialized work (explicit Wiener paths, Newton failure
//! forensics), but deck running, the examples and the benches all go
//! through the session API.

pub mod dataset;
pub mod plan;
pub mod request;
pub mod session;

pub use dataset::{AnalysisKind, Axis, Dataset};
pub use plan::ExecPlan;
pub use request::{Analysis, BaselineRequest, DcSweep, EmEnsemble, Mla, Op, Pwl, Transient};
pub use session::{run_ensemble, PreflightMode, SimOptions, Simulator, SWEEP_CHUNK};
