//! Typed analysis requests and their builders.
//!
//! An [`Analysis`] is everything the [`crate::sim::Simulator`] needs to run
//! one analysis: the kind, its parameters, the engine options, and an
//! [`ExecPlan`]. Builders start from [`Analysis::op`],
//! [`Analysis::dc_sweep`], [`Analysis::transient`],
//! [`Analysis::em_ensemble`], [`Analysis::mla_dc_sweep`] /
//! [`Analysis::mla_transient`] and [`Analysis::pwl_dc_sweep`] /
//! [`Analysis::pwl_transient`]; every builder type converts into
//! [`Analysis`] with `into()` (or can be passed to
//! [`crate::sim::Simulator::run`] directly).

use crate::em::EmOptions;
use crate::mla::MlaOptions;
use crate::pwl::PwlOptions;
use crate::sim::dataset::AnalysisKind;
use crate::sim::plan::ExecPlan;
use crate::swec::SwecOptions;
use crate::Result;
use nanosim_circuit::AnalysisDirective;

/// A typed analysis request.
#[derive(Debug, Clone)]
pub enum Analysis {
    /// DC operating point (SWEC fixed point with continuation fallback).
    Op(Op),
    /// SWEC DC sweep of a named source.
    DcSweep(DcSweep),
    /// SWEC transient.
    Transient(Transient),
    /// Euler–Maruyama Monte-Carlo ensemble.
    EmEnsemble(EmEnsemble),
    /// MLA baseline (Newton with RTD limiting) sweep or transient.
    Mla(Mla),
    /// PWL baseline (ACES-like piecewise linear) sweep or transient.
    Pwl(Pwl),
}

/// Sweep-or-transient request of a baseline engine ([`Mla`], [`Pwl`]).
#[derive(Debug, Clone)]
pub enum BaselineRequest {
    /// DC sweep of a named source.
    DcSweep {
        /// Name of the swept V/I source.
        source: String,
        /// Sweep start value.
        start: f64,
        /// Sweep end value.
        stop: f64,
        /// Sweep increment.
        step: f64,
    },
    /// Transient analysis.
    Transient {
        /// Maximum (print) time step in seconds.
        tstep: f64,
        /// Stop time in seconds.
        tstop: f64,
    },
}

/// Builder for an operating-point analysis.
#[derive(Debug, Clone, Default)]
pub struct Op {
    /// SWEC engine options.
    pub options: SwecOptions,
}

impl Op {
    /// Replaces the engine options.
    #[must_use]
    pub fn options(mut self, options: SwecOptions) -> Self {
        self.options = options;
        self
    }
}

/// Builder for a SWEC DC sweep.
#[derive(Debug, Clone)]
pub struct DcSweep {
    /// Name of the swept V/I source.
    pub source: String,
    /// Sweep start value.
    pub start: f64,
    /// Sweep end value.
    pub stop: f64,
    /// Sweep increment.
    pub step: f64,
    /// SWEC engine options.
    pub options: SwecOptions,
    /// Execution plan ([`ExecPlan::Serial`] by default; sweeps also accept
    /// [`ExecPlan::Sharded`]).
    pub plan: ExecPlan,
}

impl DcSweep {
    /// Starts a sweep request over `source` from `start` to `stop`
    /// (inclusive) in increments of `step`.
    pub fn new(source: impl Into<String>, start: f64, stop: f64, step: f64) -> Self {
        DcSweep {
            source: source.into(),
            start,
            stop,
            step,
            options: SwecOptions::default(),
            plan: ExecPlan::Serial,
        }
    }

    /// Replaces the engine options.
    #[must_use]
    pub fn options(mut self, options: SwecOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the execution plan.
    #[must_use]
    pub fn plan(mut self, plan: ExecPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Opts into partial results: a sweep killed by a run budget returns
    /// the accepted chunk prefix (marked truncated — see
    /// [`crate::sim::Dataset::is_truncated`]) instead of an error, as long
    /// as at least one chunk completed.
    #[must_use]
    pub fn allow_partial(mut self) -> Self {
        self.options.allow_partial = true;
        self
    }
}

/// Builder for a SWEC transient.
#[derive(Debug, Clone)]
pub struct Transient {
    /// Maximum (print) time step in seconds.
    pub tstep: f64,
    /// Stop time in seconds.
    pub tstop: f64,
    /// SWEC engine options.
    pub options: SwecOptions,
}

impl Transient {
    /// Starts a transient request from `t = 0` to `tstop` with print step
    /// `tstep`.
    pub fn new(tstep: f64, tstop: f64) -> Self {
        Transient {
            tstep,
            tstop,
            options: SwecOptions::default(),
        }
    }

    /// Replaces the engine options.
    #[must_use]
    pub fn options(mut self, options: SwecOptions) -> Self {
        self.options = options;
        self
    }

    /// Opts into partial results: a run that dies of step-size underflow
    /// returns its accepted prefix (marked truncated — see
    /// [`crate::sim::Dataset::is_truncated`]) instead of an error.
    #[must_use]
    pub fn allow_partial(mut self) -> Self {
        self.options.allow_partial = true;
        self
    }
}

/// Builder for an Euler–Maruyama ensemble.
#[derive(Debug, Clone)]
pub struct EmEnsemble {
    /// Integration horizon in seconds.
    pub horizon: f64,
    /// EM engine options. The `threads` field is owned by the plan (the
    /// session overwrites it): [`ExecPlan::Serial`] runs one worker,
    /// [`ExecPlan::Sharded`] runs `workers`. Results are bit-identical
    /// either way — the plan is purely a wall-clock knob.
    pub options: EmOptions,
    /// Execution plan. Defaults to `ExecPlan::sharded(0)` (auto: one
    /// worker per hardware thread), matching the engine's own
    /// `EmOptions::default().threads == 0` behavior.
    pub plan: ExecPlan,
}

impl EmEnsemble {
    /// Starts an ensemble request over `0..horizon` seconds.
    pub fn new(horizon: f64) -> Self {
        EmEnsemble {
            horizon,
            options: EmOptions::default(),
            plan: ExecPlan::sharded(0),
        }
    }

    /// Replaces the engine options.
    #[must_use]
    pub fn options(mut self, options: EmOptions) -> Self {
        self.options = options;
        self
    }

    /// Replaces the execution plan.
    #[must_use]
    pub fn plan(mut self, plan: ExecPlan) -> Self {
        self.plan = plan;
        self
    }
}

/// Builder for an MLA-baseline analysis.
#[derive(Debug, Clone)]
pub struct Mla {
    /// Sweep or transient parameters.
    pub request: BaselineRequest,
    /// MLA engine options.
    pub options: MlaOptions,
}

impl Mla {
    /// Replaces the engine options.
    #[must_use]
    pub fn options(mut self, options: MlaOptions) -> Self {
        self.options = options;
        self
    }
}

/// Builder for a PWL-baseline analysis.
#[derive(Debug, Clone)]
pub struct Pwl {
    /// Sweep or transient parameters.
    pub request: BaselineRequest,
    /// PWL engine options.
    pub options: PwlOptions,
}

impl Pwl {
    /// Replaces the engine options.
    #[must_use]
    pub fn options(mut self, options: PwlOptions) -> Self {
        self.options = options;
        self
    }
}

macro_rules! into_analysis {
    ($($builder:ident => $variant:ident),* $(,)?) => {
        $(impl From<$builder> for Analysis {
            fn from(b: $builder) -> Analysis {
                Analysis::$variant(b)
            }
        })*
    };
}

into_analysis!(
    Op => Op,
    DcSweep => DcSweep,
    Transient => Transient,
    EmEnsemble => EmEnsemble,
    Mla => Mla,
    Pwl => Pwl,
);

impl Analysis {
    /// Operating-point request with default options.
    pub fn op() -> Op {
        Op::default()
    }

    /// SWEC DC sweep request (see [`DcSweep::new`]).
    pub fn dc_sweep(source: impl Into<String>, start: f64, stop: f64, step: f64) -> DcSweep {
        DcSweep::new(source, start, stop, step)
    }

    /// SWEC transient request (see [`Transient::new`]).
    pub fn transient(tstep: f64, tstop: f64) -> Transient {
        Transient::new(tstep, tstop)
    }

    /// Euler–Maruyama ensemble request (see [`EmEnsemble::new`]).
    pub fn em_ensemble(horizon: f64) -> EmEnsemble {
        EmEnsemble::new(horizon)
    }

    /// MLA-baseline DC sweep request.
    pub fn mla_dc_sweep(source: impl Into<String>, start: f64, stop: f64, step: f64) -> Mla {
        Mla {
            request: BaselineRequest::DcSweep {
                source: source.into(),
                start,
                stop,
                step,
            },
            options: MlaOptions::default(),
        }
    }

    /// MLA-baseline transient request.
    pub fn mla_transient(tstep: f64, tstop: f64) -> Mla {
        Mla {
            request: BaselineRequest::Transient { tstep, tstop },
            options: MlaOptions::default(),
        }
    }

    /// PWL-baseline DC sweep request.
    pub fn pwl_dc_sweep(source: impl Into<String>, start: f64, stop: f64, step: f64) -> Pwl {
        Pwl {
            request: BaselineRequest::DcSweep {
                source: source.into(),
                start,
                stop,
                step,
            },
            options: PwlOptions::default(),
        }
    }

    /// PWL-baseline transient request.
    pub fn pwl_transient(tstep: f64, tstop: f64) -> Pwl {
        Pwl {
            request: BaselineRequest::Transient { tstep, tstop },
            options: PwlOptions::default(),
        }
    }

    /// Lowers a parsed netlist directive to an analysis request with the
    /// given SWEC options (the `run_deck` path).
    pub fn from_directive(directive: &AnalysisDirective, options: &SwecOptions) -> Analysis {
        match directive {
            AnalysisDirective::Op => Analysis::Op(Op {
                options: options.clone(),
            }),
            AnalysisDirective::Dc {
                source,
                start,
                stop,
                step,
            } => Analysis::DcSweep(
                DcSweep::new(source.clone(), *start, *stop, *step).options(options.clone()),
            ),
            AnalysisDirective::Tran { tstep, tstop } => {
                Analysis::Transient(Transient::new(*tstep, *tstop).options(options.clone()))
            }
        }
    }

    /// The kind of dataset this request produces.
    pub fn kind(&self) -> AnalysisKind {
        match self {
            Analysis::Op(_) => AnalysisKind::Op,
            Analysis::DcSweep(_) => AnalysisKind::Dc,
            Analysis::Transient(_) => AnalysisKind::Tran,
            Analysis::EmEnsemble(_) => AnalysisKind::Em,
            Analysis::Mla(m) => match m.request {
                BaselineRequest::DcSweep { .. } => AnalysisKind::Dc,
                BaselineRequest::Transient { .. } => AnalysisKind::Tran,
            },
            Analysis::Pwl(p) => match p.request {
                BaselineRequest::DcSweep { .. } => AnalysisKind::Dc,
                BaselineRequest::Transient { .. } => AnalysisKind::Tran,
            },
        }
    }

    /// The execution plan of this request ([`ExecPlan::Serial`] for
    /// analyses that only run serially).
    pub fn plan(&self) -> ExecPlan {
        match self {
            Analysis::DcSweep(s) => s.plan,
            Analysis::EmEnsemble(e) => e.plan,
            _ => ExecPlan::Serial,
        }
    }

    /// Checks plan/parameter consistency before any work runs.
    ///
    /// # Errors
    /// [`crate::SimError::InvalidConfig`] on invalid plans (a literal
    /// `Sharded { workers: 0 }`, or a sharded plan on an analysis that
    /// cannot shard).
    pub fn validate(&self) -> Result<()> {
        match self {
            Analysis::DcSweep(s) => s.plan.validate(),
            Analysis::EmEnsemble(e) => e.plan.validate(),
            _ => Ok(()),
        }
    }

    /// Short tag for progress reports ("op", "dc", "tran", "em", "mla",
    /// "pwl").
    pub fn tag(&self) -> &'static str {
        match self {
            Analysis::Op(_) => "op",
            Analysis::DcSweep(_) => "dc",
            Analysis::Transient(_) => "tran",
            Analysis::EmEnsemble(_) => "em",
            Analysis::Mla(_) => "mla",
            Analysis::Pwl(_) => "pwl",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimError;

    #[test]
    fn builders_convert_into_analysis() {
        let a: Analysis = Analysis::dc_sweep("V1", 0.0, 1.0, 0.1)
            .plan(ExecPlan::sharded(2))
            .into();
        assert_eq!(a.kind(), AnalysisKind::Dc);
        assert_eq!(a.plan().workers(), 2);
        assert!(a.validate().is_ok());

        let a: Analysis = Analysis::transient(1e-12, 1e-9).into();
        assert_eq!(a.kind(), AnalysisKind::Tran);
        assert_eq!(a.plan(), ExecPlan::Serial);

        let a: Analysis = Analysis::mla_transient(1e-12, 1e-9).into();
        assert_eq!(a.kind(), AnalysisKind::Tran);
        assert_eq!(a.tag(), "mla");

        let a: Analysis = Analysis::pwl_dc_sweep("V1", 0.0, 1.0, 0.1).into();
        assert_eq!(a.kind(), AnalysisKind::Dc);
    }

    #[test]
    fn literal_zero_workers_rejected_at_validation() {
        let a: Analysis = Analysis::dc_sweep("V1", 0.0, 1.0, 0.1)
            .plan(ExecPlan::Sharded { workers: 0 })
            .into();
        assert!(matches!(a.validate(), Err(SimError::InvalidConfig { .. })));
    }

    #[test]
    fn directive_lowering_preserves_parameters() {
        let opts = SwecOptions {
            epsilon: 0.05,
            ..SwecOptions::default()
        };
        let a = Analysis::from_directive(
            &AnalysisDirective::Dc {
                source: "V1".into(),
                start: 0.0,
                stop: 2.0,
                step: 0.5,
            },
            &opts,
        );
        let Analysis::DcSweep(s) = a else {
            panic!("expected dc sweep");
        };
        assert_eq!(s.source, "V1");
        assert_eq!(s.step, 0.5);
        assert_eq!(s.options.epsilon, 0.05);
        assert_eq!(s.plan, ExecPlan::Serial);

        let a = Analysis::from_directive(&AnalysisDirective::Op, &opts);
        assert_eq!(a.kind(), AnalysisKind::Op);
        let a = Analysis::from_directive(
            &AnalysisDirective::Tran {
                tstep: 1e-12,
                tstop: 1e-9,
            },
            &opts,
        );
        assert_eq!(a.kind(), AnalysisKind::Tran);
    }
}
