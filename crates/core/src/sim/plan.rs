//! Execution plans: how an analysis is scheduled across workers.

use crate::{Result, SimError};
use nanosim_numeric::parallel::effective_threads;

/// How the [`crate::sim::Simulator`] executes an analysis.
///
/// A plan never changes *what* is computed — sharded runs are bit-identical
/// to serial ones (see the [`crate::sim`] module docs for why) — only how
/// the work is spread over threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecPlan {
    /// Everything on the calling thread.
    #[default]
    Serial,
    /// Work split across `workers` threads, each with its own assembly
    /// workspace, stitched back deterministically in chunk order.
    ///
    /// `workers` must be at least 1. Construct through [`ExecPlan::sharded`]
    /// to use the `0 = auto` convention; a hand-built
    /// `Sharded { workers: 0 }` is rejected by validation.
    Sharded {
        /// Number of worker threads (≥ 1).
        workers: usize,
    },
}

impl ExecPlan {
    /// Builds a sharded plan. `workers` follows the same convention as
    /// [`crate::em::EmOptions::threads`] and
    /// [`nanosim_numeric::parallel::effective_threads`]: **`0` means auto**
    /// (one worker per hardware thread), anything else is taken literally.
    /// The auto value is resolved here, at build time, so the constructed
    /// plan always carries a concrete worker count.
    pub fn sharded(workers: usize) -> ExecPlan {
        ExecPlan::Sharded {
            workers: effective_threads(workers),
        }
    }

    /// The number of worker threads this plan runs on.
    pub fn workers(&self) -> usize {
        match self {
            ExecPlan::Serial => 1,
            ExecPlan::Sharded { workers } => *workers,
        }
    }

    /// Rejects nonsense plans (currently: a hand-constructed
    /// `Sharded { workers: 0 }`, which [`ExecPlan::sharded`] would have
    /// resolved to the hardware thread count).
    ///
    /// # Errors
    /// [`SimError::InvalidConfig`] on an invalid worker count.
    pub fn validate(&self) -> Result<()> {
        match self {
            ExecPlan::Sharded { workers: 0 } => Err(SimError::InvalidConfig {
                context: "ExecPlan::Sharded { workers: 0 }: use ExecPlan::sharded(0) \
                          to request one worker per hardware thread"
                    .into(),
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial() {
        assert_eq!(ExecPlan::default(), ExecPlan::Serial);
        assert_eq!(ExecPlan::Serial.workers(), 1);
    }

    #[test]
    fn sharded_zero_resolves_to_auto() {
        let p = ExecPlan::sharded(0);
        assert!(p.workers() >= 1);
        assert!(p.validate().is_ok());
        let p = ExecPlan::sharded(3);
        assert_eq!(p.workers(), 3);
    }

    #[test]
    fn literal_zero_workers_rejected() {
        let p = ExecPlan::Sharded { workers: 0 };
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("workers"), "{err}");
    }
}
