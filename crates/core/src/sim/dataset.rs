//! The unified result model: every analysis returns a [`Dataset`].
//!
//! A dataset is a set of named signal columns over one independent axis
//! (time, a swept source value, or none for an operating point) plus the
//! [`EngineStats`] of the run that produced it. The `curve()` / `peak()` /
//! `at()` accessors replace the per-engine result methods, so downstream
//! code handles every analysis kind with the same few calls.

use crate::em::{EmResult, PeakSummary};
use crate::report::EngineStats;
use crate::waveform::{DcSweepResult, TransientResult, Waveform};
use crate::{Result, SimError};
use std::fmt;

/// What kind of analysis a [`Dataset`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisKind {
    /// DC operating point: one solution, no axis.
    Op,
    /// DC sweep over a source value.
    Dc,
    /// Transient over time.
    Tran,
    /// Stochastic (Euler–Maruyama) ensemble over time: mean columns plus
    /// `std(<name>)` envelopes and per-path maxima.
    Em,
}

impl AnalysisKind {
    /// Short tag for reports ("op", "dc", "tran", "em").
    pub fn as_str(&self) -> &'static str {
        match self {
            AnalysisKind::Op => "op",
            AnalysisKind::Dc => "dc",
            AnalysisKind::Tran => "tran",
            AnalysisKind::Em => "em",
        }
    }
}

impl fmt::Display for AnalysisKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The independent axis of a [`Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub enum Axis {
    /// No axis: a single operating point.
    None,
    /// Simulation time in seconds.
    Time(Vec<f64>),
    /// Swept values of a named source.
    Sweep {
        /// Name of the swept V/I source.
        source: String,
        /// The sweep values.
        values: Vec<f64>,
    },
}

impl Axis {
    /// The axis sample values (empty for [`Axis::None`]).
    pub fn values(&self) -> &[f64] {
        match self {
            Axis::None => &[],
            Axis::Time(t) => t,
            Axis::Sweep { values, .. } => values,
        }
    }

    /// Column label for CSV export ("op", "time", "sweep(<source>)").
    pub fn label(&self) -> String {
        match self {
            Axis::None => "op".into(),
            Axis::Time(_) => "time".into(),
            Axis::Sweep { source, .. } => format!("sweep({source})"),
        }
    }
}

/// Uniform result of any [`crate::sim::Simulator`] analysis.
///
/// # Example
/// ```
/// use nanosim_core::sim::{Analysis, Simulator};
/// use nanosim_circuit::Circuit;
/// use nanosim_devices::sources::SourceWaveform;
///
/// # fn main() -> Result<(), nanosim_core::SimError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let b = ckt.node("b");
/// ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(2.0))?;
/// ckt.add_resistor("R1", a, b, 1e3)?;
/// ckt.add_resistor("R2", b, Circuit::GROUND, 1e3)?;
/// let mut sim = Simulator::new(ckt)?;
/// let ds = sim.run(Analysis::dc_sweep("V1", 0.0, 2.0, 0.5))?;
/// assert_eq!(ds.points(), 5);
/// assert!((ds.at("b", 2.0).unwrap() - 1.0).abs() < 1e-9);
/// let (v_at_peak, peak) = ds.peak("b").unwrap();
/// assert_eq!((v_at_peak, peak), (2.0, 1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    kind: AnalysisKind,
    engine: &'static str,
    axis: Axis,
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
    /// Per-variable, per-path running maxima (EM ensembles only).
    maxima: Vec<Vec<f64>>,
    /// `Some(t)` when the producing transient stopped early at `t`
    /// (step-size underflow under `allow_partial`).
    truncated_at: Option<f64>,
    /// Work accounting for the run that produced this dataset.
    pub stats: EngineStats,
}

impl Dataset {
    /// Assembles a dataset. Column lengths must match the axis length
    /// ([`Axis::None`] implies exactly one sample per column).
    ///
    /// # Panics
    /// Panics on name/column count or column/axis length mismatches.
    pub fn new(
        kind: AnalysisKind,
        engine: &'static str,
        axis: Axis,
        names: Vec<String>,
        columns: Vec<Vec<f64>>,
        stats: EngineStats,
    ) -> Self {
        assert_eq!(names.len(), columns.len(), "one name per column");
        let expected = match &axis {
            Axis::None => 1,
            other => other.values().len(),
        };
        for c in &columns {
            assert_eq!(c.len(), expected, "column length mismatch");
        }
        Dataset {
            kind,
            engine,
            axis,
            names,
            columns,
            maxima: Vec::new(),
            truncated_at: None,
            stats,
        }
    }

    /// Wraps a legacy transient result (including a truncated partial
    /// prefix — see [`Dataset::truncated_at`]).
    pub fn from_transient(engine: &'static str, r: TransientResult) -> Self {
        let (times, names, columns, stats, truncated_at) = r.into_parts();
        let mut ds = Dataset::new(
            AnalysisKind::Tran,
            engine,
            Axis::Time(times),
            names,
            columns,
            stats,
        );
        ds.truncated_at = truncated_at;
        ds
    }

    /// Marks this dataset as the accepted prefix of a run that stopped
    /// early (step-size underflow or an exhausted run budget under
    /// `SwecOptions::allow_partial`); `at` is the last accepted axis value.
    #[must_use]
    pub fn truncated(mut self, at: f64) -> Self {
        self.truncated_at = Some(at);
        self
    }

    /// Whether this dataset is the accepted prefix of a run that stopped
    /// early — a transient that died of step-size underflow or ran out of
    /// budget, or a sharded sweep whose tail was budget-killed (only
    /// possible with `SwecOptions::allow_partial` set).
    pub fn is_truncated(&self) -> bool {
        self.truncated_at.is_some()
    }

    /// The axis value (time, or last accepted sweep value) at which a
    /// truncated run gave up.
    pub fn truncated_at(&self) -> Option<f64> {
        self.truncated_at
    }

    /// Wraps a legacy DC sweep result (the sweep source name is not stored
    /// in [`DcSweepResult`], so the caller supplies it).
    pub fn from_dc_sweep(engine: &'static str, source: &str, r: DcSweepResult) -> Self {
        let (values, names, columns, stats) = r.into_parts();
        Dataset::new(
            AnalysisKind::Dc,
            engine,
            Axis::Sweep {
                source: source.to_string(),
                values,
            },
            names,
            columns,
            stats,
        )
    }

    /// Wraps an operating-point solution.
    pub fn from_op(
        engine: &'static str,
        names: Vec<String>,
        values: Vec<f64>,
        stats: EngineStats,
    ) -> Self {
        let columns = values.into_iter().map(|v| vec![v]).collect();
        Dataset::new(AnalysisKind::Op, engine, Axis::None, names, columns, stats)
    }

    /// Wraps an Euler–Maruyama ensemble: one mean column per variable, one
    /// `std(<name>)` envelope per variable, and the per-path running maxima
    /// behind [`Dataset::peak_summary`] / [`Dataset::exceedance`].
    pub fn from_em(r: EmResult) -> Self {
        let (times, names, mean, std_dev, maxima, stats) = r.into_parts();
        let mut all_names = names.clone();
        all_names.extend(names.iter().map(|n| format!("std({n})")));
        let mut columns = mean;
        columns.extend(std_dev);
        let mut ds = Dataset::new(
            AnalysisKind::Em,
            "em",
            Axis::Time(times),
            all_names,
            columns,
            stats,
        );
        ds.maxima = maxima;
        ds
    }

    /// The analysis kind this dataset came from.
    pub fn kind(&self) -> AnalysisKind {
        self.kind
    }

    /// The engine that produced it ("swec", "mla", "pwl", "em").
    pub fn engine(&self) -> &'static str {
        self.engine
    }

    /// Borrows this dataset after checking its kind — the structured
    /// replacement for matching on a result enum and panicking on the
    /// wrong arm.
    ///
    /// # Errors
    /// [`SimError::AnalysisMismatch`] when the kinds differ.
    pub fn require(&self, kind: AnalysisKind) -> Result<&Dataset> {
        if self.kind == kind {
            Ok(self)
        } else {
            Err(SimError::AnalysisMismatch {
                expected: kind.as_str(),
                got: self.kind.as_str(),
            })
        }
    }

    /// The independent axis.
    pub fn axis(&self) -> &Axis {
        &self.axis
    }

    /// Axis sample values (empty for an operating point).
    pub fn axis_values(&self) -> &[f64] {
        self.axis.values()
    }

    /// Signal names in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of samples per signal (1 for an operating point).
    pub fn points(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Column index of a named signal.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Raw samples of a named signal.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.column_index(name).map(|i| self.columns[i].as_slice())
    }

    /// A named signal as an owned [`Waveform`] over the axis. `None` for
    /// unknown names and for operating points (use [`Dataset::value`]).
    pub fn curve(&self, name: &str) -> Option<Waveform> {
        if matches!(self.axis, Axis::None) {
            return None;
        }
        self.column(name)
            .map(|c| Waveform::from_samples(self.axis_values().to_vec(), c.to_vec()))
    }

    /// The ensemble standard-deviation envelope of a node (EM datasets).
    pub fn std_curve(&self, name: &str) -> Option<Waveform> {
        self.curve(&format!("std({name})"))
    }

    /// Signal value at axis coordinate `x` (linear interpolation, clamped).
    /// For an operating point the single solved value is returned
    /// regardless of `x`.
    pub fn at(&self, name: &str, x: f64) -> Option<f64> {
        match self.axis {
            Axis::None => self.value(name),
            _ => Some(self.curve(name)?.value_at(x)),
        }
    }

    /// The scalar value of a signal: the operating-point solution, or the
    /// final sample of a sweep/transient.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.column(name).and_then(|c| c.last().copied())
    }

    /// Global maximum of a signal as `(axis value, signal value)`; for an
    /// operating point the axis value is reported as `0.0`.
    pub fn peak(&self, name: &str) -> Option<(f64, f64)> {
        match self.axis {
            Axis::None => self.value(name).map(|v| (0.0, v)),
            _ => self.curve(name)?.peak(),
        }
    }

    /// Running-maximum statistics of a node over an EM ensemble; `None`
    /// for non-ensemble datasets or unknown names.
    pub fn peak_summary(&self, name: &str) -> Option<PeakSummary> {
        let i = self.column_index(name)?;
        crate::em::peak_summary_of(self.maxima.get(i)?)
    }

    /// Fraction of EM paths whose running maximum of `name` reached
    /// `level`; `None` for non-ensemble datasets or unknown names.
    pub fn exceedance(&self, name: &str, level: f64) -> Option<f64> {
        let i = self.column_index(name)?;
        Some(crate::em::exceedance_of(self.maxima.get(i)?, level))
    }

    /// Number of ensemble paths behind an EM dataset (0 otherwise).
    pub fn paths(&self) -> usize {
        self.maxima.first().map_or(0, Vec::len)
    }

    /// Writes CSV (`<axis>,var1,var2,...`) to any writer.
    ///
    /// # Errors
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        write!(w, "{}", self.axis.label())?;
        for n in &self.names {
            write!(w, ",{n}")?;
        }
        writeln!(w)?;
        let axis_vals = self.axis_values();
        for k in 0..self.points() {
            let x = axis_vals.get(k).copied().unwrap_or(0.0);
            write!(w, "{x:.9e}")?;
            for c in &self.columns {
                write!(w, ",{:.9e}", c[k])?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// CSV as a string (convenience for examples and tests).
    pub fn to_csv(&self) -> String {
        let mut buf = Vec::new();
        self.write_csv(&mut buf).expect("vec write cannot fail");
        String::from_utf8(buf).expect("csv is utf8")
    }
}

impl From<TransientResult> for Dataset {
    fn from(r: TransientResult) -> Self {
        Dataset::from_transient("swec", r)
    }
}

impl From<EmResult> for Dataset {
    fn from(r: EmResult) -> Self {
        Dataset::from_em(r)
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} signals x {} points, {}",
            self.kind,
            self.engine,
            self.names.len(),
            self.points(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_dataset() -> Dataset {
        Dataset::new(
            AnalysisKind::Dc,
            "swec",
            Axis::Sweep {
                source: "V1".into(),
                values: vec![0.0, 0.5, 1.0],
            },
            vec!["mid".into(), "I(X1)".into()],
            vec![vec![0.0, 0.4, 0.9], vec![0.0, 2e-3, 1e-3]],
            EngineStats::new(),
        )
    }

    #[test]
    fn accessors_on_a_sweep() {
        let ds = sweep_dataset();
        assert_eq!(ds.kind(), AnalysisKind::Dc);
        assert_eq!(ds.points(), 3);
        assert_eq!(ds.axis_values(), &[0.0, 0.5, 1.0]);
        assert_eq!(ds.column("mid").unwrap()[1], 0.4);
        assert_eq!(ds.at("mid", 0.25).unwrap(), 0.2);
        assert_eq!(ds.value("mid").unwrap(), 0.9);
        assert_eq!(ds.peak("I(X1)").unwrap(), (0.5, 2e-3));
        assert!(ds.curve("nope").is_none());
        assert_eq!(ds.paths(), 0);
        assert!(ds.peak_summary("mid").is_none());
    }

    #[test]
    fn require_matches_and_mismatches() {
        let ds = sweep_dataset();
        assert!(ds.require(AnalysisKind::Dc).is_ok());
        let err = ds.require(AnalysisKind::Tran).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::AnalysisMismatch {
                    expected: "tran",
                    got: "dc"
                }
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("expected tran"));
    }

    #[test]
    fn op_dataset_is_scalar() {
        let ds = Dataset::from_op(
            "swec",
            vec!["a".into(), "b".into()],
            vec![2.0, 1.5],
            EngineStats::new(),
        );
        assert_eq!(ds.kind(), AnalysisKind::Op);
        assert_eq!(ds.points(), 1);
        assert_eq!(ds.value("b").unwrap(), 1.5);
        assert_eq!(ds.at("b", 123.0).unwrap(), 1.5);
        assert_eq!(ds.peak("a").unwrap(), (0.0, 2.0));
        assert!(ds.curve("a").is_none(), "no axis to plot against");
        let csv = ds.to_csv();
        assert!(csv.starts_with("op,a,b"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn csv_header_carries_axis_label() {
        let ds = sweep_dataset();
        let csv = ds.to_csv();
        assert!(csv.starts_with("sweep(V1),mid,I(X1)"));
        assert_eq!(csv.lines().count(), 4);
        assert!(ds.to_string().contains("dc[swec]"));
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn rejects_ragged_columns() {
        Dataset::new(
            AnalysisKind::Tran,
            "swec",
            Axis::Time(vec![0.0, 1.0]),
            vec!["a".into()],
            vec![vec![0.0]],
            EngineStats::new(),
        );
    }
}
