//! Waveforms, simulation results, measurements and export.

use crate::report::EngineStats;
use std::fmt;

/// A sampled signal `(t_k, v_k)` with non-decreasing time stamps.
///
/// # Example
/// ```
/// use nanosim_core::waveform::Waveform;
/// let w = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 1.0]);
/// assert_eq!(w.value_at(0.5), 1.0); // linear interpolation
/// assert_eq!(w.peak().unwrap().1, 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Builds a waveform from parallel sample vectors.
    ///
    /// # Panics
    /// Panics if lengths differ, the waveform is empty, or times decrease.
    pub fn from_samples(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        assert!(!times.is_empty(), "waveform needs at least one sample");
        assert!(
            times.windows(2).all(|w| w[1] >= w[0]),
            "time stamps must be non-decreasing"
        );
        Waveform { times, values }
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the waveform has no samples (never true for constructed
    /// waveforms; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// First sampled value.
    pub fn first_value(&self) -> f64 {
        self.values[0]
    }

    /// Last sampled value.
    pub fn final_value(&self) -> f64 {
        *self.values.last().expect("nonempty")
    }

    /// Linear interpolation at `t`, clamped to the sampled range.
    pub fn value_at(&self, t: f64) -> f64 {
        let ts = &self.times;
        if t <= ts[0] {
            return self.values[0];
        }
        let n = ts.len();
        if t >= ts[n - 1] {
            return self.values[n - 1];
        }
        let mut i = match ts.binary_search_by(|x| x.partial_cmp(&t).expect("NaN time")) {
            Ok(i) => return self.values[i],
            Err(i) => i,
        };
        if i == 0 {
            i = 1;
        }
        let (t0, t1) = (ts[i - 1], ts[i]);
        let (v0, v1) = (self.values[i - 1], self.values[i]);
        if t1 == t0 {
            v1
        } else {
            v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        }
    }

    /// Global maximum as `(time, value)`.
    pub fn peak(&self) -> Option<(f64, f64)> {
        self.times
            .iter()
            .zip(self.values.iter())
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN value"))
            .map(|(&t, &v)| (t, v))
    }

    /// Global minimum as `(time, value)`.
    pub fn trough(&self) -> Option<(f64, f64)> {
        self.times
            .iter()
            .zip(self.values.iter())
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN value"))
            .map(|(&t, &v)| (t, v))
    }

    /// First time the signal crosses `level` in the given direction,
    /// linearly interpolated.
    pub fn crossing_time(&self, level: f64, rising: bool) -> Option<f64> {
        for i in 1..self.times.len() {
            let (v0, v1) = (self.values[i - 1], self.values[i]);
            let crossed = if rising {
                v0 < level && v1 >= level
            } else {
                v0 > level && v1 <= level
            };
            if crossed {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                if v1 == v0 {
                    return Some(t1);
                }
                return Some(t0 + (t1 - t0) * (level - v0) / (v1 - v0));
            }
        }
        None
    }

    /// 10%–90% rise time between `lo` and `hi` reference levels.
    pub fn rise_time(&self, lo: f64, hi: f64) -> Option<f64> {
        let t10 = self.crossing_time(lo + 0.1 * (hi - lo), true)?;
        let t90 = self.crossing_time(lo + 0.9 * (hi - lo), true)?;
        (t90 >= t10).then_some(t90 - t10)
    }

    /// Overshoot beyond `target` relative to the swing from `start` to
    /// `target`, as a fraction (0.05 = 5% overshoot). Returns `None` when
    /// the swing is zero.
    pub fn overshoot(&self, start: f64, target: f64) -> Option<f64> {
        let swing = target - start;
        if swing == 0.0 {
            return None;
        }
        let extreme = if swing > 0.0 {
            self.peak()?.1
        } else {
            self.trough()?.1
        };
        Some(((extreme - target) / swing).max(0.0))
    }

    /// First time after which the signal stays within `±band` of `target`
    /// until the end of the record.
    pub fn settling_time(&self, target: f64, band: f64) -> Option<f64> {
        let mut settled_since: Option<f64> = None;
        for (&t, &v) in self.times.iter().zip(self.values.iter()) {
            if (v - target).abs() <= band {
                settled_since.get_or_insert(t);
            } else {
                settled_since = None;
            }
        }
        settled_since
    }

    /// Estimates the period of a repetitive signal from successive rising
    /// crossings of `level`; `None` with fewer than two crossings.
    pub fn period(&self, level: f64) -> Option<f64> {
        let mut crossings = Vec::new();
        for i in 1..self.times.len() {
            let (v0, v1) = (self.values[i - 1], self.values[i]);
            if v0 < level && v1 >= level {
                let (t0, t1) = (self.times[i - 1], self.times[i]);
                let t = if v1 == v0 {
                    t1
                } else {
                    t0 + (t1 - t0) * (level - v0) / (v1 - v0)
                };
                crossings.push(t);
            }
        }
        if crossings.len() < 2 {
            return None;
        }
        let spans: Vec<f64> = crossings.windows(2).map(|w| w[1] - w[0]).collect();
        Some(spans.iter().sum::<f64>() / spans.len() as f64)
    }

    /// Root-mean-square difference against another waveform, sampled at this
    /// waveform's time points (the other is interpolated).
    pub fn rms_difference(&self, other: &Waveform) -> f64 {
        let n = self.times.len();
        let sum: f64 = self
            .times
            .iter()
            .zip(self.values.iter())
            .map(|(&t, &v)| {
                let d = v - other.value_at(t);
                d * d
            })
            .sum();
        (sum / n as f64).sqrt()
    }

    /// Renders a fixed-size ASCII plot (rows x cols) of the waveform —
    /// enough to eyeball the figures in a terminal.
    pub fn ascii_plot(&self, rows: usize, cols: usize) -> String {
        let rows = rows.max(2);
        let cols = cols.max(2);
        let t0 = self.times[0];
        let t1 = *self.times.last().expect("nonempty");
        let (vmin, vmax) = self
            .values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let vspan = if vmax > vmin { vmax - vmin } else { 1.0 };
        let mut grid = vec![vec![b' '; cols]; rows];
        for col in 0..cols {
            let t = if t1 > t0 {
                t0 + (t1 - t0) * col as f64 / (cols - 1) as f64
            } else {
                t0
            };
            let v = self.value_at(t);
            let row = ((vmax - v) / vspan * (rows - 1) as f64).round() as usize;
            grid[row.min(rows - 1)][col] = b'*';
        }
        let mut out = String::new();
        out.push_str(&format!("{vmax:>12.4e} +\n"));
        for row in grid {
            out.push_str("             |");
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push('\n');
        }
        out.push_str(&format!(
            "{vmin:>12.4e} +{}\n              {:<.4e} .. {:.4e} s\n",
            "-".repeat(cols),
            t0,
            t1
        ));
        out
    }
}

/// Result of a transient analysis: shared time axis plus one column per MNA
/// variable (node voltages first, then branch currents).
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
    /// Work accounting for the run.
    pub stats: EngineStats,
    /// `Some(t)` when the run died of step-size underflow at `t` and the
    /// caller opted into the accepted prefix (`allow_partial`).
    truncated_at: Option<f64>,
}

impl TransientResult {
    /// Assembles a result; engines push one row per accepted time point.
    ///
    /// # Panics
    /// Panics if column lengths disagree with the time axis.
    pub fn new(
        times: Vec<f64>,
        names: Vec<String>,
        columns: Vec<Vec<f64>>,
        stats: EngineStats,
    ) -> Self {
        assert_eq!(names.len(), columns.len(), "one name per column");
        for c in &columns {
            assert_eq!(c.len(), times.len(), "column length mismatch");
        }
        TransientResult {
            times,
            names,
            columns,
            stats,
            truncated_at: None,
        }
    }

    /// Assembles a *partial* result whose integration stopped early at
    /// `at` (step-size underflow with `allow_partial` set); the data is
    /// the accepted prefix.
    ///
    /// # Panics
    /// Panics if column lengths disagree with the time axis.
    pub fn new_truncated(
        times: Vec<f64>,
        names: Vec<String>,
        columns: Vec<Vec<f64>>,
        stats: EngineStats,
        at: f64,
    ) -> Self {
        let mut r = TransientResult::new(times, names, columns, stats);
        r.truncated_at = Some(at);
        r
    }

    /// Whether this result is an accepted prefix of a run that failed.
    pub fn is_truncated(&self) -> bool {
        self.truncated_at.is_some()
    }

    /// The time at which integration gave up, for truncated results.
    pub fn truncated_at(&self) -> Option<f64> {
        self.truncated_at
    }

    /// The time axis.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Variable names in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of accepted time points.
    pub fn points(&self) -> usize {
        self.times.len()
    }

    /// Column index of a named variable.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Raw column data for a variable.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.column_index(name).map(|i| self.columns[i].as_slice())
    }

    /// Extracts a named signal as an owned [`Waveform`].
    pub fn waveform(&self, name: &str) -> Option<Waveform> {
        self.column(name)
            .map(|c| Waveform::from_samples(self.times.clone(), c.to_vec()))
    }

    /// Writes CSV (`time,var1,var2,...`) to any writer.
    ///
    /// # Errors
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        write!(w, "time")?;
        for n in &self.names {
            write!(w, ",{n}")?;
        }
        writeln!(w)?;
        for (k, &t) in self.times.iter().enumerate() {
            write!(w, "{t:.9e}")?;
            for c in &self.columns {
                write!(w, ",{:.9e}", c[k])?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// CSV as a string (convenience for examples and tests).
    pub fn to_csv(&self) -> String {
        let mut buf = Vec::new();
        self.write_csv(&mut buf).expect("vec write cannot fail");
        String::from_utf8(buf).expect("csv is utf8")
    }

    /// Decomposes into `(times, names, columns, stats, truncated_at)` —
    /// the [`crate::sim::Dataset`] conversion path.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        Vec<f64>,
        Vec<String>,
        Vec<Vec<f64>>,
        EngineStats,
        Option<f64>,
    ) {
        (
            self.times,
            self.names,
            self.columns,
            self.stats,
            self.truncated_at,
        )
    }
}

impl fmt::Display for TransientResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transient: {} vars x {} points, {}",
            self.names.len(),
            self.times.len(),
            self.stats
        )?;
        if let Some(at) = self.truncated_at {
            write!(f, " [truncated at t = {at:.6e}]")?;
        }
        Ok(())
    }
}

/// Result of a DC sweep: the swept source values plus node voltages and
/// per-device branch currents at each point.
#[derive(Debug, Clone)]
pub struct DcSweepResult {
    sweep: Vec<f64>,
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
    /// Work accounting for the run.
    pub stats: EngineStats,
}

impl DcSweepResult {
    /// Assembles a sweep result.
    ///
    /// # Panics
    /// Panics if column lengths disagree with the sweep axis.
    pub fn new(
        sweep: Vec<f64>,
        names: Vec<String>,
        columns: Vec<Vec<f64>>,
        stats: EngineStats,
    ) -> Self {
        assert_eq!(names.len(), columns.len(), "one name per column");
        for c in &columns {
            assert_eq!(c.len(), sweep.len(), "column length mismatch");
        }
        DcSweepResult {
            sweep,
            names,
            columns,
            stats,
        }
    }

    /// The swept source values.
    pub fn sweep_values(&self) -> &[f64] {
        &self.sweep
    }

    /// Number of sweep points.
    pub fn points(&self) -> usize {
        self.sweep.len()
    }

    /// Variable names in column order (node voltages, then `I(<element>)`
    /// device currents).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Raw column for a variable.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.columns[i].as_slice())
    }

    /// The sweep as a `(sweep value, column value)` waveform (e.g. an I-V
    /// curve when the column is a device current).
    pub fn curve(&self, name: &str) -> Option<Waveform> {
        self.column(name)
            .map(|c| Waveform::from_samples(self.sweep.clone(), c.to_vec()))
    }

    /// Writes CSV (`sweep,var1,...`).
    ///
    /// # Errors
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        write!(w, "sweep")?;
        for n in &self.names {
            write!(w, ",{n}")?;
        }
        writeln!(w)?;
        for (k, &s) in self.sweep.iter().enumerate() {
            write!(w, "{s:.9e}")?;
            for c in &self.columns {
                write!(w, ",{:.9e}", c[k])?;
            }
            writeln!(w)?;
        }
        Ok(())
    }

    /// Decomposes into `(sweep, names, columns, stats)` — the
    /// [`crate::sim::Dataset`] conversion path.
    pub(crate) fn into_parts(self) -> (Vec<f64>, Vec<String>, Vec<Vec<f64>>, EngineStats) {
        (self.sweep, self.names, self.columns, self.stats)
    }
}

impl fmt::Display for DcSweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dc sweep: {} vars x {} points, {}",
            self.names.len(),
            self.sweep.len(),
            self.stats
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        Waveform::from_samples(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 1.0, 4.0, 2.0])
    }

    #[test]
    fn interpolation_and_clamping() {
        let w = ramp();
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(0.5), 0.5);
        assert_eq!(w.value_at(1.5), 2.5);
        assert_eq!(w.value_at(10.0), 2.0);
        assert_eq!(w.value_at(1.0), 1.0);
        assert_eq!(w.len(), 4);
        assert!(!w.is_empty());
    }

    #[test]
    fn peak_and_trough() {
        let w = ramp();
        assert_eq!(w.peak(), Some((2.0, 4.0)));
        assert_eq!(w.trough(), Some((0.0, 0.0)));
        assert_eq!(w.first_value(), 0.0);
        assert_eq!(w.final_value(), 2.0);
    }

    #[test]
    fn crossing_detection() {
        let w = ramp();
        assert_eq!(w.crossing_time(0.5, true), Some(0.5));
        // Falling crossing of 3.0 happens between t=2 (v=4) and t=3 (v=2).
        assert_eq!(w.crossing_time(3.0, false), Some(2.5));
        assert_eq!(w.crossing_time(10.0, true), None);
    }

    #[test]
    fn rise_time_of_linear_ramp() {
        let w = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 1.0]);
        let rt = w.rise_time(0.0, 1.0).unwrap();
        assert!((rt - 0.8).abs() < 1e-12);
    }

    #[test]
    fn overshoot_measurement() {
        // Step to 1.0 that rings up to 1.25.
        let w = Waveform::from_samples(
            vec![0.0, 1.0, 2.0, 3.0, 4.0],
            vec![0.0, 1.25, 0.9, 1.05, 1.0],
        );
        let os = w.overshoot(0.0, 1.0).unwrap();
        assert!((os - 0.25).abs() < 1e-12);
        // No overshoot when the peak stays below the target.
        let w2 = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 0.9]);
        assert_eq!(w2.overshoot(0.0, 1.0), Some(0.0));
        // Falling step uses the trough.
        let w3 = Waveform::from_samples(vec![0.0, 1.0, 2.0], vec![1.0, -0.2, 0.0]);
        let os3 = w3.overshoot(1.0, 0.0).unwrap();
        assert!((os3 - 0.2).abs() < 1e-12);
        assert_eq!(w3.overshoot(0.5, 0.5), None);
    }

    #[test]
    fn settling_time_finds_last_entry_into_band() {
        let w = Waveform::from_samples(
            vec![0.0, 1.0, 2.0, 3.0, 4.0],
            vec![0.0, 1.3, 0.96, 1.02, 1.01],
        );
        let ts = w.settling_time(1.0, 0.05).unwrap();
        assert_eq!(ts, 2.0);
        // Never settles within a tight band.
        assert_eq!(w.settling_time(1.0, 0.001), None);
    }

    #[test]
    fn period_of_square_wave() {
        // 2 s period square wave sampled densely.
        let times: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|t| if (t % 2.0) < 1.0 { 1.0 } else { 0.0 })
            .collect();
        let w = Waveform::from_samples(times, values);
        let p = w.period(0.5).unwrap();
        assert!((p - 2.0).abs() < 0.05, "period {p}");
        // A monotone ramp has at most one crossing -> None.
        let ramp = Waveform::from_samples(vec![0.0, 1.0], vec![0.0, 1.0]);
        assert_eq!(ramp.period(0.5), None);
    }

    #[test]
    fn rms_difference_zero_for_self() {
        let w = ramp();
        assert_eq!(w.rms_difference(&w), 0.0);
        let shifted = Waveform::from_samples(
            w.times().to_vec(),
            w.values().iter().map(|v| v + 1.0).collect(),
        );
        assert!((w.rms_difference(&shifted) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_unsorted_times() {
        Waveform::from_samples(vec![1.0, 0.0], vec![0.0, 0.0]);
    }

    #[test]
    fn ascii_plot_contains_markers() {
        let p = ramp().ascii_plot(8, 40);
        assert!(p.contains('*'));
        assert!(p.lines().count() >= 10);
    }

    #[test]
    fn transient_result_roundtrip() {
        let mut stats = EngineStats::new();
        stats.steps = 3;
        let r = TransientResult::new(
            vec![0.0, 1e-9, 2e-9],
            vec!["out".into(), "I(V1)".into()],
            vec![vec![0.0, 2.5, 5.0], vec![0.0, -1e-3, -2e-3]],
            stats,
        );
        assert_eq!(r.points(), 3);
        assert_eq!(r.column_index("out"), Some(0));
        assert_eq!(r.column("I(V1)").unwrap()[2], -2e-3);
        let w = r.waveform("out").unwrap();
        assert_eq!(w.final_value(), 5.0);
        let csv = r.to_csv();
        assert!(csv.starts_with("time,out,I(V1)"));
        assert_eq!(csv.lines().count(), 4);
        assert!(r.to_string().contains("2 vars x 3 points"));
        assert!(r.waveform("nope").is_none());
    }

    #[test]
    fn dc_sweep_result_roundtrip() {
        let r = DcSweepResult::new(
            vec![0.0, 0.5, 1.0],
            vec!["mid".into(), "I(X1)".into()],
            vec![vec![0.0, 0.4, 0.9], vec![0.0, 1e-3, 2e-3]],
            EngineStats::new(),
        );
        assert_eq!(r.points(), 3);
        let iv = r.curve("I(X1)").unwrap();
        assert_eq!(iv.value_at(0.25), 0.5e-3);
        let mut buf = Vec::new();
        r.write_csv(&mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().starts_with("sweep,mid"));
        assert!(r.to_string().contains("dc sweep"));
    }
}
