//! MLA — the Modified Limiting Algorithm baseline (paper reference \[1\],
//! Bhattacharya & Mazumder, IEEE TCAD 2001).
//!
//! The paper compares SWEC against its own re-implementation of MLA ("due
//! to the unavailability of the MLA code, we present the comparison between
//! SWEC and the implementation of the MLA done by us", §5.1); this module
//! is that same re-implementation. MLA augments SPICE's Newton–Raphson
//! with the three mechanisms \[1\] describes for RTD circuits:
//!
//! 1. **device voltage limiting** — each Newton iteration may move an RTD's
//!    terminal voltage by at most a region-scale `ΔV`, preventing the
//!    iterates from jumping across the NDR region;
//! 2. **source/current stepping** — failed bias points are approached
//!    through a ramp of intermediate source values;
//! 3. **automatic time-step reduction** — transient steps whose Newton
//!    solve fails are halved and retried.
//!
//! MLA *converges* where plain NR oscillates — but pays for it with many
//! Newton iterations per point, each one a device evaluation plus an LU
//! solve. That cost difference is exactly the paper's **Table I**.

use crate::nr::{FailurePolicy, NrEngine, NrOptions, NrSweepResult, NrTransientResult};
use crate::waveform::DcSweepResult;
use crate::{Result, SimError};
use nanosim_circuit::Circuit;

/// Options of the MLA baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct MlaOptions {
    /// Per-iteration clamp on each nonlinear device's voltage change (V).
    /// \[1\] scales this to the RTD's region widths; 50 mV is a
    /// conservative setting that converges on every workload here.
    pub device_v_limit: f64,
    /// Newton iteration cap per solve (MLA typically needs tens).
    pub max_iterations: usize,
    /// Substeps of the current/source-stepping ramp.
    pub source_steps: usize,
    /// Solve every DC point from scratch through the ramp (the \[1\]
    /// procedure, used for Table I) instead of warm-starting from the
    /// previous sweep point.
    pub cold_start: bool,
    /// Minimum transient step for the automatic reduction.
    pub h_min: f64,
}

impl Default for MlaOptions {
    fn default() -> Self {
        MlaOptions {
            device_v_limit: 0.05,
            max_iterations: 500,
            source_steps: 3,
            cold_start: true,
            h_min: 1e-18,
        }
    }
}

impl MlaOptions {
    /// Warm-started variant: continuation from the previous sweep point
    /// (an ablation showing how much of MLA's Table I cost is the
    /// per-point current-stepping ramp).
    pub fn warm_start() -> Self {
        MlaOptions {
            cold_start: false,
            source_steps: 20,
            ..MlaOptions::default()
        }
    }
}

/// The MLA engine — a configured [`NrEngine`] exposing the same analyses.
#[derive(Debug, Clone, Default)]
pub struct MlaEngine {
    inner: NrEngine,
}

impl MlaEngine {
    /// Creates the engine with the given options.
    pub fn new(opts: MlaOptions) -> Self {
        MlaEngine {
            inner: NrEngine::new(NrOptions {
                max_iterations: opts.max_iterations,
                device_v_limit: Some(opts.device_v_limit),
                source_steps: opts.source_steps,
                cold_start: opts.cold_start,
                failure_policy: FailurePolicy::ReduceStep,
                h_min: opts.h_min,
                ..NrOptions::default()
            }),
        }
    }

    /// Attaches a run budget (forwarded to the underlying [`NrEngine`]).
    #[must_use]
    pub fn with_meter(mut self, meter: nanosim_numeric::BudgetMeter) -> Self {
        self.inner = self.inner.with_meter(meter);
        self
    }

    /// The underlying Newton configuration.
    pub fn newton_options(&self) -> &NrOptions {
        self.inner.options()
    }

    /// DC sweep (see [`NrEngine::run_dc_sweep`]).
    ///
    /// # Errors
    /// Propagates structural/parameter errors; per-point convergence is
    /// reported in the result, and an additional
    /// [`SimError::NonConvergence`] is raised if *any* point failed, since
    /// MLA is expected to converge everywhere.
    pub fn run_dc_sweep(
        &self,
        circuit: &Circuit,
        source: &str,
        start: f64,
        stop: f64,
        step: f64,
    ) -> Result<DcSweepResult> {
        let r: NrSweepResult = self
            .inner
            .run_dc_sweep(circuit, source, start, stop, step)?;
        if r.failures() > 0 {
            // Pinpoint the first failing point so the sweep can be triaged
            // without re-running it.
            let idx = r
                .outcomes
                .iter()
                .position(|o| !o.is_converged())
                .unwrap_or(0);
            let value = r.sweep.sweep_values().get(idx).copied();
            let at = value.unwrap_or(start);
            let fx = crate::error::Forensics {
                point_index: Some(idx),
                sweep_value: value,
                ..crate::error::Forensics::default()
            };
            return Err(SimError::non_convergence_with(
                at,
                format!(
                    "MLA failed on {} of {} points (first at point {})",
                    r.failures(),
                    r.outcomes.len(),
                    idx
                ),
                fx,
            ));
        }
        Ok(r.sweep)
    }

    /// Transient analysis with automatic step reduction
    /// (see [`NrEngine::run_transient`]).
    ///
    /// # Errors
    /// Propagates Newton failures that survive step reduction.
    pub fn run_transient(
        &self,
        circuit: &Circuit,
        tstep: f64,
        tstop: f64,
    ) -> Result<NrTransientResult> {
        self.inner.run_transient(circuit, tstep, tstop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_devices::rtd::Rtd;
    use nanosim_devices::sources::SourceWaveform;
    use nanosim_devices::traits::NonlinearTwoTerminal;
    use nanosim_numeric::FlopCounter;

    fn rtd_divider(r: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("mid");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(0.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, r).unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        ckt
    }

    #[test]
    fn mla_sweeps_through_ndr_without_failures() {
        let engine = MlaEngine::new(MlaOptions::default());
        let sweep = engine
            .run_dc_sweep(&rtd_divider(50.0), "V1", 0.0, 5.0, 0.05)
            .unwrap();
        assert_eq!(sweep.points(), 101);
        // The captured curve satisfies KCL at a mid-NDR point.
        let v_mid = sweep.column("mid").unwrap();
        let idx = 80; // 4.0 V, past the peak
        let v = v_mid[idx];
        let mut f = FlopCounter::new();
        let i_rtd = Rtd::date2005().current(v, &mut f);
        let i_r = (4.0 - v) / 50.0;
        assert!((i_rtd - i_r).abs() < 1e-4, "KCL: {i_rtd} vs {i_r}");
    }

    #[test]
    fn mla_uses_many_more_iterations_than_points() {
        // This is the Table I story: MLA converges but iterates.
        let engine = MlaEngine::new(MlaOptions::default());
        let sweep = engine
            .run_dc_sweep(&rtd_divider(50.0), "V1", 0.0, 5.0, 0.05)
            .unwrap();
        let per_point = sweep.stats.iterations_per_step();
        assert!(
            per_point >= 2.0,
            "expected several Newton iterations per point, got {per_point}"
        );
        assert!(sweep.stats.linear_solves >= sweep.points() as u64 * 2);
    }

    #[test]
    fn mla_options_map_to_newton_config() {
        let engine = MlaEngine::new(MlaOptions {
            device_v_limit: 0.02,
            max_iterations: 99,
            source_steps: 7,
            cold_start: true,
            h_min: 1e-15,
        });
        let o = engine.newton_options();
        assert_eq!(o.device_v_limit, Some(0.02));
        assert_eq!(o.max_iterations, 99);
        assert_eq!(o.source_steps, 7);
        assert_eq!(o.failure_policy, FailurePolicy::ReduceStep);
    }

    #[test]
    fn mla_transient_on_rtd_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("mid");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pwl(vec![(0.0, 0.0), (5e-9, 3.0), (10e-9, 3.0)]).unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", a, b, 50.0).unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-13).unwrap();
        let engine = MlaEngine::new(MlaOptions::default());
        let r = engine.run_transient(&ckt, 0.05e-9, 10e-9).unwrap();
        let mid = r.result.waveform("mid").unwrap();
        let end = mid.final_value();
        assert!(end > 2.0 && end < 3.0, "end {end}");
    }
}
