//! Simulation engine errors.

use crate::rescue::RescueTrace;
use nanosim_circuit::{CircuitError, LintReport};
use nanosim_numeric::{BudgetStop, NumericError};
use std::error::Error;
use std::fmt;

/// Diagnostic payload attached to a terminal [`SimError::NonConvergence`]
/// failure: enough to reconstruct *where* and *why* a solve died without
/// re-running it under a debugger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Forensics {
    /// Nodes with the largest final residual magnitudes, worst first, as
    /// `(node name, residual)` pairs.
    pub worst_nodes: Vec<(String, f64)>,
    /// Residual (or update) norm per nonlinear iteration of the failed
    /// solve — the oscillation signature.
    pub residual_history: Vec<f64>,
    /// Every rescue-ladder rung attempted before giving up.
    pub rescue_trace: RescueTrace,
    /// Failing point index, when the failure occurred inside a sweep.
    pub point_index: Option<usize>,
    /// Sweep value at that point.
    pub sweep_value: Option<f64>,
}

/// Summary of the last accepted state before a transient step-size
/// collapse, attached to [`SimError::StepSizeUnderflow`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LastAccepted {
    /// Time of the last accepted step.
    pub time: f64,
    /// Number of accepted steps before the collapse.
    pub steps: usize,
    /// Last accepted value of each tracked signal, as `(name, value)`.
    pub state: Vec<(String, f64)>,
}

/// Errors raised by the simulation engines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The circuit failed validation or MNA construction.
    Circuit(CircuitError),
    /// Preflight static analysis found error-severity diagnostics (a
    /// structurally singular or otherwise doomed circuit) before any
    /// matrix was assembled. The full report is attached.
    Preflight(Box<LintReport>),
    /// A linear solve failed (singular matrix, shape mismatch).
    Numeric(NumericError),
    /// A nonlinear solve did not converge.
    NonConvergence {
        /// Simulation time (or sweep value) at which it failed.
        at: f64,
        /// Engine-specific description (oscillation, max iterations, ...).
        context: String,
        /// Post-mortem payload (worst residual nodes, iteration history,
        /// rescue trace); `None` when the failing engine collects none.
        forensics: Option<Box<Forensics>>,
    },
    /// The run was stopped at a budget checkpoint: cancelled, past its
    /// deadline, or over an iteration/step/byte limit (see
    /// [`nanosim_numeric::Budget`]). The payload names the tripped limit
    /// and where the run stood; it carries no wall-clock values, so a run
    /// killed by a deterministic budget produces a bit-identical error at
    /// every worker count.
    BudgetExceeded {
        /// Which limit stopped the run.
        stop: BudgetStop,
        /// Deterministic checkpoint description ("dc sweep chunk 3",
        /// "transient step", ...).
        context: String,
        /// Post-mortem payload (failing point/chunk, rescue trace);
        /// `None` when the stopping checkpoint collects none.
        forensics: Option<Box<Forensics>>,
    },
    /// Adaptive step control pushed the time step below its minimum.
    StepSizeUnderflow {
        /// Simulation time at which the step collapsed.
        time: f64,
        /// The offending step size.
        step: f64,
        /// Where integration last succeeded; `None` when the failing
        /// engine collects none.
        last_accepted: Option<Box<LastAccepted>>,
    },
    /// The circuit shape is outside what this engine supports.
    UnsupportedCircuit {
        /// What is missing or extra.
        reason: String,
    },
    /// Engine options were inconsistent.
    InvalidConfig {
        /// Description of the inconsistency.
        context: String,
    },
    /// A result was interrogated as the wrong analysis kind (e.g. asking a
    /// DC sweep [`crate::sim::Dataset`] for transient data).
    AnalysisMismatch {
        /// The kind the caller asked for.
        expected: &'static str,
        /// The kind the result actually holds.
        got: &'static str,
    },
}

impl SimError {
    /// A [`SimError::NonConvergence`] without a forensics payload.
    pub fn non_convergence(at: f64, context: impl Into<String>) -> Self {
        SimError::NonConvergence {
            at,
            context: context.into(),
            forensics: None,
        }
    }

    /// A [`SimError::NonConvergence`] carrying a post-mortem payload.
    pub fn non_convergence_with(at: f64, context: impl Into<String>, forensics: Forensics) -> Self {
        SimError::NonConvergence {
            at,
            context: context.into(),
            forensics: Some(Box::new(forensics)),
        }
    }

    /// A [`SimError::BudgetExceeded`] without a forensics payload.
    pub fn budget_exceeded(stop: BudgetStop, context: impl Into<String>) -> Self {
        SimError::BudgetExceeded {
            stop,
            context: context.into(),
            forensics: None,
        }
    }

    /// A [`SimError::BudgetExceeded`] carrying a post-mortem payload.
    pub fn budget_exceeded_with(
        stop: BudgetStop,
        context: impl Into<String>,
        forensics: Forensics,
    ) -> Self {
        SimError::BudgetExceeded {
            stop,
            context: context.into(),
            forensics: Some(Box::new(forensics)),
        }
    }

    /// The budget stop reason, when this is a [`SimError::BudgetExceeded`].
    pub fn budget_stop(&self) -> Option<BudgetStop> {
        match self {
            SimError::BudgetExceeded { stop, .. } => Some(*stop),
            _ => None,
        }
    }

    /// A [`SimError::StepSizeUnderflow`] without a last-accepted summary.
    pub fn step_underflow(time: f64, step: f64) -> Self {
        SimError::StepSizeUnderflow {
            time,
            step,
            last_accepted: None,
        }
    }

    /// A [`SimError::StepSizeUnderflow`] carrying the last accepted state.
    pub fn step_underflow_with(time: f64, step: f64, last: LastAccepted) -> Self {
        SimError::StepSizeUnderflow {
            time,
            step,
            last_accepted: Some(Box::new(last)),
        }
    }

    /// The forensics payload, when this is a [`SimError::NonConvergence`]
    /// that carries one.
    pub fn forensics(&self) -> Option<&Forensics> {
        match self {
            SimError::NonConvergence {
                forensics: Some(fx),
                ..
            }
            | SimError::BudgetExceeded {
                forensics: Some(fx),
                ..
            } => Some(fx),
            _ => None,
        }
    }

    /// The lint report, when this is a [`SimError::Preflight`].
    pub fn preflight_report(&self) -> Option<&LintReport> {
        match self {
            SimError::Preflight(report) => Some(report),
            _ => None,
        }
    }

    /// The last-accepted summary, when this is a
    /// [`SimError::StepSizeUnderflow`] that carries one.
    pub fn last_accepted(&self) -> Option<&LastAccepted> {
        match self {
            SimError::StepSizeUnderflow {
                last_accepted: Some(la),
                ..
            } => Some(la),
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Circuit(e) => write!(f, "circuit error: {e}"),
            SimError::Preflight(report) => {
                write!(f, "preflight rejected the circuit ({})", report.summary())?;
                if let Some(d) = report.errors().next() {
                    write!(f, ": {d}")?;
                }
                Ok(())
            }
            SimError::Numeric(e) => write!(f, "numeric error: {e}"),
            SimError::NonConvergence {
                at,
                context,
                forensics,
            } => {
                write!(f, "no convergence at {at:.6e}: {context}")?;
                if let Some(fx) = forensics {
                    if let Some(idx) = fx.point_index {
                        write!(f, " [sweep point {idx}")?;
                        if let Some(v) = fx.sweep_value {
                            write!(f, " = {v:.6e}")?;
                        }
                        write!(f, "]")?;
                    }
                    if let Some((name, r)) = fx.worst_nodes.first() {
                        write!(f, "; worst node {name} (residual {r:.3e})")?;
                    }
                    if !fx.rescue_trace.is_empty() {
                        write!(f, "; rescue: {}", fx.rescue_trace)?;
                    }
                }
                Ok(())
            }
            SimError::BudgetExceeded {
                stop,
                context,
                forensics,
            } => {
                write!(f, "budget exceeded: {stop} at {context}")?;
                if let Some(fx) = forensics {
                    if let Some(idx) = fx.point_index {
                        write!(f, " [sweep point {idx}")?;
                        if let Some(v) = fx.sweep_value {
                            write!(f, " = {v:.6e}")?;
                        }
                        write!(f, "]")?;
                    }
                    if !fx.rescue_trace.is_empty() {
                        write!(f, "; rescue: {}", fx.rescue_trace)?;
                    }
                }
                Ok(())
            }
            SimError::StepSizeUnderflow {
                time,
                step,
                last_accepted,
            } => {
                write!(f, "time step underflow at t = {time:.6e} (h = {step:.3e})")?;
                if let Some(la) = last_accepted {
                    write!(
                        f,
                        "; last accepted t = {:.6e} after {} steps",
                        la.time, la.steps
                    )?;
                }
                Ok(())
            }
            SimError::UnsupportedCircuit { reason } => {
                write!(f, "unsupported circuit: {reason}")
            }
            SimError::InvalidConfig { context } => write!(f, "invalid config: {context}"),
            SimError::AnalysisMismatch { expected, got } => {
                write!(f, "analysis mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Circuit(e) => Some(e),
            SimError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for SimError {
    fn from(e: CircuitError) -> Self {
        SimError::Circuit(e)
    }
}

impl From<NumericError> for SimError {
    fn from(e: NumericError) -> Self {
        SimError::Numeric(e)
    }
}

impl From<nanosim_devices::DeviceError> for SimError {
    fn from(e: nanosim_devices::DeviceError) -> Self {
        SimError::Circuit(CircuitError::Device(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = SimError::from(CircuitError::EmptyCircuit);
        assert!(e.to_string().contains("circuit error"));
        assert!(e.source().is_some());
        let e = SimError::from(NumericError::SingularMatrix { pivot: 1 });
        assert!(e.source().is_some());
        let e = SimError::non_convergence(1e-9, "oscillating");
        assert!(e.to_string().contains("oscillating"));
        assert!(e.source().is_none());
        assert!(e.forensics().is_none());
    }

    #[test]
    fn forensics_surface_in_display_and_accessor() {
        use crate::rescue::RescueRung;
        let mut fx = Forensics {
            worst_nodes: vec![("mid".into(), 3.2e-2), ("in".into(), 1e-5)],
            residual_history: vec![1.0, 0.9, 1.1],
            point_index: Some(17),
            sweep_value: Some(0.34),
            ..Forensics::default()
        };
        fx.rescue_trace.record(RescueRung::DampedRetry, false, "");
        fx.rescue_trace.record(RescueRung::GminStep, false, "");
        let e = SimError::non_convergence_with(0.34, "fixed point stagnated", fx);
        let s = e.to_string();
        assert!(s.contains("sweep point 17"), "{s}");
        assert!(s.contains("worst node mid"), "{s}");
        assert!(s.contains("gmin-step"), "{s}");
        let fx = e.forensics().unwrap();
        assert_eq!(fx.residual_history.len(), 3);
        assert_eq!(fx.rescue_trace.rungs(), 2);
    }

    #[test]
    fn step_underflow_carries_last_accepted() {
        let e = SimError::step_underflow(1e-9, 1e-18);
        assert!(e.last_accepted().is_none());
        let e = SimError::step_underflow_with(
            1e-9,
            1e-18,
            LastAccepted {
                time: 0.8e-9,
                steps: 412,
                state: vec![("out".into(), 0.55)],
            },
        );
        let la = e.last_accepted().unwrap();
        assert_eq!(la.steps, 412);
        assert!(e.to_string().contains("after 412 steps"));
    }

    #[test]
    fn preflight_error_displays_report_summary() {
        let report = nanosim_circuit::lint_deck("V1 a 0 DC 1\nR1 a 0 1k\nR3 x y 1k\n.op\n");
        assert!(report.has_errors());
        let e = SimError::Preflight(Box::new(report));
        let s = e.to_string();
        assert!(s.contains("preflight rejected"), "{s}");
        assert!(s.contains("floating-node"), "{s}");
        assert!(e.preflight_report().is_some());
        assert!(SimError::from(CircuitError::EmptyCircuit)
            .preflight_report()
            .is_none());
    }

    #[test]
    fn budget_exceeded_carries_stop_and_forensics() {
        let e = SimError::budget_exceeded(BudgetStop::Cancelled, "dc sweep chunk 0");
        assert_eq!(e.budget_stop(), Some(BudgetStop::Cancelled));
        assert!(e.forensics().is_none());
        assert!(
            e.to_string().contains("cancelled at dc sweep chunk 0"),
            "{e}"
        );
        let fx = Forensics {
            point_index: Some(4),
            sweep_value: Some(0.25),
            ..Forensics::default()
        };
        let e = SimError::budget_exceeded_with(
            BudgetStop::NewtonIterations { limit: 8 },
            "dc sweep chunk 0",
            fx,
        );
        assert_eq!(
            e.budget_stop(),
            Some(BudgetStop::NewtonIterations { limit: 8 })
        );
        assert_eq!(e.forensics().unwrap().point_index, Some(4));
        let s = e.to_string();
        assert!(s.contains("limit 8"), "{s}");
        assert!(s.contains("sweep point 4"), "{s}");
        // Identical stops compare equal — the determinism contract of
        // budget-killed sharded runs.
        let a = SimError::budget_exceeded(BudgetStop::DeadlineExceeded, "tran step");
        let b = SimError::budget_exceeded(BudgetStop::DeadlineExceeded, "tran step");
        assert_eq!(a, b);
        assert!(a.budget_stop().is_some());
        assert!(SimError::non_convergence(0.0, "x").budget_stop().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
