//! Simulation engine errors.

use nanosim_circuit::CircuitError;
use nanosim_numeric::NumericError;
use std::error::Error;
use std::fmt;

/// Errors raised by the simulation engines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The circuit failed validation or MNA construction.
    Circuit(CircuitError),
    /// A linear solve failed (singular matrix, shape mismatch).
    Numeric(NumericError),
    /// A nonlinear solve did not converge.
    NonConvergence {
        /// Simulation time (or sweep value) at which it failed.
        at: f64,
        /// Engine-specific description (oscillation, max iterations, ...).
        context: String,
    },
    /// Adaptive step control pushed the time step below its minimum.
    StepSizeUnderflow {
        /// Simulation time at which the step collapsed.
        time: f64,
        /// The offending step size.
        step: f64,
    },
    /// The circuit shape is outside what this engine supports.
    UnsupportedCircuit {
        /// What is missing or extra.
        reason: String,
    },
    /// Engine options were inconsistent.
    InvalidConfig {
        /// Description of the inconsistency.
        context: String,
    },
    /// A result was interrogated as the wrong analysis kind (e.g. asking a
    /// DC sweep [`crate::sim::Dataset`] for transient data).
    AnalysisMismatch {
        /// The kind the caller asked for.
        expected: &'static str,
        /// The kind the result actually holds.
        got: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Circuit(e) => write!(f, "circuit error: {e}"),
            SimError::Numeric(e) => write!(f, "numeric error: {e}"),
            SimError::NonConvergence { at, context } => {
                write!(f, "no convergence at {at:.6e}: {context}")
            }
            SimError::StepSizeUnderflow { time, step } => {
                write!(f, "time step underflow at t = {time:.6e} (h = {step:.3e})")
            }
            SimError::UnsupportedCircuit { reason } => {
                write!(f, "unsupported circuit: {reason}")
            }
            SimError::InvalidConfig { context } => write!(f, "invalid config: {context}"),
            SimError::AnalysisMismatch { expected, got } => {
                write!(f, "analysis mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Circuit(e) => Some(e),
            SimError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for SimError {
    fn from(e: CircuitError) -> Self {
        SimError::Circuit(e)
    }
}

impl From<NumericError> for SimError {
    fn from(e: NumericError) -> Self {
        SimError::Numeric(e)
    }
}

impl From<nanosim_devices::DeviceError> for SimError {
    fn from(e: nanosim_devices::DeviceError) -> Self {
        SimError::Circuit(CircuitError::Device(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = SimError::from(CircuitError::EmptyCircuit);
        assert!(e.to_string().contains("circuit error"));
        assert!(e.source().is_some());
        let e = SimError::from(NumericError::SingularMatrix { pivot: 1 });
        assert!(e.source().is_some());
        let e = SimError::NonConvergence {
            at: 1e-9,
            context: "oscillating".into(),
        };
        assert!(e.to_string().contains("oscillating"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
