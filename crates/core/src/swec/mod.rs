//! The Step-Wise Equivalent Conductance engine — the paper's method.
//!
//! SWEC replaces every nonlinear device at each time point by the constant
//! conductance `Geq = I(V)/V` evaluated from the previous solution (§3.2).
//! Because a passive device's current has the sign of its voltage, `Geq` is
//! *positive even inside a negative-differential-resistance region*, so the
//! linear solves stay well conditioned and no Newton iteration is needed —
//! the paper's cure for the NDR problem. The submodules:
//!
//! * [`conductance`] — per-device `Geq` tracking with the first-order Taylor
//!   extrapolation of paper eq. (5).
//! * [`timestep`] — the adaptive time-step controller of paper eq. (10)–(12).
//! * [`transient`] — backward-Euler / trapezoidal integration of the linear
//!   time-varying system.
//! * [`dc`] — DC sweeps via damped `Geq` fixed-point iteration with source
//!   continuation (used for the paper's Figure 7 and Table I).

pub mod conductance;
pub mod dc;
pub mod timestep;
pub mod transient;

pub use conductance::GeqTracker;
pub use dc::SwecDcSweep;
pub use timestep::{TimeStepController, TimeStepOptions};
pub use transient::SwecTransient;

/// Time integration rule for the linear time-varying system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IntegrationMethod {
    /// First-order implicit (A-stable, damps numerical ringing) — the
    /// paper's choice.
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule (less dissipative; ablation option).
    Trapezoidal,
}

/// How the DC sweep treats each point (paper §5.1 and Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DcMode {
    /// One linear solve per sweep point with `Geq` taken from the previous
    /// point's voltages — "SWEC is a non iterative method and thus yields
    /// high simulation speed" (the Table I configuration). Accuracy follows
    /// the sweep step, exactly like the quasi-transient the paper runs.
    #[default]
    NonIterative,
    /// Damped fixed-point iteration to full self-consistency at every
    /// point (refinement beyond the paper; costs a few solves per point).
    FixedPoint,
}

/// Which adaptive time-step scheme the transient engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StepControl {
    /// Accept/reject on the measured local error of paper eq. (10):
    /// `ε = |ΔV_actual - ΔV_estimated| / |ΔV_actual|`, with the estimate
    /// from linear extrapolation of the previous step. Self-scaling: grows
    /// the step in quiet regions, shrinks it at edges. Default.
    #[default]
    LocalError,
    /// The closed-form a-priori bounds of paper eq. (11)/(12):
    /// `h ≤ 3·ε·V/α` per device and `h ≤ ε·C_j/ΣG_jk` per node. Very
    /// conservative for stiff nodes (an ablation shows the step-count
    /// difference).
    PaperConstraints,
}

/// Options shared by the SWEC transient and DC engines.
#[derive(Debug, Clone, PartialEq)]
pub struct SwecOptions {
    /// Target local error `ε` of paper eq. (10); drives the adaptive step.
    pub epsilon: f64,
    /// Hard minimum time step (s); going below raises
    /// [`crate::SimError::StepSizeUnderflow`].
    pub h_min: f64,
    /// Hard maximum time step (s); also capped by the `.tran` print step.
    pub h_max: f64,
    /// Enable the Geq Taylor extrapolation of paper eq. (5).
    pub taylor_extrapolation: bool,
    /// Integration rule.
    pub integration: IntegrationMethod,
    /// Adaptive step scheme.
    pub step_control: StepControl,
    /// Absolute voltage floor of the local-error test (V).
    pub v_abstol: f64,
    /// Largest accepted per-step node-voltage change (V); larger changes
    /// reject the step and halve `h`.
    pub dv_max: f64,
    /// Conductance added in parallel with every nonlinear device to keep
    /// matrices nonsingular when devices cut off.
    pub gmin: f64,
    /// DC sweep mode (non-iterative per the paper, or fixed point).
    pub dc_mode: DcMode,
    /// DC fixed-point: relaxation factor in `(0, 1]`.
    pub dc_relaxation: f64,
    /// DC fixed-point: convergence tolerance on node voltages (V).
    pub dc_tolerance: f64,
    /// DC fixed-point: iteration cap per sweep point.
    pub dc_max_iterations: usize,
    /// Convergence-rescue ladder configuration (see [`crate::rescue`]).
    /// The ladder only runs after a solve has already failed, so enabling
    /// it cannot change the results of a deck that converges directly.
    pub rescue: crate::rescue::RescueOptions,
    /// When `true`, a transient that dies of step-size underflow returns
    /// the accepted prefix (marked truncated) instead of an error. Off by
    /// default: partial data must be asked for explicitly.
    pub allow_partial: bool,
}

impl Default for SwecOptions {
    fn default() -> Self {
        SwecOptions {
            epsilon: 0.01,
            h_min: 1e-18,
            h_max: f64::INFINITY,
            taylor_extrapolation: true,
            integration: IntegrationMethod::BackwardEuler,
            step_control: StepControl::default(),
            v_abstol: 1e-6,
            dv_max: 0.5,
            gmin: 1e-12,
            dc_mode: DcMode::default(),
            dc_relaxation: 0.5,
            dc_tolerance: 1e-9,
            dc_max_iterations: 400,
            rescue: crate::rescue::RescueOptions::default(),
            allow_partial: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = SwecOptions::default();
        assert!(o.epsilon > 0.0 && o.epsilon < 1.0);
        assert!(o.h_min < 1e-12);
        assert!(o.taylor_extrapolation);
        assert_eq!(o.integration, IntegrationMethod::BackwardEuler);
        assert!(o.dc_relaxation > 0.0 && o.dc_relaxation <= 1.0);
    }

    #[test]
    fn integration_method_default() {
        assert_eq!(
            IntegrationMethod::default(),
            IntegrationMethod::BackwardEuler
        );
    }
}
