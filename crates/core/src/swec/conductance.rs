//! Per-device equivalent-conductance tracking with Taylor extrapolation.
//!
//! Paper eq. (5): the equivalent conductance at the *next* time point is
//! predicted as
//!
//! ```text
//! Geq(n+1) = Geq(n) + (h_n / 2) · G'eq(n)
//! ```
//!
//! where `G'eq = dGeq/dV · dV/dt` (eq. 7) with the analytic `dGeq/dV` of
//! eq. (8) and the backward difference `dV/dt = (V(t_n) - V(t_{n-1}))/h_{n-1}`
//! of eq. (9). The tracker stores the voltage history each device needs.

use nanosim_circuit::mna::NonlinearBinding;
use nanosim_numeric::FlopCounter;

/// History and extrapolation state for one nonlinear device.
#[derive(Debug, Clone)]
struct DeviceState {
    /// Voltage at the last accepted time point.
    v: f64,
    /// Voltage one accepted point earlier.
    v_prev: f64,
    /// Step size between those two points.
    h_prev: f64,
}

/// Tracks `Geq` for every nonlinear two-terminal device across a transient.
#[derive(Debug, Clone)]
pub struct GeqTracker {
    states: Vec<DeviceState>,
    taylor: bool,
}

impl GeqTracker {
    /// Creates a tracker for `n` devices with all voltages at zero.
    pub fn new(n: usize, taylor_extrapolation: bool) -> Self {
        GeqTracker {
            states: vec![
                DeviceState {
                    v: 0.0,
                    v_prev: 0.0,
                    h_prev: 0.0,
                };
                n
            ],
            taylor: taylor_extrapolation,
        }
    }

    /// Number of tracked devices.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the tracker is empty.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Seeds the voltage history of device `i` (used after the DC operating
    /// point so the first transient step starts from consistent voltages).
    pub fn seed(&mut self, i: usize, v: f64) {
        let s = &mut self.states[i];
        s.v = v;
        s.v_prev = v;
        s.h_prev = 0.0;
    }

    /// Predicted equivalent conductance of device `i` for a step of size
    /// `h` ahead of the last accepted point (paper eq. 5–9).
    pub fn predict(
        &self,
        i: usize,
        binding: &NonlinearBinding,
        h: f64,
        flops: &mut FlopCounter,
    ) -> f64 {
        let s = &self.states[i];
        let geq = binding.device.equivalent_conductance(s.v, flops);
        if !self.taylor || s.h_prev <= 0.0 {
            return geq.max(0.0);
        }
        // dV/dt by backward difference (eq. 9).
        let dv_dt = (s.v - s.v_prev) / s.h_prev;
        // G'eq = dGeq/dV * dV/dt (eq. 7).
        let dgeq_dv = binding.device.d_equivalent_conductance_dv(s.v, flops);
        flops.mul(3);
        flops.add(2);
        flops.div(1);
        let predicted = geq + 0.5 * h * dgeq_dv * dv_dt;
        // The prediction must stay a *positive* conductance — that is the
        // whole point of SWEC; clamp at a fraction of the unextrapolated
        // value rather than zero to avoid manufacturing an open circuit.
        if predicted > 0.0 {
            predicted
        } else {
            geq.max(0.0) * 0.5
        }
    }

    /// Records the accepted solution for device `i` after a step of size `h`.
    pub fn commit(&mut self, i: usize, v_new: f64, h: f64) {
        let s = &mut self.states[i];
        s.v_prev = s.v;
        s.v = v_new;
        s.h_prev = h;
    }

    /// Last accepted voltage of device `i`.
    pub fn voltage(&self, i: usize) -> f64 {
        self.states[i].v
    }

    /// Estimated voltage slew of device `i` from its history (V/s); zero
    /// before two points are recorded. Feeds the adaptive step controller.
    pub fn slew(&self, i: usize) -> f64 {
        let s = &self.states[i];
        if s.h_prev > 0.0 {
            (s.v - s.v_prev) / s.h_prev
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_circuit::Circuit;
    use nanosim_circuit::MnaSystem;
    use nanosim_devices::rtd::Rtd;
    use nanosim_devices::sources::SourceWaveform;

    fn rtd_binding() -> NonlinearBinding {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        let b = ckt.node("b");
        ckt.add_resistor("R1", a, b, 50.0).unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        let mna = MnaSystem::new(&ckt).unwrap();
        mna.nonlinear_bindings()[0].clone()
    }

    #[test]
    fn without_history_prediction_is_plain_geq() {
        let b = rtd_binding();
        let mut tracker = GeqTracker::new(1, true);
        tracker.seed(0, 2.0);
        let mut f = FlopCounter::new();
        let geq = b.device.equivalent_conductance(2.0, &mut f);
        let pred = tracker.predict(0, &b, 1e-12, &mut f);
        assert!((pred - geq).abs() < 1e-15);
    }

    #[test]
    fn taylor_prediction_tracks_rising_voltage() {
        let b = rtd_binding();
        let mut tracker = GeqTracker::new(1, true);
        let mut f = FlopCounter::new();
        // Voltage ramping up at 1 V/ns in the PDR1 region (Geq rising? at
        // small bias Geq falls slowly; check against direct evaluation at
        // the extrapolated voltage instead).
        tracker.commit(0, 1.0, 1e-9);
        tracker.commit(0, 1.1, 1e-9);
        let h = 1e-9;
        let pred = tracker.predict(0, &b, h, &mut f);
        let geq_now = b.device.equivalent_conductance(1.1, &mut f);
        let geq_ahead = b.device.equivalent_conductance(1.15, &mut f);
        // Prediction moves from Geq(now) toward Geq at the half-step-ahead
        // voltage.
        let toward = (pred - geq_now) * (geq_ahead - geq_now);
        assert!(toward >= 0.0, "prediction moves the right way");
        assert!((pred - geq_ahead).abs() <= (geq_now - geq_ahead).abs() + 1e-9);
    }

    #[test]
    fn prediction_never_goes_negative() {
        let b = rtd_binding();
        let mut tracker = GeqTracker::new(1, true);
        // Huge downward slew in the NDR region tries to push Geq negative.
        tracker.commit(0, 4.5, 1e-12);
        tracker.commit(0, 3.5, 1e-12);
        let mut f = FlopCounter::new();
        let pred = tracker.predict(0, &b, 1e-9, &mut f);
        assert!(
            pred > 0.0,
            "SWEC conductance must stay positive, got {pred}"
        );
    }

    #[test]
    fn disabled_taylor_ignores_history() {
        let b = rtd_binding();
        let mut tracker = GeqTracker::new(1, false);
        tracker.commit(0, 1.0, 1e-9);
        tracker.commit(0, 2.0, 1e-9);
        let mut f = FlopCounter::new();
        let pred = tracker.predict(0, &b, 1e-9, &mut f);
        let geq = b.device.equivalent_conductance(2.0, &mut f);
        assert!((pred - geq).abs() < 1e-15);
    }

    #[test]
    fn slew_and_voltage_track_commits() {
        let mut tracker = GeqTracker::new(2, true);
        assert_eq!(tracker.len(), 2);
        assert!(!tracker.is_empty());
        assert_eq!(tracker.slew(0), 0.0);
        tracker.commit(0, 1.0, 1e-9);
        tracker.commit(0, 2.0, 1e-9);
        assert_eq!(tracker.voltage(0), 2.0);
        assert!((tracker.slew(0) - 1e9).abs() < 1.0);
        // Device 1 untouched.
        assert_eq!(tracker.voltage(1), 0.0);
    }

    #[test]
    fn seed_resets_history() {
        let mut tracker = GeqTracker::new(1, true);
        tracker.commit(0, 1.0, 1e-9);
        tracker.commit(0, 2.0, 1e-9);
        tracker.seed(0, 0.7);
        assert_eq!(tracker.voltage(0), 0.7);
        assert_eq!(tracker.slew(0), 0.0);
    }
}
