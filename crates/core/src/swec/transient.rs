//! SWEC transient analysis: implicit integration of the linear
//! time-varying system (paper §3.2–3.4).
//!
//! Per accepted time point the engine performs exactly **one sparse LU
//! solve**: the nonlinear devices enter as positive step-wise equivalent
//! conductances predicted from the previous point (optionally
//! Taylor-extrapolated, eq. 5), so no Newton iteration ever runs. The
//! step size comes from the adaptive controller of §3.4 and steps are
//! additionally rejected (and halved) when a node moves more than
//! `dv_max` in one step — the "too large a time step might lead to the
//! failure of implicit integration" guard of §3.2.
//!
//! The per-step solve is a values-only refactorization of one cached
//! analysis. On stiff transients whose conductances swing over many
//! decades, a cached pivot may decay; the embedded
//! [`nanosim_numeric::solve::SparseLuSolver`] then applies one
//! iterative-refinement step at solve time instead of re-pivoting, so
//! the analysis (and its supernodal kernel plan) survives the stiff
//! stretch — `EngineStats::refinement_steps` counts those recoveries.

use crate::assemble::{branch_voltage, mna_var_names, AssemblyWorkspace, CircuitMatrices};
use crate::error::LastAccepted;
use crate::report::EngineStats;
use crate::swec::conductance::GeqTracker;
use crate::swec::dc::SwecDcSweep;
use crate::swec::timestep::{StepConstraint, TimeStepController, TimeStepOptions};
use crate::swec::{IntegrationMethod, StepControl, SwecOptions};
use crate::waveform::TransientResult;
use crate::{Result, SimError};
use nanosim_circuit::element::ElementKind;
use nanosim_circuit::{Circuit, MnaSystem};
use nanosim_numeric::sparse::OrderingChoice;
use nanosim_numeric::{BudgetMeter, BudgetStop, FlopCounter};
use std::time::Instant;

/// Maximum consecutive step rejections before giving up.
const MAX_REJECTIONS: usize = 60;

/// Per-run reusable buffers of the transient stepper (see
/// [`SwecTransient::step`]); allocated once, rewritten every attempt.
#[derive(Debug, Default)]
struct StepBuffers {
    /// Right-hand side of the step's linear system.
    rhs: Vec<f64>,
    /// `b(t)` for the trapezoidal average.
    b_now: Vec<f64>,
    /// Stamped `G` values (no `C/h`) of the current attempt.
    g_vals: Vec<f64>,
    /// Solution of the step's linear system.
    x_new: Vec<f64>,
}

/// The SWEC transient engine.
///
/// # Example
/// ```
/// use nanosim_circuit::Circuit;
/// use nanosim_core::swec::{SwecOptions, SwecTransient};
/// use nanosim_devices::sources::SourceWaveform;
///
/// # fn main() -> Result<(), nanosim_core::SimError> {
/// // RC charging: v(t) = 1 - e^{-t/RC}, RC = 1 ns.
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let b = ckt.node("out");
/// ckt.add_voltage_source("V1", a, Circuit::GROUND,
///     SourceWaveform::pwl(vec![(0.0, 0.0), (1e-12, 1.0), (1.0, 1.0)])?)?;
/// ckt.add_resistor("R1", a, b, 1e3)?;
/// ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-12)?;
/// let result = SwecTransient::new(SwecOptions::default()).run(&ckt, 0.05e-9, 5e-9)?;
/// let out = result.waveform("out").expect("node exists");
/// assert!((out.final_value() - 1.0).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SwecTransient {
    opts: SwecOptions,
    meter: BudgetMeter,
}

impl SwecTransient {
    /// Creates the engine with the given options.
    pub fn new(opts: SwecOptions) -> Self {
        SwecTransient {
            opts,
            meter: BudgetMeter::unlimited(),
        }
    }

    /// Attaches a run budget. The meter's deadline clock is shared with
    /// every fork, so a session-created meter spans the whole request.
    #[must_use]
    pub fn with_meter(mut self, meter: BudgetMeter) -> Self {
        self.meter = meter;
        self
    }

    /// The engine options.
    pub fn options(&self) -> &SwecOptions {
        &self.opts
    }

    /// Runs a transient from `t = 0` to `tstop`. `tstep` bounds the maximum
    /// step (the `.tran` print step); the adaptive controller works below
    /// it.
    ///
    /// # Errors
    /// Fails on invalid parameters, singular matrices, step-size underflow
    /// or a failed initial operating point.
    pub fn run(&self, circuit: &Circuit, tstep: f64, tstop: f64) -> Result<TransientResult> {
        if !(tstep > 0.0 && tstop > 0.0 && tstep <= tstop) {
            return Err(SimError::InvalidConfig {
                context: format!("transient needs 0 < tstep <= tstop (got {tstep}, {tstop})"),
            });
        }
        let mats = CircuitMatrices::new(circuit)?;
        let mut ws = AssemblyWorkspace::new(&mats, false, true, OrderingChoice::default());
        self.run_with(&mats, &mut ws, None, tstep, tstop)
    }

    /// [`SwecTransient::run`] against caller-owned matrices and assembly
    /// workspace (the [`crate::sim::Simulator`] path: the workspace's cached
    /// LU analysis survives across analyses). The workspace must have been
    /// built from `mats` with `with_c = true`. `op_ws` optionally supplies a
    /// no-C workspace for the initial operating point (so a session's
    /// cached DC workspace is reused instead of re-analyzing); factor and
    /// refactor accounting is delta-based on both workspaces so warm caches
    /// are not double counted.
    pub(crate) fn run_with(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        op_ws: Option<&mut AssemblyWorkspace>,
        tstep: f64,
        tstop: f64,
    ) -> Result<TransientResult> {
        if !(tstep > 0.0 && tstop > 0.0 && tstep <= tstop) {
            return Err(SimError::InvalidConfig {
                context: format!("transient needs 0 < tstep <= tstop (got {tstep}, {tstop})"),
            });
        }
        let t_start = Instant::now();
        let lu0 = ws.lu_stats();
        let mna = &mats.mna;
        let dim = mna.dim();
        let mut stats = EngineStats::new();
        let mut flops = FlopCounter::new();

        // Initial state: capacitor ICs when given, DC operating point
        // otherwise.
        let has_ics = mna.circuit().elements().iter().any(|e| {
            matches!(
                e.kind(),
                ElementKind::Capacitor {
                    initial_voltage: Some(_),
                    ..
                }
            )
        });
        let mut run_meter = self.meter.fork();
        let mut x = if has_ics {
            mna.initial_state()
        } else {
            let dc = SwecDcSweep::new(self.opts.clone()).with_meter(run_meter.fork());
            let mut op_stats = EngineStats::new();
            let op = match op_ws {
                Some(ows) => {
                    let op_lu0 = ows.lu_stats();
                    let op = dc.solve_op_ws(mats, ows, &mut op_stats)?;
                    op_stats.absorb_lu(&op_lu0, &ows.lu_stats());
                    op
                }
                None => dc.solve_op_inner(mats, &mut op_stats)?,
            };
            stats.merge(&op_stats);
            op
        };

        // Device history trackers.
        let bindings = mna.nonlinear_bindings();
        let mut tracker = GeqTracker::new(bindings.len(), self.opts.taylor_extrapolation);
        for (i, b) in bindings.iter().enumerate() {
            tracker.seed(i, branch_voltage(&x, b.var_plus, b.var_minus));
        }
        let mosfets = mna.mosfet_bindings();
        let mut mos_state: Vec<(f64, f64)> = mosfets
            .iter()
            .map(|m| {
                let vd = m.var_drain.map_or(0.0, |i| x[i]);
                let vg = m.var_gate.map_or(0.0, |i| x[i]);
                let vs = m.var_source.map_or(0.0, |i| x[i]);
                (vg - vs, vd - vs)
            })
            .collect();

        let node_caps = mna.node_capacitance();
        let h_max = self.opts.h_max.min(tstep);
        let mut controller = TimeStepController::new(
            TimeStepOptions {
                epsilon: self.opts.epsilon,
                h_min: self.opts.h_min,
                h_max,
                safety: 0.9,
                max_growth: 2.0,
            },
            h_max / 100.0,
        );

        // Records.
        let names = mna_var_names(mna);
        let mut times = vec![0.0];
        let mut columns: Vec<Vec<f64>> = (0..dim).map(|i| vec![x[i]]).collect();

        // Step buffers shared by every attempted step of the run (the
        // assembly workspace — pattern + cached refactorizable LU — comes
        // from the caller).
        let mut buf = StepBuffers {
            rhs: vec![0.0; dim],
            b_now: vec![0.0; dim],
            g_vals: Vec::new(),
            x_new: Vec::with_capacity(dim),
        };
        // G-only values (before C/h) of the previously *accepted* step
        // (trapezoidal's G_n).
        let mut g_prev_vals: Option<Vec<f64>> = None;
        // Row sums of |G| per node for the RC constraint (PaperConstraints
        // mode); refreshed after every accepted step.
        let mut g_rowsum = vec![0.0f64; mna.num_nodes()];
        // Previous accepted state and step for the eq. (10) error estimate.
        let mut x_prev: Option<Vec<f64>> = None;
        let mut h_prev = 0.0f64;
        // Local-error mode's own step reference (starts conservative).
        let mut h_ref = h_max / 100.0;

        // The initial point is already recorded; charge it before stepping.
        if let Err(stop) = run_meter.charge_bytes(8 * (1 + dim as u64)) {
            return self.budget_exit(
                stop,
                "swec transient initial point".to_string(),
                0.0,
                names,
                times,
                columns,
                stats,
                flops,
                &lu0,
                ws,
                t_start,
            );
        }

        let mut t = 0.0f64;
        let t_end = tstop * (1.0 - 1e-12);
        while t < t_end {
            // Deterministic budget checkpoint: once per candidate time
            // point, before any step attempt.
            if let Err(stop) = run_meter.checkpoint() {
                return self.budget_exit(
                    stop,
                    format!("swec transient at t = {t:.3e} s"),
                    t,
                    names,
                    times,
                    columns,
                    stats,
                    flops,
                    &lu0,
                    ws,
                    t_start,
                );
            }
            let next_bp = self.next_source_breakpoint(mna, t);
            let mut h = match self.opts.step_control {
                StepControl::PaperConstraints => {
                    // Closed-form constraints (paper eq. 12).
                    let source_slew = mna.max_source_slew(t);
                    let mut constraints: Vec<StepConstraint> = Vec::new();
                    for j in 0..mna.num_nodes() {
                        constraints.push(StepConstraint::NodeRc {
                            capacitance: node_caps[j],
                            conductance: g_rowsum[j],
                        });
                    }
                    for i in 0..bindings.len() {
                        let v = tracker.voltage(i).abs().max(0.05);
                        let alpha = tracker.slew(i).abs().max(source_slew * 0.1);
                        constraints.push(StepConstraint::DeviceSlew { v, alpha });
                    }
                    for (vgs, _) in &mos_state {
                        constraints.push(StepConstraint::DeviceSlew {
                            v: vgs.abs().max(0.05),
                            alpha: source_slew,
                        });
                    }
                    controller.suggest(constraints.iter().copied(), t, tstop, next_bp)
                }
                StepControl::LocalError => {
                    let mut h = h_ref.min(h_max).min(tstop - t);
                    if let Some(bp) = next_bp {
                        if bp > t {
                            h = h.min(bp - t);
                        }
                    }
                    h.max(self.opts.h_min)
                }
            };

            // Attempt / reject loop.
            let mut accepted = false;
            let mut error_ratio = 0.0f64;
            for _ in 0..MAX_REJECTIONS {
                if h < self.opts.h_min {
                    return self.underflow_exit(
                        t, h, &x, names, times, columns, stats, flops, &lu0, ws, t_start,
                    );
                }
                if let Err(e) = self.step(
                    mats,
                    ws,
                    &tracker,
                    &mos_state,
                    &x,
                    t,
                    h,
                    g_prev_vals.as_deref(),
                    &mut buf,
                    &mut stats,
                    &mut flops,
                ) {
                    match e {
                        // A numeric fault (e.g. an injected pivot collapse or
                        // NaN poison) may be transient: the step is fully
                        // re-stamped from clean values, so one retry either
                        // reproduces the failure deterministically or
                        // produces a solution bit-identical to an unfaulted
                        // step.
                        SimError::Numeric(_) => {
                            stats.rescue_rungs += 1;
                            self.step(
                                mats,
                                ws,
                                &tracker,
                                &mos_state,
                                &x,
                                t,
                                h,
                                g_prev_vals.as_deref(),
                                &mut buf,
                                &mut stats,
                                &mut flops,
                            )?;
                            stats.rescues += 1;
                        }
                        other => return Err(other),
                    }
                }
                let solution = &buf.x_new;
                // Hard guard: no *nonlinear device* may see its branch
                // voltage move more than dv_max in one step — that is what
                // invalidates the step-wise Geq linearization. Source-forced
                // linear nodes may jump arbitrarily (their solution is
                // exact).
                let mut max_dv = 0.0f64;
                for b in bindings.iter() {
                    let v_old = branch_voltage(&x, b.var_plus, b.var_minus);
                    let v_new = branch_voltage(solution, b.var_plus, b.var_minus);
                    max_dv = max_dv.max((v_new - v_old).abs());
                }
                for (k, m) in mosfets.iter().enumerate() {
                    let vd = m.var_drain.map_or(0.0, |i| solution[i]);
                    let vg = m.var_gate.map_or(0.0, |i| solution[i]);
                    let vs = m.var_source.map_or(0.0, |i| solution[i]);
                    let (vgs_old, vds_old) = mos_state[k];
                    max_dv = max_dv
                        .max((vg - vs - vgs_old).abs())
                        .max((vd - vs - vds_old).abs());
                }
                if max_dv > self.opts.dv_max {
                    stats.rejected_steps += 1;
                    controller.reject();
                    h *= 0.5;
                    continue;
                }
                // Local-error test (paper eq. 10): compare the actual change
                // with the linear extrapolation of the previous step.
                if self.opts.step_control == StepControl::LocalError {
                    if let Some(xp) = &x_prev {
                        let scale = h / h_prev;
                        let mut r = 0.0f64;
                        for j in 0..mna.num_nodes() {
                            let actual = solution[j] - x[j];
                            let predicted = (x[j] - xp[j]) * scale;
                            let tol = self.opts.v_abstol
                                + self.opts.epsilon * actual.abs().max(x[j].abs() * 0.01);
                            r = r.max((actual - predicted).abs() / tol);
                        }
                        error_ratio = r;
                        if r > 1.0 && h > self.opts.h_min * 2.0 {
                            stats.rejected_steps += 1;
                            // Shrink toward (but never below) the floor; at
                            // the floor the step is accepted as-is.
                            h = (h * (0.9 / r.sqrt()).clamp(0.1, 0.5)).max(self.opts.h_min * 1.01);
                            continue;
                        }
                    }
                }
                accepted = true;
                break;
            }
            if !accepted {
                return self.underflow_exit(
                    t, h, &x, names, times, columns, stats, flops, &lu0, ws, t_start,
                );
            }

            // Budget accounting per *accepted* step (rejected attempts are
            // bounded by MAX_REJECTIONS and carry no payload): the step cap
            // and the result-byte cap both move here, before the step is
            // committed, so a stopped run's prefix never contains the
            // tripping step.
            if let Err(stop) = run_meter
                .tick_step()
                .and_then(|()| run_meter.charge_bytes(8 * (1 + dim as u64)))
            {
                return self.budget_exit(
                    stop,
                    format!("swec transient at t = {t:.3e} s"),
                    t,
                    names,
                    times,
                    columns,
                    stats,
                    flops,
                    &lu0,
                    ws,
                    t_start,
                );
            }

            // Commit device histories.
            for (i, b) in bindings.iter().enumerate() {
                tracker.commit(i, branch_voltage(&buf.x_new, b.var_plus, b.var_minus), h);
            }
            for (k, m) in mosfets.iter().enumerate() {
                let vd = m.var_drain.map_or(0.0, |i| buf.x_new[i]);
                let vg = m.var_gate.map_or(0.0, |i| buf.x_new[i]);
                let vs = m.var_source.map_or(0.0, |i| buf.x_new[i]);
                mos_state[k] = (vg - vs, vd - vs);
            }
            // Refresh node conductance row sums from the stamped G.
            ws.row_abs_sums(&buf.g_vals, &mut g_rowsum);
            if self.opts.integration == IntegrationMethod::Trapezoidal {
                // Keep this step's G values as the next step's G_n,
                // recycling the buffer.
                match &mut g_prev_vals {
                    Some(prev) => std::mem::swap(prev, &mut buf.g_vals),
                    None => g_prev_vals = Some(buf.g_vals.clone()),
                }
            }

            // Next-step reference for the local-error mode.
            if self.opts.step_control == StepControl::LocalError {
                let grow = if error_ratio > 0.0 {
                    (0.9 / error_ratio.sqrt()).clamp(0.3, 2.0)
                } else {
                    2.0
                };
                h_ref = (h * grow).clamp(self.opts.h_min, h_max);
            }

            match &mut x_prev {
                Some(p) => p.copy_from_slice(&x),
                None => x_prev = Some(x.clone()),
            }
            h_prev = h;
            std::mem::swap(&mut x, &mut buf.x_new);
            t += h;
            controller.accept(h);
            stats.steps += 1;
            times.push(t);
            for (i, c) in columns.iter_mut().enumerate() {
                c.push(x[i]);
            }
        }
        stats.flops += flops;
        stats.absorb_lu(&lu0, &ws.lu_stats());
        stats.elapsed = t_start.elapsed();
        Ok(TransientResult::new(times, names, columns, stats))
    }

    /// Terminal handling of a step-size underflow at `t`: with
    /// `allow_partial` set, the accepted prefix is returned as a result
    /// marked truncated; otherwise a [`SimError::StepSizeUnderflow`]
    /// carrying the last accepted time/state summary is raised.
    #[allow(clippy::too_many_arguments)]
    fn underflow_exit(
        &self,
        t: f64,
        h: f64,
        x: &[f64],
        names: Vec<String>,
        times: Vec<f64>,
        columns: Vec<Vec<f64>>,
        mut stats: EngineStats,
        flops: FlopCounter,
        lu0: &nanosim_numeric::solve::LuStats,
        ws: &AssemblyWorkspace,
        t_start: Instant,
    ) -> Result<TransientResult> {
        if self.opts.allow_partial {
            stats.flops += flops;
            stats.absorb_lu(lu0, &ws.lu_stats());
            stats.elapsed = t_start.elapsed();
            return Ok(TransientResult::new_truncated(
                times, names, columns, stats, t,
            ));
        }
        let state = names.into_iter().zip(x.iter().copied()).collect();
        Err(SimError::step_underflow_with(
            t,
            h,
            LastAccepted {
                time: t,
                steps: stats.steps as usize,
                state,
            },
        ))
    }

    /// Terminal handling of a budget stop at `t`: with `allow_partial` set,
    /// the accepted prefix is returned as a result marked truncated;
    /// otherwise a [`SimError::BudgetExceeded`] is raised. Mirrors
    /// [`SwecTransient::underflow_exit`] so budget kills and step-size
    /// underflows salvage through the same machinery.
    #[allow(clippy::too_many_arguments)]
    fn budget_exit(
        &self,
        stop: BudgetStop,
        context: String,
        t: f64,
        names: Vec<String>,
        times: Vec<f64>,
        columns: Vec<Vec<f64>>,
        mut stats: EngineStats,
        flops: FlopCounter,
        lu0: &nanosim_numeric::solve::LuStats,
        ws: &AssemblyWorkspace,
        t_start: Instant,
    ) -> Result<TransientResult> {
        if self.opts.allow_partial {
            stats.flops += flops;
            stats.absorb_lu(lu0, &ws.lu_stats());
            stats.elapsed = t_start.elapsed();
            return Ok(TransientResult::new_truncated(
                times, names, columns, stats, t,
            ));
        }
        Err(SimError::budget_exceeded(stop, context))
    }

    /// Assembles and solves one candidate step in place: the workspace
    /// pattern is re-stamped (no matrix clone / CSR rebuild), the cached LU
    /// is refactored, and the results land in `buf` — `buf.x_new` holds the
    /// solution and `buf.g_vals` the stamped `G` values without the `C/h`
    /// part (for the step controller's row sums and trapezoidal history).
    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        tracker: &GeqTracker,
        mos_state: &[(f64, f64)],
        x: &[f64],
        t: f64,
        h: f64,
        g_prev: Option<&[f64]>,
        buf: &mut StepBuffers,
        stats: &mut EngineStats,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        let mna = &mats.mna;
        let dim = mna.dim();
        let StepBuffers {
            rhs,
            b_now,
            g_vals,
            x_new,
        } = buf;
        // G(t+h) with SWEC device stamps.
        ws.begin();
        for (i, b) in mna.nonlinear_bindings().iter().enumerate() {
            let geq = tracker.predict(i, b, h, flops) + self.opts.gmin;
            stats.device_evals += 1;
            ws.stamp_nonlinear(i, geq);
        }
        for (k, m) in mna.mosfet_bindings().iter().enumerate() {
            let (vgs, vds) = mos_state[k];
            let geq = m.model.geq(vgs, vds, flops) + self.opts.gmin;
            stats.device_evals += 1;
            ws.stamp_mosfet_cond(k, geq);
        }
        ws.snapshot_values(g_vals);

        // System matrix and right-hand side per the integration rule.
        match self.opts.integration {
            IntegrationMethod::BackwardEuler => {
                // (G + C/h) x_{n+1} = b(t+h) + (C/h) x_n
                ws.add_c_over_h(h, flops);
                mna.stamp_rhs(t + h, rhs);
                mats.c_csr.matvec_acc(1.0 / h, x, rhs, flops)?;
            }
            IntegrationMethod::Trapezoidal => {
                // (C/h + G_{n+1}/2) x_{n+1}
                //     = (C/h) x_n - (G_n/2) x_n + (b_n + b_{n+1})/2
                ws.scale_values(0.5, flops);
                ws.add_c_over_h(h, flops);
                mna.stamp_rhs(t, b_now);
                mna.stamp_rhs(t + h, rhs);
                for i in 0..dim {
                    rhs[i] = 0.5 * (rhs[i] + b_now[i]);
                }
                flops.fma(dim as u64);
                mats.c_csr.matvec_acc(1.0 / h, x, rhs, flops)?;
                let g_n: &[f64] = g_prev.unwrap_or(g_vals);
                ws.matvec_acc_with(g_n, -0.5, x, rhs, flops);
            }
        }
        ws.factor_solve(rhs, x_new, flops)?;
        stats.linear_solves += 1;
        Ok(())
    }

    /// Earliest breakpoint of any source strictly after `t`.
    fn next_source_breakpoint(&self, mna: &MnaSystem, t: f64) -> Option<f64> {
        let mut best: Option<f64> = None;
        for (i, _) in mna.circuit().elements().iter().enumerate() {
            if let Some(wf) = mna.source_waveform(i) {
                if let Some(bp) = wf.next_breakpoint(t) {
                    best = Some(match best {
                        Some(b) => b.min(bp),
                        None => bp,
                    });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;
    use nanosim_devices::rtd::Rtd;
    use nanosim_devices::sources::{PulseParams, SourceWaveform};
    use nanosim_numeric::approx_eq;

    fn engine() -> SwecTransient {
        SwecTransient::new(SwecOptions::default())
    }

    fn rc_step_circuit(r: f64, c: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("out");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pwl(vec![(0.0, 0.0), (1e-12, 1.0), (1.0, 1.0)]).unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", a, b, r).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, c).unwrap();
        ckt
    }

    #[test]
    fn rc_charging_matches_analytic() {
        // tau = 1 ns; run 5 tau.
        let result = engine()
            .run(&rc_step_circuit(1e3, 1e-12), 0.05e-9, 5e-9)
            .unwrap();
        let out = result.waveform("out").unwrap();
        for frac in [0.5, 1.0, 2.0, 3.0] {
            let t = frac * 1e-9;
            let expected = 1.0 - (-frac as f64).exp();
            let got = out.value_at(t);
            assert!((got - expected).abs() < 0.02, "t={t}: {got} vs {expected}");
        }
        assert!(result.stats.steps > 10);
        assert!(result.stats.flops.total() > 0);
    }

    #[test]
    fn capacitor_initial_condition_respected() {
        let mut ckt = Circuit::new();
        let b = ckt.node("out");
        ckt.add_resistor("R1", b, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor_ic("C1", b, Circuit::GROUND, 1e-12, Some(2.0))
            .unwrap();
        let result = engine().run(&ckt, 0.05e-9, 5e-9).unwrap();
        let out = result.waveform("out").unwrap();
        assert!(approx_eq(out.first_value(), 2.0, 1e-9));
        // Discharges toward zero with tau = 1 ns.
        let at_tau = out.value_at(1e-9);
        assert!((at_tau - 2.0 * (-1.0f64).exp()).abs() < 0.05, "{at_tau}");
    }

    #[test]
    fn pulse_edges_are_captured() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("out");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pulse(PulseParams {
                v1: 0.0,
                v2: 5.0,
                delay: 1e-9,
                rise: 0.1e-9,
                fall: 0.1e-9,
                width: 2e-9,
                period: 10e-9,
            })
            .unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", a, b, 100.0).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-13).unwrap();
        let result = engine().run(&ckt, 0.05e-9, 6e-9).unwrap();
        let out = result.waveform("out").unwrap();
        // Before the pulse: 0; on the plateau: ~5; after the fall: ~0.
        assert!(out.value_at(0.5e-9).abs() < 1e-3);
        assert!((out.value_at(2.5e-9) - 5.0).abs() < 0.05);
        assert!(out.value_at(5.0e-9).abs() < 0.1);
        // A time point lands exactly on the pulse start.
        assert!(
            result.times().iter().any(|&t| (t - 1e-9).abs() < 1e-15),
            "breakpoint not hit"
        );
    }

    #[test]
    fn rtd_divider_transient_is_stable_in_ndr() {
        // Drive an RTD through its NDR region with a ramp: SWEC must not
        // oscillate or fail (this is the paper's core robustness claim).
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("mid");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pwl(vec![(0.0, 0.0), (10e-9, 5.0), (20e-9, 5.0)]).unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", a, b, 50.0).unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-13).unwrap();
        let result = engine().run(&ckt, 0.1e-9, 20e-9).unwrap();
        let mid = result.waveform("mid").unwrap();
        // The node follows the ramp monotonically-ish and ends near 5 V
        // minus the RTD drop across 50 ohms.
        let end = mid.final_value();
        assert!(end > 4.0 && end < 5.0, "end {end}");
        // No wild oscillation: successive samples never jump more than dv_max.
        let vals = mid.values();
        for w in vals.windows(2) {
            assert!((w[1] - w[0]).abs() <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn trapezoidal_matches_backward_euler_on_rc() {
        let ckt = rc_step_circuit(1e3, 1e-12);
        let be = engine().run(&ckt, 0.05e-9, 5e-9).unwrap();
        let tr = SwecTransient::new(SwecOptions {
            integration: IntegrationMethod::Trapezoidal,
            ..SwecOptions::default()
        })
        .run(&ckt, 0.05e-9, 5e-9)
        .unwrap();
        let wb = be.waveform("out").unwrap();
        let wt = tr.waveform("out").unwrap();
        assert!(wb.rms_difference(&wt) < 0.02, "{}", wb.rms_difference(&wt));
    }

    #[test]
    fn taylor_off_still_works() {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("mid");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pwl(vec![(0.0, 0.0), (5e-9, 3.0), (10e-9, 3.0)]).unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", a, b, 50.0).unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-13).unwrap();
        let with = engine().run(&ckt, 0.1e-9, 10e-9).unwrap();
        let without = SwecTransient::new(SwecOptions {
            taylor_extrapolation: false,
            ..SwecOptions::default()
        })
        .run(&ckt, 0.1e-9, 10e-9)
        .unwrap();
        let a1 = with.waveform("mid").unwrap();
        let a2 = without.waveform("mid").unwrap();
        assert!(a1.rms_difference(&a2) < 0.05);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let ckt = rc_step_circuit(1e3, 1e-12);
        let e = engine();
        assert!(e.run(&ckt, 0.0, 1e-9).is_err());
        assert!(e.run(&ckt, 1e-9, 0.0).is_err());
        assert!(e.run(&ckt, 2e-9, 1e-9).is_err());
    }

    #[test]
    fn branch_current_recorded() {
        let result = engine()
            .run(&rc_step_circuit(1e3, 1e-12), 0.05e-9, 5e-9)
            .unwrap();
        let i_v1: Waveform = result.waveform("I(V1)").unwrap();
        // After charging, the source current decays to ~0; early it is
        // ~-1 mA (current flows out of the source's + terminal).
        assert!(i_v1.value_at(0.05e-9) < -0.5e-3);
        assert!(i_v1.final_value().abs() < 1e-4);
    }

    #[test]
    fn adaptive_step_grows_in_quiet_regions() {
        // After the transient settles the controller should take steps near
        // the h_max bound, so the run uses far fewer points than tstop/h_min.
        let result = engine()
            .run(&rc_step_circuit(1e3, 1e-12), 0.1e-9, 50e-9)
            .unwrap();
        assert!(
            result.stats.steps < 5000,
            "too many steps: {}",
            result.stats.steps
        );
    }
}
