//! Adaptive time-step control (paper §3.4, eq. 10–12).
//!
//! For a target local error `ε` the paper derives two families of
//! constraints on the next step `h`:
//!
//! * **device constraint** (from the inverter analysis of eq. 11):
//!   `h ≤ 3·ε·|V_i0| / α`, where `V_i0` is the device's controlling voltage
//!   and `α` its slew `dV/dt`;
//! * **node constraint** (eq. 11/12): `h ≤ ε·C_j / Σ_k G_jk(t)` — the step
//!   must stay below a fraction of each node's local RC time constant.
//!
//! The next step is the minimum over all constraints (eq. 12), scaled by a
//! safety factor, clamped to `[h_min, h_max]`, and snapped to source
//! breakpoints so pulse edges are hit exactly.

/// Configuration of the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeStepOptions {
    /// Target local error `ε` (paper eq. 10).
    pub epsilon: f64,
    /// Smallest allowed step (s).
    pub h_min: f64,
    /// Largest allowed step (s).
    pub h_max: f64,
    /// Multiplier applied after the minimum is taken (0 < safety <= 1).
    pub safety: f64,
    /// Growth cap: the accepted step may grow at most this factor per step.
    pub max_growth: f64,
}

impl Default for TimeStepOptions {
    fn default() -> Self {
        TimeStepOptions {
            epsilon: 0.01,
            h_min: 1e-18,
            h_max: f64::INFINITY,
            safety: 0.9,
            max_growth: 2.0,
        }
    }
}

/// One device/node constraint fed to the controller (for diagnostics the
/// source of each bound is kept).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StepConstraint {
    /// `h <= 3 ε |v| / α` for a device with controlling voltage `v` and
    /// slew `α` (paper eq. 11, first bound).
    DeviceSlew {
        /// Controlling voltage magnitude (V).
        v: f64,
        /// Voltage slew magnitude (V/s).
        alpha: f64,
    },
    /// `h <= ε C / G` for a node with grounded capacitance `C` and total
    /// connected conductance `G` (paper eq. 11/12, second bound).
    NodeRc {
        /// Node capacitance (F).
        capacitance: f64,
        /// Sum of connected conductance magnitudes (S).
        conductance: f64,
    },
}

impl StepConstraint {
    /// The bound this constraint puts on `h` for error target `epsilon`;
    /// `+inf` when the constraint is inactive (zero slew, no capacitance).
    pub fn bound(&self, epsilon: f64) -> f64 {
        match *self {
            StepConstraint::DeviceSlew { v, alpha } => {
                if alpha.abs() > 0.0 && v.abs() > 0.0 {
                    3.0 * epsilon * v.abs() / alpha.abs()
                } else {
                    f64::INFINITY
                }
            }
            StepConstraint::NodeRc {
                capacitance,
                conductance,
            } => {
                if capacitance > 0.0 && conductance > 0.0 {
                    epsilon * capacitance / conductance
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

/// The adaptive step controller.
#[derive(Debug, Clone)]
pub struct TimeStepController {
    opts: TimeStepOptions,
    last_h: f64,
}

impl TimeStepController {
    /// Creates a controller; the first suggestion is bounded by
    /// `initial_h * max_growth`.
    pub fn new(opts: TimeStepOptions, initial_h: f64) -> Self {
        TimeStepController {
            opts,
            last_h: initial_h,
        }
    }

    /// The configured options.
    pub fn options(&self) -> &TimeStepOptions {
        &self.opts
    }

    /// Suggests the next step from the active constraints (paper eq. 12:
    /// the minimum over devices and nodes), respecting growth, bounds, the
    /// remaining simulation span and the next source breakpoint.
    pub fn suggest(
        &self,
        constraints: impl IntoIterator<Item = StepConstraint>,
        time: f64,
        t_stop: f64,
        next_breakpoint: Option<f64>,
    ) -> f64 {
        let eps = self.opts.epsilon;
        let mut h = self.opts.h_max;
        for c in constraints {
            h = h.min(c.bound(eps));
        }
        h *= self.opts.safety;
        h = h.min(self.last_h * self.opts.max_growth);
        // Never step past the end or across a source corner.
        h = h.min(t_stop - time);
        if let Some(bp) = next_breakpoint {
            if bp > time {
                h = h.min(bp - time);
            }
        }
        h.max(self.opts.h_min)
    }

    /// Records the step that was actually accepted.
    pub fn accept(&mut self, h: f64) {
        self.last_h = h;
    }

    /// Records a rejection: the controller halves its growth reference so
    /// the retry is smaller.
    pub fn reject(&mut self) {
        self.last_h = (self.last_h * 0.25).max(self.opts.h_min);
    }

    /// The last accepted (or post-rejection) reference step.
    pub fn last_step(&self) -> f64 {
        self.last_h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> TimeStepOptions {
        TimeStepOptions {
            epsilon: 0.01,
            h_min: 1e-15,
            h_max: 1e-9,
            safety: 1.0,
            max_growth: 1e9,
        }
    }

    #[test]
    fn device_constraint_formula() {
        // h <= 3 eps v / alpha = 3 * 0.01 * 2 / 6e9 = 1e-11.
        let c = StepConstraint::DeviceSlew { v: 2.0, alpha: 6e9 };
        assert!((c.bound(0.01) - 1e-11).abs() < 1e-24);
        // Zero slew -> inactive.
        let c = StepConstraint::DeviceSlew { v: 2.0, alpha: 0.0 };
        assert_eq!(c.bound(0.01), f64::INFINITY);
    }

    #[test]
    fn node_constraint_formula() {
        // h <= eps C / G = 0.01 * 1e-12 / 1e-3 = 1e-11.
        let c = StepConstraint::NodeRc {
            capacitance: 1e-12,
            conductance: 1e-3,
        };
        assert!((c.bound(0.01) - 1e-11).abs() < 1e-24);
        let c = StepConstraint::NodeRc {
            capacitance: 0.0,
            conductance: 1e-3,
        };
        assert_eq!(c.bound(0.01), f64::INFINITY);
    }

    #[test]
    fn suggest_takes_minimum_constraint() {
        let ctl = TimeStepController::new(opts(), 1e-9);
        let h = ctl.suggest(
            vec![
                StepConstraint::DeviceSlew { v: 1.0, alpha: 3e9 }, // 1e-11
                StepConstraint::NodeRc {
                    capacitance: 1e-12,
                    conductance: 1e-4,
                }, // 1e-10
            ],
            0.0,
            1e-6,
            None,
        );
        assert!((h - 1e-11).abs() < 1e-24, "h = {h}");
    }

    #[test]
    fn suggest_respects_h_max_when_unconstrained() {
        let ctl = TimeStepController::new(opts(), 1e-9);
        let h = ctl.suggest(vec![], 0.0, 1e-6, None);
        assert_eq!(h, 1e-9);
    }

    #[test]
    fn suggest_stops_at_breakpoints_and_end() {
        let ctl = TimeStepController::new(opts(), 1e-9);
        // Breakpoint 0.3 ns away beats everything.
        let h = ctl.suggest(vec![], 1e-9, 1e-6, Some(1.3e-9));
        assert!((h - 0.3e-9).abs() < 1e-22);
        // End of simulation 0.1 ns away.
        let h = ctl.suggest(vec![], 0.9999e-6, 1e-6, None);
        assert!(h <= 1.001e-10);
    }

    #[test]
    fn growth_is_capped() {
        let mut o = opts();
        o.max_growth = 2.0;
        let mut ctl = TimeStepController::new(o, 1e-12);
        let h = ctl.suggest(vec![], 0.0, 1.0, None);
        assert!((h - 2e-12).abs() < 1e-24);
        ctl.accept(2e-12);
        let h2 = ctl.suggest(vec![], 0.0, 1.0, None);
        assert!((h2 - 4e-12).abs() < 1e-24);
    }

    #[test]
    fn reject_shrinks_reference() {
        let mut ctl = TimeStepController::new(opts(), 1e-10);
        ctl.reject();
        assert!((ctl.last_step() - 2.5e-11).abs() < 1e-22);
    }

    #[test]
    fn h_min_floor() {
        let mut o = opts();
        o.h_min = 1e-12;
        let ctl = TimeStepController::new(o, 1e-9);
        let h = ctl.suggest(
            vec![StepConstraint::DeviceSlew {
                v: 1e-9,
                alpha: 1e12,
            }],
            0.0,
            1.0,
            None,
        );
        assert_eq!(h, 1e-12);
    }
}
