//! SWEC DC analysis: damped equivalent-conductance fixed point with source
//! continuation.
//!
//! At each sweep value the nonlinear devices are replaced by
//! `Geq(v) = I(v)/v` evaluated at the current iterate, the resulting
//! *linear* system is solved, and the iterate is relaxed toward the
//! solution until self-consistent. No Jacobian is ever formed, and every
//! stamped conductance is positive — even when the operating point sits in
//! an NDR region, which is where Newton-based solvers oscillate (paper
//! §3.1/§5.1, Figure 7). Each sweep point starts from the previous point's
//! solution (continuation), so a handful of iterations usually suffice.

use crate::assemble::{
    branch_voltage, mna_var_names, override_source_rhs, require_sweepable_source,
    AssemblyWorkspace, CircuitMatrices,
};
use crate::error::Forensics;
use crate::report::EngineStats;
use crate::rescue::{RescueRung, RescueTrace};
use crate::swec::SwecOptions;
use crate::waveform::DcSweepResult;
use crate::{Result, SimError};
use nanosim_circuit::Circuit;
use nanosim_numeric::solve::LuStats;
use nanosim_numeric::sparse::OrderingChoice;
use nanosim_numeric::{BudgetMeter, FlopCounter};
use std::time::Instant;

/// Reusable buffers of the DC fixed-point iteration; allocated once per run.
#[derive(Debug, Default)]
pub(crate) struct DcBuffers {
    rhs: Vec<f64>,
    x_new: Vec<f64>,
    best_x: Vec<f64>,
    /// Per-iteration update norms of the most recent fixed-point solve;
    /// becomes the forensics `residual_history` when the solve fails.
    history: Vec<f64>,
}

/// The SWEC DC sweep engine.
///
/// See the crate-level example for usage; [`SwecDcSweep::solve_op`] exposes
/// the single-point solver used for operating points.
#[derive(Debug, Clone, Default)]
pub struct SwecDcSweep {
    opts: SwecOptions,
    meter: BudgetMeter,
}

impl SwecDcSweep {
    /// Creates the engine with the given options.
    pub fn new(opts: SwecOptions) -> Self {
        SwecDcSweep {
            opts,
            meter: BudgetMeter::unlimited(),
        }
    }

    /// Attaches a run budget / cancellation meter; analyses fork it so the
    /// deadline clock is shared with the caller while iteration accounting
    /// stays per-solve. Defaults to an inert unlimited meter.
    #[must_use]
    pub fn with_meter(mut self, meter: BudgetMeter) -> Self {
        self.meter = meter;
        self
    }

    /// The engine options.
    pub fn options(&self) -> &SwecOptions {
        &self.opts
    }

    /// Sweeps the named V/I source from `start` to `stop` (inclusive) in
    /// increments of `step`.
    ///
    /// # Errors
    /// Fails on invalid sweep parameters, unknown source names, singular
    /// matrices, or fixed-point non-convergence.
    pub fn run(
        &self,
        circuit: &Circuit,
        source: &str,
        start: f64,
        stop: f64,
        step: f64,
    ) -> Result<DcSweepResult> {
        if step == 0.0 || !step.is_finite() || (stop - start) * step < 0.0 {
            return Err(SimError::InvalidConfig {
                context: format!("dc sweep {start}..{stop} with step {step}"),
            });
        }
        let t0 = Instant::now();
        let mats = CircuitMatrices::new(circuit)?;
        require_sweepable_source(&mats.mna, source)?;
        let mut stats = EngineStats::new();
        let mut ws = AssemblyWorkspace::new(&mats, false, false, OrderingChoice::default());
        let mut buf = DcBuffers::default();
        let n_points = ((stop - start) / step).round() as i64 + 1;
        let n_points = n_points.max(1) as usize;

        let var_names = mna_var_names(&mats.mna);
        let mut names = var_names.clone();
        for b in mats.mna.nonlinear_bindings() {
            names.push(format!("I({})", b.name));
        }
        for m in mats.mna.mosfet_bindings() {
            names.push(format!("I({})", m.name));
        }
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(n_points); names.len()];
        let mut sweep = Vec::with_capacity(n_points);

        // The result shape is known up front: charge it all before any work.
        let mut run_meter = self.meter.fork();
        run_meter
            .charge_bytes(8 * (n_points as u64) * (1 + names.len() as u64))
            .map_err(|stop| {
                SimError::budget_exceeded(stop, format!("dc sweep of {n_points} points"))
            })?;

        let mut x = vec![0.0; mats.mna.dim()];
        for k in 0..n_points {
            run_meter
                .checkpoint()
                .map_err(|stop| SimError::budget_exceeded(stop, format!("dc sweep point {k}")))?;
            // Iteration accounting restarts at every point (per-solve cap).
            let mut pm = run_meter.fork();
            let value = start + step * k as f64;
            // The first point is always solved to self-consistency (there is
            // no previous point to borrow Geq from); afterwards the
            // non-iterative mode performs exactly one solve per point.
            x = if k == 0 || self.opts.dc_mode == crate::swec::DcMode::FixedPoint {
                match self.solve_point_ws(
                    &mats,
                    &mut ws,
                    &mut buf,
                    Some((source, value)),
                    &x,
                    None,
                    &mut stats,
                    &mut pm,
                ) {
                    Ok(x_new) => x_new,
                    // At a genuine bistability fold the fixed point has no
                    // single answer; step across it like the quasi-transient
                    // the paper runs.
                    Err(SimError::NonConvergence { .. }) if k > 0 => self.solve_noniterative_ws(
                        &mats,
                        &mut ws,
                        &mut buf,
                        Some((source, value)),
                        &x,
                        &mut stats,
                        &mut run_meter.fork(),
                    )?,
                    Err(e) => return Err(e),
                }
            } else {
                self.solve_noniterative_ws(
                    &mats,
                    &mut ws,
                    &mut buf,
                    Some((source, value)),
                    &x,
                    &mut stats,
                    &mut pm,
                )?
            };
            sweep.push(value);
            for (i, &xi) in x.iter().enumerate() {
                columns[i].push(xi);
            }
            let mut col = var_names.len();
            let mut flops = FlopCounter::new();
            for b in mats.mna.nonlinear_bindings() {
                let v = branch_voltage(&x, b.var_plus, b.var_minus);
                columns[col].push(b.device.current(v, &mut flops));
                col += 1;
            }
            for m in mats.mna.mosfet_bindings() {
                let vd = m.var_drain.map_or(0.0, |i| x[i]);
                let vg = m.var_gate.map_or(0.0, |i| x[i]);
                let vs = m.var_source.map_or(0.0, |i| x[i]);
                columns[col].push(m.model.ids(vg - vs, vd - vs, &mut flops));
                col += 1;
            }
            stats.flops += flops;
            stats.steps += 1;
        }
        stats.absorb_lu(&LuStats::default(), &ws.lu_stats());
        stats.elapsed = t0.elapsed();
        Ok(DcSweepResult::new(sweep, names, columns, stats))
    }

    /// Solves the operating point of a circuit with all sources at their
    /// `t = 0` values, returning the MNA solution vector. Falls back to
    /// source-ramp continuation (the paper's quasi-transient start) when
    /// the direct fixed point cycles between branches of a bistable
    /// circuit.
    ///
    /// # Errors
    /// Fails on singular matrices or fixed-point non-convergence even
    /// under continuation.
    pub fn solve_op(&self, circuit: &Circuit) -> Result<Vec<f64>> {
        let mats = CircuitMatrices::new(circuit)?;
        let mut stats = EngineStats::new();
        self.solve_op_inner(&mats, &mut stats)
    }

    /// Operating point with continuation fallback (internal; shares stats
    /// with the calling engine).
    pub(crate) fn solve_op_inner(
        &self,
        mats: &CircuitMatrices,
        stats: &mut EngineStats,
    ) -> Result<Vec<f64>> {
        let mut ws = AssemblyWorkspace::new(mats, false, false, OrderingChoice::default());
        let result = self.solve_op_ws(mats, &mut ws, stats);
        stats.absorb_lu(&LuStats::default(), &ws.lu_stats());
        result
    }

    /// Operating point with rescue-ladder fallback against a caller-owned
    /// workspace. Factor/refactor accounting is the *caller's* job (the
    /// workspace counts are cumulative, so a reused session workspace must
    /// be delta-accounted).
    ///
    /// A converging deck never enters the ladder; a failing one escalates
    /// deterministically through damped retry, gmin stepping, source
    /// stepping (the paper's quasi-transient power-up) and pseudo-transient
    /// continuation, in that order.
    pub(crate) fn solve_op_ws(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        stats: &mut EngineStats,
    ) -> Result<Vec<f64>> {
        let mut buf = DcBuffers::default();
        let x0 = vec![0.0; mats.mna.dim()];
        let meter = self.meter.fork();
        match self.solve_point_ws(
            mats,
            ws,
            &mut buf,
            None,
            &x0,
            None,
            stats,
            &mut meter.fork(),
        ) {
            Ok(x) => Ok(x),
            Err(e @ (SimError::NonConvergence { .. } | SimError::Numeric(_)))
                if self.opts.rescue.enabled =>
            {
                self.rescue_op(mats, ws, &mut buf, stats, e, &meter)
            }
            Err(e) => Err(e),
        }
    }

    /// The convergence-rescue ladder for an operating point whose direct
    /// solve failed with `original`. Each rung is attempted in order; the
    /// first success returns its solution and counts one rescue. On
    /// exhaustion the original error is returned, annotated (when it is a
    /// [`SimError::NonConvergence`]) with the full [`RescueTrace`].
    fn rescue_op(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        buf: &mut DcBuffers,
        stats: &mut EngineStats,
        original: SimError,
        meter: &BudgetMeter,
    ) -> Result<Vec<f64>> {
        // Budget checkpoint at the foot of every rung: a cancelled or
        // expired run stops *between* rungs with the partial trace attached.
        let rung_gate = |rung: RescueRung, trace: &RescueTrace| -> Result<()> {
            meter.checkpoint().map_err(|stop| {
                SimError::budget_exceeded_with(
                    stop,
                    format!("rescue rung {rung}"),
                    Forensics {
                        rescue_trace: trace.clone(),
                        ..Forensics::default()
                    },
                )
            })
        };
        let r = &self.opts.rescue;
        let zeros = vec![0.0; mats.mna.dim()];
        let mut trace = RescueTrace::new();

        // Rung 1 — damped retry: same cold start, heavier initial damping.
        rung_gate(RescueRung::DampedRetry, &trace)?;
        stats.rescue_rungs += 1;
        match self.solve_point_inner(
            mats,
            ws,
            buf,
            None,
            &zeros,
            None,
            r.damping,
            None,
            stats,
            &mut meter.fork(),
        ) {
            Ok(x) => {
                trace.record(
                    RescueRung::DampedRetry,
                    true,
                    format!("lambda0 = {}", r.damping),
                );
                stats.rescues += 1;
                return Ok(x);
            }
            Err(e @ SimError::BudgetExceeded { .. }) => return Err(e),
            Err(e) => trace.record(RescueRung::DampedRetry, false, e.to_string()),
        }

        // Rung 2 — gmin stepping: a shunt to ground on every node keeps the
        // fixed-point map contractive; relax it a decade at a time, then
        // confirm without it.
        rung_gate(RescueRung::GminStep, &trace)?;
        stats.rescue_rungs += 1;
        match self.gmin_continuation(mats, ws, buf, stats, meter) {
            Ok(x) => {
                trace.record(
                    RescueRung::GminStep,
                    true,
                    format!("{} steps from {:.1e} S", r.gmin_steps, r.gmin_start),
                );
                stats.rescues += 1;
                return Ok(x);
            }
            Err(e @ SimError::BudgetExceeded { .. }) => return Err(e),
            Err(e) => trace.record(RescueRung::GminStep, false, e.to_string()),
        }

        // Rung 3 — source stepping: approach the bias from zero the way a
        // power-up transient would, so bistable circuits land on the
        // continuation branch.
        rung_gate(RescueRung::SourceStep, &trace)?;
        stats.rescue_rungs += 1;
        match self.source_continuation(mats, ws, buf, stats, meter) {
            Ok(x) => {
                trace.record(
                    RescueRung::SourceStep,
                    true,
                    format!("{}-step ramp", r.source_steps.max(1)),
                );
                stats.rescues += 1;
                return Ok(x);
            }
            Err(e @ SimError::BudgetExceeded { .. }) => return Err(e),
            Err(e) => trace.record(RescueRung::SourceStep, false, e.to_string()),
        }

        // Rung 4 — pseudo-transient continuation: anchor each solve to the
        // previous pseudo-state through a decaying diagonal conductance
        // (a backward-Euler march with a growing implicit time step).
        rung_gate(RescueRung::PseudoTransient, &trace)?;
        stats.rescue_rungs += 1;
        match self.ptran_continuation(mats, ws, buf, stats, meter) {
            Ok(x) => {
                trace.record(
                    RescueRung::PseudoTransient,
                    true,
                    format!("{} pseudo-steps", r.ptran_steps.max(1)),
                );
                stats.rescues += 1;
                return Ok(x);
            }
            Err(e @ SimError::BudgetExceeded { .. }) => return Err(e),
            Err(e) => trace.record(RescueRung::PseudoTransient, false, e.to_string()),
        }

        match original {
            SimError::NonConvergence {
                at,
                context,
                forensics,
            } => {
                let mut fx = forensics.map_or_else(Forensics::default, |b| *b);
                fx.rescue_trace = trace;
                Err(SimError::non_convergence_with(at, context, fx))
            }
            // Keep the error type (e.g. a structurally singular matrix
            // stays `SimError::Numeric`) so callers can still match on it.
            other => Err(other),
        }
    }

    /// Gmin-stepping rung: solve with a node-diagonal shunt relaxed one
    /// decade per step, then confirm the solution with the shunt removed.
    fn gmin_continuation(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        buf: &mut DcBuffers,
        stats: &mut EngineStats,
        meter: &BudgetMeter,
    ) -> Result<Vec<f64>> {
        let r = &self.opts.rescue;
        let zeros = vec![0.0; mats.mna.dim()];
        let mut x = zeros.clone();
        let mut g = r.gmin_start;
        for _ in 0..r.gmin_steps.max(1) {
            x = self.solve_point_inner(
                mats,
                ws,
                buf,
                None,
                &x,
                None,
                r.damping,
                Some((g, &zeros)),
                stats,
                &mut meter.fork(),
            )?;
            g *= 0.1;
        }
        self.solve_point_inner(
            mats,
            ws,
            buf,
            None,
            &x,
            None,
            r.damping,
            None,
            stats,
            &mut meter.fork(),
        )
    }

    /// Source-stepping rung: ramp every independent source from zero to its
    /// full value, re-converging at each scale from the previous solution.
    fn source_continuation(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        buf: &mut DcBuffers,
        stats: &mut EngineStats,
        meter: &BudgetMeter,
    ) -> Result<Vec<f64>> {
        let steps = self.opts.rescue.source_steps.max(1);
        let mut x = vec![0.0; mats.mna.dim()];
        for s in 1..=steps {
            let scale = s as f64 / steps as f64;
            x = self.solve_point_ws(
                mats,
                ws,
                buf,
                None,
                &x,
                Some(scale),
                stats,
                &mut meter.fork(),
            )?;
        }
        Ok(x)
    }

    /// Pseudo-transient rung: each pseudo-step solves the circuit with a
    /// conductance `g` from every node to its previous pseudo-state (the
    /// companion model of a grounded capacitor under backward Euler, so
    /// `g = C/h`); `g` decays geometrically toward zero, equivalent to an
    /// exponentially growing time step. A final unshunted solve confirms
    /// the stationary point.
    fn ptran_continuation(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        buf: &mut DcBuffers,
        stats: &mut EngineStats,
        meter: &BudgetMeter,
    ) -> Result<Vec<f64>> {
        let r = &self.opts.rescue;
        let steps = r.ptran_steps.max(1);
        let mut x = vec![0.0; mats.mna.dim()];
        let mut g = 1.0_f64;
        let decay = (1e-12_f64).powf(1.0 / steps as f64);
        for _ in 0..steps {
            let anchor = x.clone();
            x = self.solve_point_inner(
                mats,
                ws,
                buf,
                None,
                &anchor,
                None,
                r.damping,
                Some((g, &anchor)),
                stats,
                &mut meter.fork(),
            )?;
            g *= decay;
        }
        self.solve_point_inner(
            mats,
            ws,
            buf,
            None,
            &x,
            None,
            r.damping,
            None,
            stats,
            &mut meter.fork(),
        )
    }

    /// One non-iterative SWEC step: stamp `Geq` at the previous solution
    /// `x0` and solve once — the paper's DC procedure ("a range of voltages
    /// were applied ... SWEC is a non iterative method").
    #[allow(dead_code)] // convenience wrapper kept for tests
    pub(crate) fn solve_noniterative(
        &self,
        mats: &CircuitMatrices,
        override_src: Option<(&str, f64)>,
        x0: &[f64],
        stats: &mut EngineStats,
    ) -> Result<Vec<f64>> {
        let mut ws = AssemblyWorkspace::new(mats, false, false, OrderingChoice::default());
        let mut buf = DcBuffers::default();
        let mut meter = self.meter.fork();
        self.solve_noniterative_ws(mats, &mut ws, &mut buf, override_src, x0, stats, &mut meter)
    }

    /// [`SwecDcSweep::solve_noniterative`] against caller-owned workspace
    /// and buffers (the sweep's per-point hot path; also the
    /// [`crate::sim`] sharded-sweep building block).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_noniterative_ws(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        buf: &mut DcBuffers,
        override_src: Option<(&str, f64)>,
        x0: &[f64],
        stats: &mut EngineStats,
        meter: &mut BudgetMeter,
    ) -> Result<Vec<f64>> {
        let mna = &mats.mna;
        let dim = mna.dim();
        meter
            .tick_iteration()
            .map_err(|stop| SimError::budget_exceeded(stop, "swec non-iterative solve"))?;
        let mut flops = FlopCounter::new();
        self.stamp_geq(mats, ws, x0, stats, &mut flops);
        buf.rhs.resize(dim, 0.0);
        mna.stamp_rhs(0.0, &mut buf.rhs);
        if let Some((name, value)) = override_src {
            override_source_rhs(mna, name, value, 0.0, &mut buf.rhs);
        }
        ws.factor_solve(&buf.rhs, &mut buf.x_new, &mut flops)?;
        stats.linear_solves += 1;
        stats.iterations += 1;
        stats.flops += flops;
        Ok(buf.x_new.clone())
    }

    /// Batched non-iterative SWEC solves: one `Geq(x0)` assembly and one
    /// factorization serve *every* source value in `values`, the linear
    /// systems differing only in their right-hand sides. Used by the
    /// sharded sweep to compute all chunks' first warm-start ramp points
    /// with a single multi-RHS solve instead of one refactor per chunk —
    /// each returned solution is bit-identical to the corresponding
    /// [`SwecDcSweep::solve_noniterative_ws`] call from the same state.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_noniterative_batch_ws(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        buf: &mut DcBuffers,
        source: &str,
        values: &[f64],
        x0: &[f64],
        stats: &mut EngineStats,
        meter: &BudgetMeter,
    ) -> Result<Vec<Vec<f64>>> {
        let mna = &mats.mna;
        let dim = mna.dim();
        let k = values.len();
        if k == 0 {
            return Ok(Vec::new());
        }
        meter
            .checkpoint()
            .map_err(|stop| SimError::budget_exceeded(stop, "swec batched ramp solve"))?;
        let mut flops = FlopCounter::new();
        self.stamp_geq(mats, ws, x0, stats, &mut flops);
        buf.rhs.resize(dim, 0.0);
        let mut rhs_block = vec![0.0; dim * k];
        for (j, &value) in values.iter().enumerate() {
            mna.stamp_rhs(0.0, &mut buf.rhs);
            override_source_rhs(mna, source, value, 0.0, &mut buf.rhs);
            rhs_block[j * dim..(j + 1) * dim].copy_from_slice(&buf.rhs);
        }
        let mut x_block = Vec::new();
        ws.factor_solve_many(&rhs_block, k, &mut x_block, &mut flops)?;
        stats.linear_solves += k as u64;
        stats.iterations += k as u64;
        stats.flops += flops;
        Ok((0..k)
            .map(|j| x_block[j * dim..(j + 1) * dim].to_vec())
            .collect())
    }

    /// Stamps the linear G plus every device's `Geq(x0)` into the workspace.
    fn stamp_geq(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        x0: &[f64],
        stats: &mut EngineStats,
        flops: &mut FlopCounter,
    ) {
        let mna = &mats.mna;
        ws.begin();
        for (i, b) in mna.nonlinear_bindings().iter().enumerate() {
            let v = branch_voltage(x0, b.var_plus, b.var_minus);
            let geq = b.device.equivalent_conductance(v, flops) + self.opts.gmin;
            stats.device_evals += 1;
            ws.stamp_nonlinear(i, geq);
        }
        for (k, m) in mna.mosfet_bindings().iter().enumerate() {
            let vd = m.var_drain.map_or(0.0, |i| x0[i]);
            let vg = m.var_gate.map_or(0.0, |i| x0[i]);
            let vs = m.var_source.map_or(0.0, |i| x0[i]);
            let geq = m.model.geq(vg - vs, vd - vs, flops) + self.opts.gmin;
            stats.device_evals += 1;
            ws.stamp_mosfet_cond(k, geq);
        }
    }

    /// Damped Geq fixed point at one bias point. `override_src` optionally
    /// replaces a named source's value; `x0` seeds the iteration
    /// (continuation).
    #[allow(dead_code)] // convenience wrapper kept for tests
    pub(crate) fn solve_point(
        &self,
        mats: &CircuitMatrices,
        override_src: Option<(&str, f64)>,
        x0: &[f64],
        stats: &mut EngineStats,
    ) -> Result<Vec<f64>> {
        let mut ws = AssemblyWorkspace::new(mats, false, false, OrderingChoice::default());
        let mut buf = DcBuffers::default();
        let mut meter = self.meter.fork();
        self.solve_point_ws(
            mats,
            &mut ws,
            &mut buf,
            override_src,
            x0,
            None,
            stats,
            &mut meter,
        )
    }

    /// [`SwecDcSweep::solve_point`] against caller-owned workspace/buffers,
    /// with all sources optionally scaled by `source_scale` (continuation
    /// ramp). The iteration assembles by scatter-update into the prebuilt
    /// pattern and refactors the cached LU — no allocation per iteration.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_point_ws(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        buf: &mut DcBuffers,
        override_src: Option<(&str, f64)>,
        x0: &[f64],
        source_scale: Option<f64>,
        stats: &mut EngineStats,
        meter: &mut BudgetMeter,
    ) -> Result<Vec<f64>> {
        self.solve_point_inner(
            mats,
            ws,
            buf,
            override_src,
            x0,
            source_scale,
            1.0,
            None,
            stats,
            meter,
        )
    }

    /// The fixed-point kernel behind [`SwecDcSweep::solve_point_ws`], with
    /// two extra knobs used only by the rescue ladder: `lambda0` is the
    /// initial relaxation factor (healthy callers pass `1.0`), and `shunt`
    /// adds a conductance `g` from every node to the `anchor` state —
    /// `(g, zeros)` is gmin stepping, `(g, previous x)` a pseudo-transient
    /// backward-Euler step. With `lambda0 = 1.0` and no shunt this is
    /// bit-identical to the historical implementation.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_point_inner(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        buf: &mut DcBuffers,
        override_src: Option<(&str, f64)>,
        x0: &[f64],
        source_scale: Option<f64>,
        lambda0: f64,
        shunt: Option<(f64, &[f64])>,
        stats: &mut EngineStats,
        meter: &mut BudgetMeter,
    ) -> Result<Vec<f64>> {
        let mna = &mats.mna;
        let dim = mna.dim();
        let mut x = x0.to_vec();
        let mut flops = FlopCounter::new();
        let mut lambda: f64 = lambda0;
        let mut prev_delta = f64::INFINITY;
        // Best (smallest-residual) iterate seen: at a bistability fold the
        // damped map can cycle between branches without ever meeting the
        // tight tolerance; a near-converged iterate is still useful.
        let mut best_delta = f64::INFINITY;
        let mut have_best = false;
        let is_linear = mna.nonlinear_bindings().is_empty() && mna.mosfet_bindings().is_empty();
        buf.history.clear();
        for iter in 0..self.opts.dc_max_iterations {
            if let Err(stop) = meter.tick_iteration() {
                stats.flops += flops;
                return Err(SimError::budget_exceeded(
                    stop,
                    format!("swec fixed-point iteration {iter}"),
                ));
            }
            // Stamp G with Geq at the current iterate.
            self.stamp_geq(mats, ws, &x, stats, &mut flops);
            if let Some((g, _)) = shunt {
                ws.stamp_diag_shunt(mna.num_nodes(), g);
            }
            buf.rhs.resize(dim, 0.0);
            mna.stamp_rhs(0.0, &mut buf.rhs);
            if let Some((name, value)) = override_src {
                override_source_rhs(mna, name, value, 0.0, &mut buf.rhs);
            }
            if let Some(scale) = source_scale {
                for r in buf.rhs.iter_mut() {
                    *r *= scale;
                }
                flops.mul(dim as u64);
            }
            if let Some((g, anchor)) = shunt {
                let n = mna.num_nodes().min(anchor.len());
                for (r, a) in buf.rhs.iter_mut().zip(anchor.iter()).take(n) {
                    *r += g * a;
                }
                flops.fma(n as u64);
            }
            ws.factor_solve(&buf.rhs, &mut buf.x_new, &mut flops)?;
            stats.linear_solves += 1;
            stats.iterations += 1;

            // Convergence on node voltages (branch currents scale badly).
            let delta = x
                .iter()
                .zip(buf.x_new.iter())
                .take(mna.num_nodes())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            buf.history.push(delta);
            if delta < self.opts.dc_tolerance || (is_linear && iter >= 1) {
                stats.flops += flops;
                return Ok(buf.x_new.clone());
            }
            if !have_best || delta < best_delta {
                best_delta = delta;
                buf.best_x.clear();
                buf.best_x.extend_from_slice(&buf.x_new);
                have_best = true;
            }
            if is_linear {
                // One more pass confirms the (already exact) solution.
                x.copy_from_slice(&buf.x_new);
                continue;
            }
            // Adaptive damping: if the map stopped contracting, damp harder.
            if delta > 0.9 * prev_delta {
                lambda = (lambda * 0.5).max(0.05);
            }
            prev_delta = delta;
            for i in 0..dim {
                x[i] += lambda * (buf.x_new[i] - x[i]);
            }
        }
        stats.flops += flops;
        // Accept a near-converged iterate (loose but bounded) before giving
        // up entirely — the cycling amplitude at a fold point is tiny
        // compared to the voltage scale.
        if have_best && best_delta < 1e-4 {
            return Ok(buf.best_x.clone());
        }
        // Post-mortem: the nodes still moving the most, and the full
        // per-iteration update history (the oscillation signature).
        let names = mna_var_names(mna);
        let mut worst: Vec<(String, f64)> = names
            .into_iter()
            .take(mna.num_nodes())
            .enumerate()
            .map(|(j, name)| {
                let solved = buf.x_new.get(j).copied().unwrap_or(0.0);
                (name, (solved - x[j]).abs())
            })
            .collect();
        worst.sort_by(|a, b| b.1.total_cmp(&a.1));
        worst.truncate(3);
        let fx = Forensics {
            worst_nodes: worst,
            residual_history: buf.history.clone(),
            ..Forensics::default()
        };
        Err(SimError::non_convergence_with(
            override_src.map(|(_, v)| v).unwrap_or(0.0),
            format!(
                "SWEC fixed point: {} iterations without reaching {:.1e} V",
                self.opts.dc_max_iterations, self.opts.dc_tolerance
            ),
            fx,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_devices::nanowire::Nanowire;
    use nanosim_devices::rtd::Rtd;
    use nanosim_devices::sources::SourceWaveform;
    use nanosim_devices::traits::NonlinearTwoTerminal;
    use nanosim_numeric::approx_eq;

    fn engine() -> SwecDcSweep {
        SwecDcSweep::new(SwecOptions::default())
    }

    fn resistive_divider() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(2.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_resistor("R2", b, Circuit::GROUND, 3e3).unwrap();
        ckt
    }

    fn rtd_divider(r: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("mid");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(0.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, r).unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        ckt
    }

    #[test]
    fn linear_divider_exact() {
        let x = engine().solve_op(&resistive_divider()).unwrap();
        // v(a) = 2, v(b) = 1.5, branch current = -0.5 mA.
        assert!(approx_eq(x[0], 2.0, 1e-12));
        assert!(approx_eq(x[1], 1.5, 1e-12));
        assert!(approx_eq(x[2], -0.5e-3, 1e-12));
    }

    #[test]
    fn sweep_shapes_and_names() {
        let r = engine()
            .run(&resistive_divider(), "V1", 0.0, 1.0, 0.25)
            .unwrap();
        assert_eq!(r.points(), 5);
        assert_eq!(r.sweep_values(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert!(r.names().contains(&"b".to_string()));
        assert!(r.names().contains(&"I(V1)".to_string()));
        // Divider ratio holds across the sweep.
        let vb = r.column("b").unwrap();
        assert!(approx_eq(vb[4], 0.75, 1e-12));
    }

    #[test]
    fn rtd_operating_point_consistent() {
        // The solution must satisfy KCL: (Vs - v)/R = I_rtd(v).
        let ckt = rtd_divider(50.0);
        let engine = engine();
        let mats = CircuitMatrices::new(&ckt).unwrap();
        let mut stats = EngineStats::new();
        let x = engine
            .solve_point(&mats, Some(("V1", 1.0)), &vec![0.0; 3], &mut stats)
            .unwrap();
        let v = x[1];
        let mut f = FlopCounter::new();
        let i_rtd = Rtd::date2005().current(v, &mut f);
        let i_res = (1.0 - v) / 50.0;
        assert!(
            (i_rtd - i_res).abs() < 1e-6,
            "KCL violated: rtd {i_rtd} vs resistor {i_res}"
        );
    }

    #[test]
    fn rtd_sweep_covers_ndr_region() {
        // Figure 7(a): sweeping through the peak must not fail, and the
        // captured I-V must show the peak then the NDR droop.
        let r = engine()
            .run(&rtd_divider(50.0), "V1", 0.0, 5.0, 0.05)
            .unwrap();
        let iv = r.curve("I(X1)").unwrap();
        let (v_peak, i_peak) = iv.peak().unwrap();
        assert!(v_peak > 2.0 && v_peak < 4.5, "peak at {v_peak}");
        // Current past the peak drops below the peak value (NDR captured).
        let late = iv.value_at(5.0);
        assert!(late < i_peak, "late {late} vs peak {i_peak}");
    }

    #[test]
    fn nanowire_sweep_staircase() {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("mid");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(0.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 100.0).unwrap();
        ckt.add_nanowire("W1", b, Circuit::GROUND, Nanowire::metallic_cnt())
            .unwrap();
        let r = engine().run(&ckt, "V1", -2.5, 2.5, 0.05).unwrap();
        let iv = r.curve("I(W1)").unwrap();
        // Odd symmetry and monotone current.
        assert!(iv.value_at(0.0).abs() < 1e-6);
        assert!(iv.value_at(2.5) > 0.0);
        assert!(iv.value_at(-2.5) < 0.0);
        let vals = iv.values();
        for w in vals.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "nanowire current must be monotone");
        }
    }

    #[test]
    fn stats_are_populated() {
        let r = engine()
            .run(&rtd_divider(50.0), "V1", 0.0, 1.0, 0.1)
            .unwrap();
        assert_eq!(r.stats.steps, 11);
        assert!(r.stats.iterations >= 11);
        assert!(r.stats.linear_solves >= 11);
        assert!(r.stats.device_evals > 0);
        assert!(r.stats.flops.total() > 0);
    }

    #[test]
    fn invalid_sweeps_rejected() {
        let ckt = resistive_divider();
        let e = engine();
        assert!(e.run(&ckt, "V1", 0.0, 1.0, 0.0).is_err());
        assert!(e.run(&ckt, "V1", 0.0, 1.0, -0.1).is_err());
        assert!(e.run(&ckt, "Vmissing", 0.0, 1.0, 0.1).is_err());
    }

    #[test]
    fn noniterative_tracks_fixed_point_closely() {
        // Paper Figure 7: the non-iterative sweep "captures the negative
        // resistance region very closely" — compare against the fully
        // converged fixed-point sweep.
        let ckt = rtd_divider(50.0);
        let ni = SwecDcSweep::new(SwecOptions {
            dc_mode: crate::swec::DcMode::NonIterative,
            ..SwecOptions::default()
        })
        .run(&ckt, "V1", 0.0, 5.0, 0.02)
        .unwrap();
        let fp = SwecDcSweep::new(SwecOptions {
            dc_mode: crate::swec::DcMode::FixedPoint,
            ..SwecOptions::default()
        })
        .run(&ckt, "V1", 0.0, 5.0, 0.02)
        .unwrap();
        let a = ni.curve("I(X1)").unwrap();
        let b = fp.curve("I(X1)").unwrap();
        let rms = a.rms_difference(&b);
        let peak = b.peak().unwrap().1;
        assert!(rms < 0.05 * peak, "rms {rms} vs peak {peak}");
        // And it is much cheaper: about one solve per point.
        assert!(ni.stats.linear_solves < fp.stats.linear_solves);
        assert!(ni.stats.linear_solves <= (ni.points() as u64) + 40);
    }

    #[test]
    fn descending_sweep_works() {
        let r = engine()
            .run(&resistive_divider(), "V1", 1.0, 0.0, -0.5)
            .unwrap();
        assert_eq!(r.sweep_values(), &[1.0, 0.5, 0.0]);
    }
}
