//! High-level analysis runner: execute every directive of a parsed netlist
//! deck through one [`Simulator`] session and collect the results.
//!
//! This is the "just run my deck" entry point a downstream user reaches for
//! first. Every directive is lowered to a typed [`crate::sim::Analysis`]
//! and comes back as a uniform [`Dataset`] — no per-kind result enum to
//! match on, and asking a result for the wrong kind of data is a structured
//! [`crate::SimError::AnalysisMismatch`], not a panic:
//!
//! ```
//! use nanosim_circuit::parse_netlist;
//! use nanosim_core::analysis::run_deck;
//! use nanosim_core::sim::AnalysisKind;
//!
//! # fn main() -> Result<(), nanosim_core::SimError> {
//! let deck = parse_netlist(
//!     "* rc lowpass\n\
//!      V1 in 0 PWL(0 0 1p 1 1 1)\n\
//!      R1 in out 1k\n\
//!      C1 out 0 1p\n\
//!      .op\n\
//!      .tran 0.05n 5n\n\
//!      .end",
//! )?;
//! let results = run_deck(&deck)?;
//! assert_eq!(results.len(), 2);
//! let tran = results[1].require(AnalysisKind::Tran)?;
//! let out = tran.curve("out").expect("node exists");
//! assert!((out.final_value() - 1.0).abs() < 0.02);
//! // The wrong kind is an error, not a panic:
//! assert!(results[1].require(AnalysisKind::Dc).is_err());
//! # Ok(())
//! # }
//! ```

use crate::sim::{Analysis, Dataset, Simulator};
use crate::swec::SwecOptions;
use crate::Result;
use nanosim_circuit::ParsedDeck;

/// Runs every directive in `deck` with default SWEC options.
///
/// # Errors
/// Propagates the first engine failure.
pub fn run_deck(deck: &ParsedDeck) -> Result<Vec<Dataset>> {
    run_deck_with(deck, &SwecOptions::default())
}

/// Runs every directive in `deck` with explicit SWEC options.
///
/// All directives share one [`Simulator`] session, so the MNA assembly and
/// the cached sparse-LU analysis are reused across them.
///
/// # Errors
/// Propagates the first engine failure.
pub fn run_deck_with(deck: &ParsedDeck, opts: &SwecOptions) -> Result<Vec<Dataset>> {
    let mut sim = Simulator::new(deck.circuit.clone())?;
    deck.analyses
        .iter()
        .map(|directive| sim.run(Analysis::from_directive(directive, opts)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::AnalysisKind;
    use crate::SimError;
    use nanosim_circuit::parse_netlist;

    const DECK: &str = "* analysis runner test\n\
        V1 in 0 DC 2\n\
        R1 in out 1k\n\
        R2 out 0 1k\n\
        C1 out 0 1p\n\
        .op\n\
        .dc V1 0 2 0.5\n\
        .tran 0.05n 5n\n\
        .end";

    #[test]
    fn runs_all_three_directive_kinds() {
        let deck = parse_netlist(DECK).unwrap();
        let results = run_deck(&deck).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].kind(), AnalysisKind::Op);
        assert_eq!(results[1].kind(), AnalysisKind::Dc);
        assert_eq!(results[2].kind(), AnalysisKind::Tran);
    }

    #[test]
    fn operating_point_values_via_dataset_accessors() {
        let deck = parse_netlist(DECK).unwrap();
        let results = run_deck(&deck).unwrap();
        let op = results[0].require(AnalysisKind::Op).unwrap();
        assert!((op.value("out").unwrap() - 1.0).abs() < 1e-9, "midpoint");
        assert_eq!(op.names().len(), 3, "two nodes + source branch current");
    }

    #[test]
    fn dc_sweep_respects_directive_parameters() {
        let deck = parse_netlist(DECK).unwrap();
        let results = run_deck(&deck).unwrap();
        let sweep = results[1].require(AnalysisKind::Dc).unwrap();
        assert_eq!(sweep.points(), 5);
        assert!((sweep.at("out", 2.0).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kind_mismatch_is_a_structured_error_not_a_panic() {
        let deck = parse_netlist(DECK).unwrap();
        let results = run_deck(&deck).unwrap();
        let err = results[0].require(AnalysisKind::Tran).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::AnalysisMismatch {
                    expected: "tran",
                    got: "op"
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn custom_options_are_used() {
        let deck = parse_netlist(DECK).unwrap();
        let strict = SwecOptions {
            epsilon: 0.001,
            ..SwecOptions::default()
        };
        let loose = SwecOptions {
            epsilon: 0.2,
            ..SwecOptions::default()
        };
        let a = run_deck_with(&deck, &strict).unwrap();
        let b = run_deck_with(&deck, &loose).unwrap();
        assert!(
            a[2].stats.steps >= b[2].stats.steps,
            "tighter epsilon cannot take fewer steps ({} vs {})",
            a[2].stats.steps,
            b[2].stats.steps
        );
    }

    #[test]
    fn empty_deck_yields_empty_results() {
        let deck = parse_netlist("* nothing\nR1 a 0 1\n").unwrap();
        let results = run_deck(&deck).unwrap();
        assert!(results.is_empty());
    }
}
