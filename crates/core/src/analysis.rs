//! High-level analysis runner: execute every directive of a parsed netlist
//! deck with the SWEC engines and collect the results.
//!
//! This is the "just run my deck" entry point a downstream user reaches for
//! first:
//!
//! ```
//! use nanosim_circuit::parse_netlist;
//! use nanosim_core::analysis::{run_deck, AnalysisResult};
//!
//! # fn main() -> Result<(), nanosim_core::SimError> {
//! let deck = parse_netlist(
//!     "* rc lowpass\n\
//!      V1 in 0 PWL(0 0 1p 1 1 1)\n\
//!      R1 in out 1k\n\
//!      C1 out 0 1p\n\
//!      .op\n\
//!      .tran 0.05n 5n\n\
//!      .end",
//! )?;
//! let results = run_deck(&deck)?;
//! assert_eq!(results.len(), 2);
//! match &results[1] {
//!     AnalysisResult::Transient(tr) => {
//!         let out = tr.waveform("out").expect("node exists");
//!         assert!((out.final_value() - 1.0).abs() < 0.02);
//!     }
//!     other => panic!("expected transient, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

use crate::swec::{SwecDcSweep, SwecOptions, SwecTransient};
use crate::waveform::{DcSweepResult, TransientResult};
use crate::Result;
use nanosim_circuit::{AnalysisDirective, ParsedDeck};

/// The outcome of one analysis directive.
#[derive(Debug, Clone)]
pub enum AnalysisResult {
    /// `.op` — the MNA solution vector paired with its variable names.
    OperatingPoint {
        /// Variable names (node voltages, then branch currents).
        names: Vec<String>,
        /// Solved values.
        values: Vec<f64>,
    },
    /// `.dc` — the sweep result.
    DcSweep(DcSweepResult),
    /// `.tran` — the transient result.
    Transient(TransientResult),
}

impl AnalysisResult {
    /// Short tag for reports ("op", "dc", "tran").
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisResult::OperatingPoint { .. } => "op",
            AnalysisResult::DcSweep(_) => "dc",
            AnalysisResult::Transient(_) => "tran",
        }
    }
}

/// Runs every directive in `deck` with default SWEC options.
///
/// # Errors
/// Propagates the first engine failure.
pub fn run_deck(deck: &ParsedDeck) -> Result<Vec<AnalysisResult>> {
    run_deck_with(deck, &SwecOptions::default())
}

/// Runs every directive in `deck` with explicit SWEC options.
///
/// # Errors
/// Propagates the first engine failure.
pub fn run_deck_with(deck: &ParsedDeck, opts: &SwecOptions) -> Result<Vec<AnalysisResult>> {
    let mut out = Vec::with_capacity(deck.analyses.len());
    for directive in &deck.analyses {
        let result = match directive {
            AnalysisDirective::Op => {
                let engine = SwecDcSweep::new(opts.clone());
                let values = engine.solve_op(&deck.circuit)?;
                let names = op_names(&deck.circuit)?;
                AnalysisResult::OperatingPoint { names, values }
            }
            AnalysisDirective::Dc {
                source,
                start,
                stop,
                step,
            } => {
                let engine = SwecDcSweep::new(opts.clone());
                AnalysisResult::DcSweep(engine.run(&deck.circuit, source, *start, *stop, *step)?)
            }
            AnalysisDirective::Tran { tstep, tstop } => {
                let engine = SwecTransient::new(opts.clone());
                AnalysisResult::Transient(engine.run(&deck.circuit, *tstep, *tstop)?)
            }
        };
        out.push(result);
    }
    Ok(out)
}

fn op_names(circuit: &nanosim_circuit::Circuit) -> Result<Vec<String>> {
    let mna = nanosim_circuit::MnaSystem::new(circuit)?;
    Ok(crate::assemble::mna_var_names(&mna))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_circuit::parse_netlist;

    const DECK: &str = "* analysis runner test\n\
        V1 in 0 DC 2\n\
        R1 in out 1k\n\
        R2 out 0 1k\n\
        C1 out 0 1p\n\
        .op\n\
        .dc V1 0 2 0.5\n\
        .tran 0.05n 5n\n\
        .end";

    #[test]
    fn runs_all_three_directive_kinds() {
        let deck = parse_netlist(DECK).unwrap();
        let results = run_deck(&deck).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].kind(), "op");
        assert_eq!(results[1].kind(), "dc");
        assert_eq!(results[2].kind(), "tran");
    }

    #[test]
    fn operating_point_names_align_with_values() {
        let deck = parse_netlist(DECK).unwrap();
        let results = run_deck(&deck).unwrap();
        match &results[0] {
            AnalysisResult::OperatingPoint { names, values } => {
                assert_eq!(names.len(), values.len());
                let out_idx = names.iter().position(|n| n == "out").unwrap();
                assert!((values[out_idx] - 1.0).abs() < 1e-9, "divider midpoint");
            }
            other => panic!("expected op, got {other:?}"),
        }
    }

    #[test]
    fn dc_sweep_respects_directive_parameters() {
        let deck = parse_netlist(DECK).unwrap();
        let results = run_deck(&deck).unwrap();
        match &results[1] {
            AnalysisResult::DcSweep(sweep) => {
                assert_eq!(sweep.points(), 5);
                let out = sweep.curve("out").unwrap();
                assert!((out.value_at(2.0) - 1.0).abs() < 1e-9);
            }
            other => panic!("expected dc, got {other:?}"),
        }
    }

    #[test]
    fn custom_options_are_used() {
        let deck = parse_netlist(DECK).unwrap();
        let strict = SwecOptions {
            epsilon: 0.001,
            ..SwecOptions::default()
        };
        let loose = SwecOptions {
            epsilon: 0.2,
            ..SwecOptions::default()
        };
        let a = run_deck_with(&deck, &strict).unwrap();
        let b = run_deck_with(&deck, &loose).unwrap();
        let (AnalysisResult::Transient(ta), AnalysisResult::Transient(tb)) = (&a[2], &b[2]) else {
            panic!("expected transients");
        };
        assert!(
            ta.stats.steps >= tb.stats.steps,
            "tighter epsilon cannot take fewer steps ({} vs {})",
            ta.stats.steps,
            tb.stats.steps
        );
    }

    #[test]
    fn empty_deck_yields_empty_results() {
        let deck = parse_netlist("* nothing\nR1 a 0 1\n").unwrap();
        let results = run_deck(&deck).unwrap();
        assert!(results.is_empty());
    }
}
