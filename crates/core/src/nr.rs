//! Newton–Raphson baseline engine (the SPICE-like simulator of §3.1).
//!
//! Devices are linearized with their **differential** conductance
//! `gd = dI/dV` and a companion current source — the classic SPICE companion
//! model. On monotone devices this converges quadratically; on
//! non-monotonic nano-devices `gd` is negative inside the NDR region and
//! the iteration oscillates between two operating points or converges to a
//! wrong solution, exactly as the paper's Figure 2/Figure 8(c) show. The
//! engine therefore *reports* oscillation and false convergence instead of
//! hiding them, and implements the standard SPICE rescue strategies (Newton
//! damping, gmin stepping, source stepping) plus the per-device voltage
//! limiting that the MLA baseline builds on.
//!
//! Newton iterations share the same cached-LU policy as the SWEC
//! engines: each iteration refactors one analysis, degraded pivots are
//! absorbed by a solve-time refinement step when possible, and the
//! factor/refactor/solve flop split (plus any refinement steps) lands in
//! [`EngineStats`].

use crate::assemble::{
    branch_voltage, mna_var_names, override_source_rhs, require_sweepable_source,
    AssemblyWorkspace, CircuitMatrices,
};
use crate::error::Forensics;
use crate::report::EngineStats;
use crate::rescue::{RescueRung, RescueTrace};
use crate::waveform::{DcSweepResult, TransientResult};
use crate::{Result, SimError};
use nanosim_circuit::{Circuit, MnaSystem};
use nanosim_numeric::solve::LuStats;
use nanosim_numeric::sparse::OrderingChoice;
use nanosim_numeric::{BudgetMeter, FlopCounter, NumericError};
use std::time::Instant;

/// Iterate-history window for cycle detection: [`detect_vector_cycle`]
/// looks back at most `2 * 4` iterates, so nine suffice.
const HISTORY_WINDOW: usize = 9;

/// Outcome of one Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub enum NrOutcome {
    /// Converged within tolerances.
    Converged {
        /// Newton iterations used.
        iterations: usize,
    },
    /// The iterates entered a cycle (the Figure 2 NDR failure mode).
    Oscillating {
        /// Detected cycle period (2..4).
        period: usize,
    },
    /// Iteration budget exhausted without convergence.
    MaxIterations,
    /// The Jacobian became singular (negative conductance canceling a
    /// load).
    Singular,
}

impl NrOutcome {
    /// Whether the solve produced a trustworthy solution.
    pub fn is_converged(&self) -> bool {
        matches!(self, NrOutcome::Converged { .. })
    }
}

/// Result of [`NrEngine::solve_op_rescued`]: the operating point, the
/// ladder trace (empty when the plain solve converged directly), and the
/// work accounting.
#[derive(Debug, Clone)]
pub struct NrRescuedOp {
    /// The converged operating-point solution.
    pub x: Vec<f64>,
    /// Rungs attempted; empty means no rescue was needed.
    pub trace: RescueTrace,
    /// Iterations, solves, flops, and the `rescues` / `rescue_rungs`
    /// counters.
    pub stats: EngineStats,
}

/// What a transient step does when Newton fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FailurePolicy {
    /// Keep the last iterate and move on — reproduces SPICE3's wrong
    /// waveform in Figure 8(c).
    #[default]
    AcceptLast,
    /// Halve the time step and retry (the MLA "automatic time-step
    /// reduction"); abort on underflow.
    ReduceStep,
    /// Abort the analysis with [`SimError::NonConvergence`].
    Abort,
}

/// Newton–Raphson engine options.
#[derive(Debug, Clone, PartialEq)]
pub struct NrOptions {
    /// Maximum Newton iterations per solve.
    pub max_iterations: usize,
    /// Absolute node-voltage tolerance (V).
    pub v_abstol: f64,
    /// Relative node-voltage tolerance.
    pub v_reltol: f64,
    /// Step damping in `(0, 1]` (1 = full Newton, SPICE3 default).
    pub damping: f64,
    /// Per-iteration clamp on each nonlinear device's voltage change (V);
    /// `None` disables limiting. The MLA baseline sets this.
    pub device_v_limit: Option<f64>,
    /// Conductance added across nonlinear devices (SPICE gmin).
    pub gmin: f64,
    /// DC source-stepping substeps used when a point fails directly
    /// (1 = disabled).
    pub source_steps: usize,
    /// When `true`, every DC sweep point is solved from a zero initial
    /// guess through a full source-stepping ramp — how \[1\]'s current
    /// stepping obtains each bias independently. When `false`, points are
    /// warm-started from the previous solution (cheaper, SPICE `.dc`
    /// style).
    pub cold_start: bool,
    /// Transient failure policy.
    pub failure_policy: FailurePolicy,
    /// Minimum transient step for [`FailurePolicy::ReduceStep`].
    pub h_min: f64,
    /// Convergence-rescue ladder for [`NrEngine::solve_op_rescued`].
    /// **Disabled by default**: the NR engine's job is to *reproduce* the
    /// paper's Newton failures (Figure 2 / 8(c)), so nothing rescues a
    /// plain solve unless explicitly asked to.
    pub rescue: crate::rescue::RescueOptions,
}

impl Default for NrOptions {
    fn default() -> Self {
        NrOptions {
            max_iterations: 100,
            v_abstol: 1e-6,
            v_reltol: 1e-3,
            damping: 1.0,
            device_v_limit: None,
            gmin: 1e-12,
            source_steps: 1,
            cold_start: false,
            failure_policy: FailurePolicy::default(),
            h_min: 1e-18,
            rescue: crate::rescue::RescueOptions::disabled(),
        }
    }
}

impl NrOptions {
    /// SPICE3-like configuration: plain full-step Newton, no device
    /// limiting, no source stepping — the configuration that fails on NDR
    /// circuits (Figure 8(c)).
    pub fn spice3() -> Self {
        NrOptions::default()
    }
}

/// A DC sweep result annotated with the per-point Newton outcome.
#[derive(Debug, Clone)]
pub struct NrSweepResult {
    /// The numeric sweep data (whatever Newton produced, converged or not).
    pub sweep: DcSweepResult,
    /// Outcome at each sweep point.
    pub outcomes: Vec<NrOutcome>,
}

impl NrSweepResult {
    /// Number of points that failed to converge.
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.is_converged()).count()
    }
}

/// A transient result annotated with Newton failures.
#[derive(Debug, Clone)]
pub struct NrTransientResult {
    /// The waveform data.
    pub result: TransientResult,
    /// `(time, outcome)` for every step where Newton did not converge.
    pub failures: Vec<(f64, NrOutcome)>,
}

/// The Newton–Raphson engine.
#[derive(Debug, Clone, Default)]
pub struct NrEngine {
    opts: NrOptions,
    meter: BudgetMeter,
}

impl NrEngine {
    /// Creates the engine with the given options.
    pub fn new(opts: NrOptions) -> Self {
        NrEngine {
            opts,
            meter: BudgetMeter::unlimited(),
        }
    }

    /// Attaches a run budget / cancellation meter. Every analysis forks it,
    /// so the deadline clock is shared with the caller while iteration and
    /// step accounting stays local to each solve (see the determinism
    /// contract in `nanosim_numeric::budget`). Without this the engine runs
    /// on an inert unlimited meter.
    #[must_use]
    pub fn with_meter(mut self, meter: BudgetMeter) -> Self {
        self.meter = meter;
        self
    }

    /// The engine options.
    pub fn options(&self) -> &NrOptions {
        &self.opts
    }

    /// DC sweep of a named source; never errors on non-convergence — the
    /// outcome of every point is reported instead (so failures can be
    /// plotted, as the paper does for SPICE3).
    ///
    /// # Errors
    /// Fails only on invalid parameters or structurally singular circuits.
    pub fn run_dc_sweep(
        &self,
        circuit: &Circuit,
        source: &str,
        start: f64,
        stop: f64,
        step: f64,
    ) -> Result<NrSweepResult> {
        if step == 0.0 || !step.is_finite() || (stop - start) * step < 0.0 {
            return Err(SimError::InvalidConfig {
                context: format!("dc sweep {start}..{stop} with step {step}"),
            });
        }
        let t0 = Instant::now();
        let mats = CircuitMatrices::new(circuit)?;
        require_sweepable_source(&mats.mna, source)?;
        let mut stats = EngineStats::new();
        let mut ws = AssemblyWorkspace::new(&mats, true, true, OrderingChoice::default());
        let n_points = (((stop - start) / step).round() as i64 + 1).max(1) as usize;

        let var_names = mna_var_names(&mats.mna);
        let mut names = var_names.clone();
        for b in mats.mna.nonlinear_bindings() {
            names.push(format!("I({})", b.name));
        }
        for m in mats.mna.mosfet_bindings() {
            names.push(format!("I({})", m.name));
        }
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(n_points); names.len()];
        let mut sweep = Vec::with_capacity(n_points);
        let mut outcomes = Vec::with_capacity(n_points);

        // The result shape is known up front: charge it all before any work.
        let mut run_meter = self.meter.fork();
        run_meter
            .charge_bytes(8 * (n_points as u64) * (1 + names.len() as u64))
            .map_err(|stop| {
                SimError::budget_exceeded(stop, format!("dc sweep of {n_points} points"))
            })?;

        let mut x = vec![0.0; mats.mna.dim()];
        for k in 0..n_points {
            run_meter
                .checkpoint()
                .map_err(|stop| SimError::budget_exceeded(stop, format!("dc sweep point {k}")))?;
            // Iteration accounting restarts at every sweep point: the cap is
            // per operating-point solve, a pure function of the point index.
            let mut pm = run_meter.fork();
            let value = start + step * k as f64;
            let (mut x_new, mut outcome) = if self.opts.cold_start {
                // Current/source stepping from zero at every point, as the
                // MLA description in [1] prescribes.
                let ramp = self.opts.source_steps.max(1);
                let mut xs = vec![0.0; mats.mna.dim()];
                let mut oc = NrOutcome::MaxIterations;
                for s in 1..=ramp {
                    let v = value * s as f64 / ramp as f64;
                    let (xi, oi) = self.solve_dc_ws(
                        &mats,
                        &mut ws,
                        Some((source, v)),
                        &xs,
                        None,
                        &mut stats,
                        &mut pm,
                    )?;
                    xs = xi;
                    oc = oi;
                    if !oc.is_converged() {
                        break;
                    }
                }
                (xs, oc)
            } else {
                self.solve_dc_ws(
                    &mats,
                    &mut ws,
                    Some((source, value)),
                    &x,
                    None,
                    &mut stats,
                    &mut pm,
                )?
            };
            if !outcome.is_converged() && self.opts.source_steps > 1 {
                // Source stepping: approach this point gradually from the
                // previous one.
                let prev = sweep.last().copied().unwrap_or(0.0);
                let mut xs = x.clone();
                let mut last_outcome = outcome.clone();
                let mut ok = true;
                for s in 1..=self.opts.source_steps {
                    let frac = s as f64 / self.opts.source_steps as f64;
                    let v = prev + (value - prev) * frac;
                    let (xi, oi) = self.solve_dc_ws(
                        &mats,
                        &mut ws,
                        Some((source, v)),
                        &xs,
                        None,
                        &mut stats,
                        &mut pm,
                    )?;
                    xs = xi;
                    ok = oi.is_converged();
                    last_outcome = oi;
                    if !ok {
                        break;
                    }
                }
                if ok {
                    x_new = xs;
                    outcome = last_outcome;
                }
            }
            x = x_new;
            sweep.push(value);
            outcomes.push(outcome);
            for (i, &xi) in x.iter().enumerate() {
                columns[i].push(xi);
            }
            let mut col = var_names.len();
            let mut flops = FlopCounter::new();
            for b in mats.mna.nonlinear_bindings() {
                let v = branch_voltage(&x, b.var_plus, b.var_minus);
                columns[col].push(b.device.current(v, &mut flops));
                col += 1;
            }
            for m in mats.mna.mosfet_bindings() {
                let vd = m.var_drain.map_or(0.0, |i| x[i]);
                let vg = m.var_gate.map_or(0.0, |i| x[i]);
                let vs = m.var_source.map_or(0.0, |i| x[i]);
                columns[col].push(m.model.ids(vg - vs, vd - vs, &mut flops));
                col += 1;
            }
            stats.flops += flops;
            stats.steps += 1;
        }
        stats.absorb_lu(&LuStats::default(), &ws.lu_stats());
        stats.elapsed = t0.elapsed();
        Ok(NrSweepResult {
            sweep: DcSweepResult::new(sweep, names, columns, stats),
            outcomes,
        })
    }

    /// Transient analysis with fixed print step `tstep` and the configured
    /// failure policy.
    ///
    /// # Errors
    /// Fails on invalid parameters, singular structure, or (with
    /// [`FailurePolicy::Abort`] / step underflow) Newton failure.
    pub fn run_transient(
        &self,
        circuit: &Circuit,
        tstep: f64,
        tstop: f64,
    ) -> Result<NrTransientResult> {
        if !(tstep > 0.0 && tstop > 0.0 && tstep <= tstop) {
            return Err(SimError::InvalidConfig {
                context: format!("transient needs 0 < tstep <= tstop (got {tstep}, {tstop})"),
            });
        }
        let t0 = Instant::now();
        let mats = CircuitMatrices::new(circuit)?;
        let mna = &mats.mna;
        let dim = mna.dim();
        let mut stats = EngineStats::new();
        let mut ws = AssemblyWorkspace::new(&mats, true, true, OrderingChoice::default());

        let mut run_meter = self.meter.fork();

        // DC operating point at t = 0 (with source stepping as fallback).
        let mut op_meter = run_meter.fork();
        let (mut x, op_outcome) = self.solve_dc_ws(
            &mats,
            &mut ws,
            None,
            &vec![0.0; dim],
            None,
            &mut stats,
            &mut op_meter,
        )?;
        if !op_outcome.is_converged() {
            let mut xs = vec![0.0; dim];
            let steps = self.opts.source_steps.max(10);
            for s in 1..=steps {
                let scale = s as f64 / steps as f64;
                let mut sm = run_meter.fork();
                let (xi, _) =
                    self.solve_dc_ws(&mats, &mut ws, None, &xs, Some(scale), &mut stats, &mut sm)?;
                xs = xi;
            }
            x = xs;
        }

        let names = mna_var_names(mna);
        let mut times = vec![0.0];
        let mut columns: Vec<Vec<f64>> = (0..dim).map(|i| vec![x[i]]).collect();
        let mut failures = Vec::new();

        let mut t = 0.0;
        let t_end = tstop * (1.0 - 1e-12);
        while t < t_end {
            let mut h = tstep.min(tstop - t);
            loop {
                let mut sm = run_meter.fork();
                let (x_new, outcome) =
                    self.solve_transient_step(&mats, &mut ws, &x, t, h, &mut stats, &mut sm)?;
                if outcome.is_converged() {
                    x = x_new;
                    break;
                }
                match self.opts.failure_policy {
                    FailurePolicy::AcceptLast => {
                        failures.push((t + h, outcome));
                        x = x_new;
                        break;
                    }
                    FailurePolicy::ReduceStep => {
                        stats.rejected_steps += 1;
                        h *= 0.5;
                        if h < self.opts.h_min {
                            return Err(SimError::step_underflow(t, h));
                        }
                    }
                    FailurePolicy::Abort => {
                        return Err(SimError::non_convergence(
                            t + h,
                            format!("newton transient: {outcome:?}"),
                        ));
                    }
                }
            }
            t += h;
            stats.steps += 1;
            run_meter
                .tick_step()
                .and_then(|()| run_meter.charge_bytes(8 * (1 + dim as u64)))
                .map_err(|stop| {
                    SimError::budget_exceeded(stop, format!("newton transient at t = {t:.3e} s"))
                })?;
            times.push(t);
            for (i, c) in columns.iter_mut().enumerate() {
                c.push(x[i]);
            }
        }
        stats.absorb_lu(&LuStats::default(), &ws.lu_stats());
        stats.elapsed = t0.elapsed();
        Ok(NrTransientResult {
            result: TransientResult::new(times, names, columns, stats),
            failures,
        })
    }

    /// DC operating point solved through the convergence-rescue ladder.
    ///
    /// A plain Newton solve runs first; when it fails (oscillation,
    /// iteration exhaustion, or a singular Jacobian) and
    /// [`NrOptions::rescue`] is enabled, the engine escalates
    /// deterministically: damped retry → gmin stepping → source stepping →
    /// pseudo-transient continuation. Every rung attempt lands in the
    /// returned [`RescueTrace`] and the `rescues` / `rescue_rungs` stats
    /// counters. With rescue disabled (the default) this behaves exactly
    /// like a plain operating-point solve.
    ///
    /// # Errors
    /// Structural and parameter errors propagate unchanged. A failed plain
    /// solve with rescue disabled, or an exhausted ladder, returns
    /// [`SimError::NonConvergence`] with the trace attached as forensics.
    pub fn solve_op_rescued(&self, circuit: &Circuit) -> Result<NrRescuedOp> {
        let t0 = Instant::now();
        let mats = CircuitMatrices::new(circuit)?;
        let dim = mats.mna.dim();
        let mut ws = AssemblyWorkspace::new(&mats, true, true, OrderingChoice::default());
        let mut stats = EngineStats::new();
        let mut trace = RescueTrace::new();
        let zeros = vec![0.0; dim];

        let run_meter = self.meter.fork();
        let mut om = run_meter.fork();
        let (x0, outcome) =
            self.solve_dc_ws(&mats, &mut ws, None, &zeros, None, &mut stats, &mut om)?;
        let x = if outcome.is_converged() {
            x0
        } else if !self.opts.rescue.enabled {
            return Err(SimError::non_convergence(
                0.0,
                format!("newton operating point: {outcome:?} (rescue disabled)"),
            ));
        } else {
            self.rescue_op(
                &mats, &mut ws, &zeros, &outcome, &mut trace, &mut stats, &run_meter,
            )?
        };
        stats.absorb_lu(&LuStats::default(), &ws.lu_stats());
        stats.elapsed = t0.elapsed();
        Ok(NrRescuedOp { x, trace, stats })
    }

    /// Climbs the four-rung ladder for a failed Newton operating point.
    /// Called only from [`NrEngine::solve_op_rescued`] after a plain-solve
    /// failure with rescue enabled.
    fn rescue_op(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        zeros: &[f64],
        outcome: &NrOutcome,
        trace: &mut RescueTrace,
        stats: &mut EngineStats,
        meter: &BudgetMeter,
    ) -> Result<Vec<f64>> {
        // Budget checkpoint at the foot of every rung: a cancelled or
        // expired run stops *between* rungs, with the partial ladder trace
        // attached as forensics.
        let rung_gate = |rung: RescueRung, trace: &RescueTrace| -> Result<()> {
            meter.checkpoint().map_err(|stop| {
                SimError::budget_exceeded_with(
                    stop,
                    format!("rescue rung {rung}"),
                    Forensics {
                        rescue_trace: trace.clone(),
                        ..Forensics::default()
                    },
                )
            })
        };
        let r = &self.opts.rescue;
        let damped = NrEngine::new(NrOptions {
            damping: r.damping,
            ..self.opts.clone()
        })
        .with_meter(meter.fork());

        // Rung 1 — damped retry from a cold start.
        rung_gate(RescueRung::DampedRetry, trace)?;
        stats.rescue_rungs += 1;
        let (x1, o1) = damped.solve_dc_ws(mats, ws, None, zeros, None, stats, &mut meter.fork())?;
        if o1.is_converged() {
            trace.record(
                RescueRung::DampedRetry,
                true,
                format!("damping = {}", r.damping),
            );
            stats.rescues += 1;
            return Ok(x1);
        }
        trace.record(RescueRung::DampedRetry, false, format!("{o1:?}"));
        let mut last = o1;

        // Rung 2 — gmin stepping: a diagonal shunt to ground relaxed a
        // decade at a time, each solve warm-started from the previous one,
        // then an unshunted confirmation solve.
        rung_gate(RescueRung::GminStep, trace)?;
        stats.rescue_rungs += 1;
        let mut x = zeros.to_vec();
        let mut g = r.gmin_start;
        let mut ok = true;
        for _ in 0..r.gmin_steps.max(1) {
            let (xi, oi) =
                damped.solve_dc_shunted_ws(mats, ws, &x, (g, zeros), stats, &mut meter.fork())?;
            ok = oi.is_converged();
            last = oi;
            if !ok {
                break;
            }
            x = xi;
            g *= 0.1;
        }
        if ok {
            let (xf, of) =
                damped.solve_dc_ws(mats, ws, None, &x, None, stats, &mut meter.fork())?;
            if of.is_converged() {
                trace.record(
                    RescueRung::GminStep,
                    true,
                    format!(
                        "{} decades from {:.1e} S",
                        r.gmin_steps.max(1),
                        r.gmin_start
                    ),
                );
                stats.rescues += 1;
                return Ok(xf);
            }
            last = of;
        }
        trace.record(RescueRung::GminStep, false, format!("{last:?}"));

        // Rung 3 — source stepping: ramp every source 0 → 1, warm-started.
        rung_gate(RescueRung::SourceStep, trace)?;
        stats.rescue_rungs += 1;
        let steps = r.source_steps.max(1);
        let mut x = zeros.to_vec();
        let mut ok = true;
        for s in 1..=steps {
            let scale = s as f64 / steps as f64;
            let (xi, oi) =
                damped.solve_dc_ws(mats, ws, None, &x, Some(scale), stats, &mut meter.fork())?;
            ok = oi.is_converged();
            last = oi;
            if !ok {
                break;
            }
            x = xi;
        }
        if ok {
            trace.record(RescueRung::SourceStep, true, format!("{steps} substeps"));
            stats.rescues += 1;
            return Ok(x);
        }
        trace.record(RescueRung::SourceStep, false, format!("{last:?}"));

        // Rung 4 — pseudo-transient continuation: a backward-Euler
        // companion shunt decaying geometrically from 1 S to 1 pS,
        // anchored at the previous pseudo-state, then an unshunted
        // confirmation solve.
        rung_gate(RescueRung::PseudoTransient, trace)?;
        stats.rescue_rungs += 1;
        let steps = r.ptran_steps.max(1);
        let mut x = zeros.to_vec();
        let mut g = 1.0_f64;
        let decay = 1e-12_f64.powf(1.0 / steps as f64);
        let mut ok = true;
        for _ in 0..steps {
            let anchor = x.clone();
            let (xi, oi) = damped.solve_dc_shunted_ws(
                mats,
                ws,
                &anchor,
                (g, &anchor),
                stats,
                &mut meter.fork(),
            )?;
            ok = oi.is_converged();
            last = oi;
            if !ok {
                break;
            }
            x = xi;
            g *= decay;
        }
        if ok {
            let (xf, of) =
                damped.solve_dc_ws(mats, ws, None, &x, None, stats, &mut meter.fork())?;
            if of.is_converged() {
                trace.record(
                    RescueRung::PseudoTransient,
                    true,
                    format!("{steps} pseudo-steps"),
                );
                stats.rescues += 1;
                return Ok(xf);
            }
            last = of;
        }
        trace.record(RescueRung::PseudoTransient, false, format!("{last:?}"));

        let fx = Forensics {
            rescue_trace: std::mem::take(trace),
            ..Forensics::default()
        };
        Err(SimError::non_convergence_with(
            0.0,
            format!("newton operating point: {outcome:?}; rescue ladder exhausted"),
            fx,
        ))
    }

    /// One Newton DC solve with a freshly built workspace. `override_src`
    /// replaces a named source value; `source_scale` scales *all* sources
    /// (source stepping). Engines with a loop of solves use
    /// [`NrEngine::solve_dc_ws`] to share one workspace instead.
    #[allow(dead_code)] // convenience wrapper kept for tests / one-off OP solves
    pub(crate) fn solve_dc(
        &self,
        mats: &CircuitMatrices,
        override_src: Option<(&str, f64)>,
        x0: &[f64],
        source_scale: Option<f64>,
        stats: &mut EngineStats,
    ) -> Result<(Vec<f64>, NrOutcome)> {
        let mut ws = AssemblyWorkspace::new(mats, true, true, OrderingChoice::default());
        let mut meter = self.meter.fork();
        self.solve_dc_ws(
            mats,
            &mut ws,
            override_src,
            x0,
            source_scale,
            stats,
            &mut meter,
        )
    }

    /// [`NrEngine::solve_dc`] against a caller-owned [`AssemblyWorkspace`]
    /// (pattern, factorization and buffers reused across calls).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn solve_dc_ws(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        override_src: Option<(&str, f64)>,
        x0: &[f64],
        source_scale: Option<f64>,
        stats: &mut EngineStats,
        meter: &mut BudgetMeter,
    ) -> Result<(Vec<f64>, NrOutcome)> {
        self.newton_loop(mats, ws, x0, None, stats, meter, |mna, rhs, flops| {
            mna.stamp_rhs(0.0, rhs);
            if let Some((name, value)) = override_src {
                override_source_rhs(mna, name, value, 0.0, rhs);
            }
            if let Some(scale) = source_scale {
                for r in rhs.iter_mut() {
                    *r *= scale;
                }
                flops.mul(rhs.len() as u64);
            }
            None
        })
    }

    /// DC solve with a diagonal conductance shunt `g` from every node to
    /// ground, anchored at `anchor` (`rhs += g * anchor`). With a zero
    /// anchor this is classic gmin stepping; with the previous iterate as
    /// anchor it is one pseudo-transient (backward-Euler companion) step.
    /// Only the rescue ladder calls this.
    fn solve_dc_shunted_ws(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        x0: &[f64],
        shunt: (f64, &[f64]),
        stats: &mut EngineStats,
        meter: &mut BudgetMeter,
    ) -> Result<(Vec<f64>, NrOutcome)> {
        self.newton_loop(
            mats,
            ws,
            x0,
            Some(shunt),
            stats,
            meter,
            |mna, rhs, _flops| {
                mna.stamp_rhs(0.0, rhs);
                None
            },
        )
    }

    /// One backward-Euler transient step solved with Newton.
    #[allow(clippy::too_many_arguments)]
    fn solve_transient_step(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        x_prev: &[f64],
        t: f64,
        h: f64,
        stats: &mut EngineStats,
        meter: &mut BudgetMeter,
    ) -> Result<(Vec<f64>, NrOutcome)> {
        self.newton_loop(mats, ws, x_prev, None, stats, meter, |mna, rhs, flops| {
            mna.stamp_rhs(t + h, rhs);
            // rhs += (C/h) x_prev; the matrix side adds C/h stamps.
            mats.c_csr
                .matvec_acc(1.0 / h, x_prev, rhs, flops)
                .expect("shape checked at construction");
            Some(h)
        })
    }

    /// The shared Newton iteration. `prepare` fills the source right-hand
    /// side and returns `Some(h)` when `C/h` companion stamps are needed
    /// (transient) or `None` for DC.
    ///
    /// The loop assembles into `ws`'s prebuilt pattern (scatter-updates, no
    /// matrix clone), reuses the cached LU via refactorization, and cycles a
    /// fixed set of buffers — zero heap allocations per iteration once the
    /// history window is warm.
    ///
    /// Every iteration charges `meter` before assembling, so a budgeted or
    /// cancelled run stops at a deterministic iteration boundary with
    /// [`SimError::BudgetExceeded`].
    #[allow(clippy::too_many_arguments)]
    fn newton_loop<F>(
        &self,
        mats: &CircuitMatrices,
        ws: &mut AssemblyWorkspace,
        x0: &[f64],
        shunt: Option<(f64, &[f64])>,
        stats: &mut EngineStats,
        meter: &mut BudgetMeter,
        prepare: F,
    ) -> Result<(Vec<f64>, NrOutcome)>
    where
        F: Fn(&MnaSystem, &mut [f64], &mut FlopCounter) -> Option<f64>,
    {
        let mna = &mats.mna;
        let dim = mna.dim();
        let mut flops = FlopCounter::new();
        let mut x = x0.to_vec();
        let mut x_new: Vec<f64> = Vec::with_capacity(dim);
        let mut rhs = vec![0.0; dim];
        // Linearization voltages per nonlinear device (for limiting).
        let mut v_lin: Vec<f64> = mna
            .nonlinear_bindings()
            .iter()
            .map(|b| branch_voltage(&x, b.var_plus, b.var_minus))
            .collect();
        let mut v_next = vec![0.0; v_lin.len()];
        // Trailing iterate window for cycle detection; old buffers are
        // recycled once the window is full.
        let mut history: Vec<Vec<f64>> = vec![x.clone()];

        for iter in 0..self.opts.max_iterations {
            if let Err(stop) = meter.tick_iteration() {
                stats.flops += flops;
                return Err(SimError::budget_exceeded(
                    stop,
                    format!("newton iteration {iter}"),
                ));
            }
            ws.begin();
            let h = prepare(mna, &mut rhs, &mut flops);
            if let Some(h) = h {
                ws.add_c_over_h(h, &mut flops);
            }
            // Companion models at the linearization voltages.
            for (i, b) in mna.nonlinear_bindings().iter().enumerate() {
                let v = v_lin[i];
                let id = b.device.current(v, &mut flops);
                let gd = b.device.differential_conductance(v, &mut flops) + self.opts.gmin;
                stats.device_evals += 2;
                let ieq = id - gd * v;
                flops.fma(1);
                ws.stamp_nonlinear(i, gd);
                if let Some(p) = b.var_plus {
                    rhs[p] -= ieq;
                }
                if let Some(m) = b.var_minus {
                    rhs[m] += ieq;
                }
                flops.add(2);
            }
            for (k, m) in mna.mosfet_bindings().iter().enumerate() {
                let vd = m.var_drain.map_or(0.0, |i| x[i]);
                let vg = m.var_gate.map_or(0.0, |i| x[i]);
                let vs = m.var_source.map_or(0.0, |i| x[i]);
                let (vgs, vds) = (vg - vs, vd - vs);
                let id = m.model.ids(vgs, vds, &mut flops);
                let gds = m.model.gds(vgs, vds, &mut flops) + self.opts.gmin;
                let gm = m.model.gm(vgs, vds, &mut flops);
                stats.device_evals += 3;
                // i_d = ieq + gds*vds + gm*vgs with ieq from the expansion.
                let ieq = id - gds * vds - gm * vgs;
                flops.fma(2);
                ws.stamp_mosfet_cond(k, gds);
                // Transconductance stamps (drain current driven by vgs).
                ws.stamp_mosfet_gm(k, gm);
                if let Some(d) = m.var_drain {
                    rhs[d] -= ieq;
                }
                if let Some(s) = m.var_source {
                    rhs[s] += ieq;
                }
                flops.add(2);
            }

            if let Some((g, anchor)) = shunt {
                ws.stamp_diag_shunt(mna.num_nodes(), g);
                let n = mna.num_nodes().min(anchor.len());
                for (r, a) in rhs.iter_mut().zip(anchor.iter()).take(n) {
                    *r += g * a;
                }
                flops.fma(n as u64);
            }

            match ws.factor_solve(&rhs, &mut x_new, &mut flops) {
                Ok(()) => {}
                Err(NumericError::SingularMatrix { .. }) => {
                    stats.flops += flops;
                    return Ok((x, NrOutcome::Singular));
                }
                Err(e) => return Err(e.into()),
            }
            stats.linear_solves += 1;
            stats.iterations += 1;

            // Damped update (in place over the raw Newton solution).
            let lambda = self.opts.damping;
            for i in 0..dim {
                x_new[i] = x[i] + lambda * (x_new[i] - x[i]);
            }
            flops.fma(dim as u64);

            // Device voltage limiting (the MLA augmentation).
            for (i, b) in mna.nonlinear_bindings().iter().enumerate() {
                v_next[i] = branch_voltage(&x_new, b.var_plus, b.var_minus);
            }
            if let Some(limit) = self.opts.device_v_limit {
                for (i, v) in v_next.iter_mut().enumerate() {
                    let dv = *v - v_lin[i];
                    if dv.abs() > limit {
                        *v = v_lin[i] + limit * dv.signum();
                    }
                }
            }

            // Convergence: node voltages between successive iterates.
            let mut converged = true;
            for i in 0..mna.num_nodes() {
                let tol = self.opts.v_abstol + self.opts.v_reltol * x_new[i].abs();
                if (x_new[i] - x[i]).abs() > tol {
                    converged = false;
                    break;
                }
            }
            // Device linearization voltages must also have settled.
            if converged {
                for (i, &v) in v_next.iter().enumerate() {
                    let tol = self.opts.v_abstol + self.opts.v_reltol * v.abs();
                    if (v - v_lin[i]).abs() > tol {
                        converged = false;
                        break;
                    }
                }
            }
            std::mem::swap(&mut x, &mut x_new);
            std::mem::swap(&mut v_lin, &mut v_next);
            if history.len() == HISTORY_WINDOW {
                // Recycle the oldest buffer instead of allocating.
                let mut oldest = history.remove(0);
                oldest.copy_from_slice(&x);
                history.push(oldest);
            } else {
                history.push(x.clone());
            }
            if converged {
                stats.flops += flops;
                return Ok((
                    x,
                    NrOutcome::Converged {
                        iterations: iter + 1,
                    },
                ));
            }
            if let Some(period) = detect_vector_cycle(&history, self.opts.v_abstol) {
                stats.flops += flops;
                return Ok((x, NrOutcome::Oscillating { period }));
            }
        }
        stats.flops += flops;
        Ok((x, NrOutcome::MaxIterations))
    }
}

/// Detects a period-2..4 cycle at the tail of the iterate history (the
/// vector analogue of the scalar detection in `nanosim-numeric`).
fn detect_vector_cycle(history: &[Vec<f64>], abstol: f64) -> Option<usize> {
    let n = history.len();
    for period in 2..=4usize {
        if n < 2 * period + 1 {
            continue;
        }
        let same = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b.iter())
                .all(|(x, y)| (x - y).abs() <= abstol * 10.0 + 1e-3 * x.abs().max(y.abs()))
        };
        let mut is_cycle = true;
        for i in 0..period {
            if !same(&history[n - 1 - i], &history[n - 1 - i - period]) {
                is_cycle = false;
                break;
            }
        }
        if is_cycle {
            // Require genuine movement within the cycle.
            let a = &history[n - 1];
            let b = &history[n - 2];
            let moved = a
                .iter()
                .zip(b.iter())
                .any(|(x, y)| (x - y).abs() > abstol * 100.0 + 1e-2 * x.abs().max(y.abs()));
            if moved {
                return Some(period);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_devices::diode::Diode;
    use nanosim_devices::mosfet::Mosfet;
    use nanosim_devices::rtd::Rtd;
    use nanosim_devices::sources::SourceWaveform;
    use nanosim_devices::traits::NonlinearTwoTerminal;
    use nanosim_numeric::approx_eq;

    fn engine() -> NrEngine {
        NrEngine::new(NrOptions::default())
    }

    fn diode_divider() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("mid");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(5.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_diode("D1", b, Circuit::GROUND, Diode::silicon())
            .unwrap();
        ckt
    }

    fn rtd_divider(r: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("mid");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(0.0))
            .unwrap();
        ckt.add_resistor("R1", a, b, r).unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        ckt
    }

    #[test]
    fn diode_dc_converges() {
        let mats = CircuitMatrices::new(&diode_divider()).unwrap();
        let mut stats = EngineStats::new();
        let (x, outcome) = engine()
            .solve_dc(&mats, None, &vec![0.0; 3], None, &mut stats)
            .unwrap();
        match outcome {
            NrOutcome::Converged { iterations } => assert!(iterations < 60),
            other => panic!("unexpected {other:?}"),
        }
        // KCL: (5 - v)/1k = I_d(v).
        let v = x[1];
        let mut f = FlopCounter::new();
        let i_d = Diode::silicon().current(v, &mut f);
        assert!(approx_eq((5.0 - v) / 1e3, i_d, 1e-3), "v={v}");
    }

    #[test]
    fn linear_circuit_converges_immediately() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let mats = CircuitMatrices::new(&ckt).unwrap();
        let mut stats = EngineStats::new();
        let (x, outcome) = engine()
            .solve_dc(&mats, None, &vec![0.0; 2], None, &mut stats)
            .unwrap();
        assert!(outcome.is_converged());
        assert!(approx_eq(x[0], 1.0, 1e-9));
    }

    #[test]
    fn rtd_in_pdr1_converges() {
        let mats = CircuitMatrices::new(&rtd_divider(50.0)).unwrap();
        let mut stats = EngineStats::new();
        let (_, outcome) = engine()
            .solve_dc(&mats, Some(("V1", 1.0)), &vec![0.0; 3], None, &mut stats)
            .unwrap();
        assert!(outcome.is_converged(), "{outcome:?}");
    }

    /// Current-driven sharp RTD: `I_rtd(v) = I` with `I` above the valley
    /// current puts the Newton iterates in the non-monotone trap of the
    /// paper's Figure 2 (tiny `gd` in the valley catapults the iterate).
    fn current_driven_rtd() -> Circuit {
        let mut ckt = Circuit::new();
        let b = ckt.node("mid");
        ckt.add_current_source("I1", Circuit::GROUND, b, SourceWaveform::dc(0.0))
            .unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::sharp_valley())
            .unwrap();
        ckt.add_resistor("Rsh", b, Circuit::GROUND, 1e6).unwrap();
        ckt
    }

    #[test]
    fn rtd_ndr_from_cold_start_fails_plain_nr() {
        // Bias between the valley (~0.34 mA) and peak (~1.4 mA) currents
        // from a zero initial guess: plain differential-conductance NR must
        // NOT converge to a physical solution — the NDR problem of §3.1.
        let mats = CircuitMatrices::new(&current_driven_rtd()).unwrap();
        let mut stats = EngineStats::new();
        let (x, outcome) = engine()
            .solve_dc(&mats, Some(("I1", 1e-3)), &vec![0.0; 1], None, &mut stats)
            .unwrap();
        let physical = outcome.is_converged() && x[0].abs() < 10.0;
        assert!(
            !physical,
            "plain NR unexpectedly found a physical solution: {outcome:?}, v={}",
            x[0]
        );
    }

    #[test]
    fn device_limiting_rescues_ndr_point() {
        // The same point with MLA-style voltage limiting converges to a
        // genuine intersection of the I-V curve.
        let limited = NrEngine::new(NrOptions {
            device_v_limit: Some(0.05),
            max_iterations: 500,
            ..NrOptions::default()
        });
        let mats = CircuitMatrices::new(&current_driven_rtd()).unwrap();
        let mut stats = EngineStats::new();
        let (x, outcome) = limited
            .solve_dc(&mats, Some(("I1", 1e-3)), &vec![0.0; 1], None, &mut stats)
            .unwrap();
        assert!(outcome.is_converged(), "{outcome:?}");
        let v = x[0];
        assert!(v > 0.0 && v < 10.0, "physical bias, got {v}");
        let mut f = FlopCounter::new();
        let i_rtd = Rtd::sharp_valley().current(v, &mut f) + v / 1e6;
        assert!(approx_eq(i_rtd, 1e-3, 1e-3), "KCL: {i_rtd} at v={v}");
    }

    #[test]
    fn dc_sweep_reports_outcomes() {
        let r = engine()
            .run_dc_sweep(&rtd_divider(50.0), "V1", 0.0, 2.0, 0.1)
            .unwrap();
        assert_eq!(r.outcomes.len(), 21);
        assert_eq!(r.failures(), 0, "continuation keeps early points easy");
        assert!(r.sweep.stats.iterations > 21);
    }

    #[test]
    fn mosfet_pulldown_dc() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        let gate = ckt.node("g");
        ckt.add_voltage_source("Vdd", vdd, Circuit::GROUND, SourceWaveform::dc(5.0))
            .unwrap();
        ckt.add_voltage_source("Vg", gate, Circuit::GROUND, SourceWaveform::dc(5.0))
            .unwrap();
        ckt.add_resistor("RL", vdd, out, 10e3).unwrap();
        ckt.add_mosfet("M1", out, gate, Circuit::GROUND, Mosfet::nmos())
            .unwrap();
        let mats = CircuitMatrices::new(&ckt).unwrap();
        let mut stats = EngineStats::new();
        let (x, outcome) = engine()
            .solve_dc(&mats, None, &vec![0.0; 5], None, &mut stats)
            .unwrap();
        assert!(outcome.is_converged(), "{outcome:?}");
        let out_var = mats.mna.var_of_node_name("out").unwrap();
        assert!(x[out_var] < 1.0, "out = {}", x[out_var]);
    }

    #[test]
    fn transient_rc_matches_analytic() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("out");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pwl(vec![(0.0, 0.0), (1e-12, 1.0), (1.0, 1.0)]).unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", a, b, 1e3).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-12).unwrap();
        let r = engine().run_transient(&ckt, 0.02e-9, 5e-9).unwrap();
        assert!(r.failures.is_empty());
        let out = r.result.waveform("out").unwrap();
        let got = out.value_at(1e-9);
        let expected = 1.0 - (-1.0f64).exp();
        assert!((got - expected).abs() < 0.02, "{got} vs {expected}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let ckt = diode_divider();
        let e = engine();
        assert!(e.run_dc_sweep(&ckt, "V1", 0.0, 1.0, 0.0).is_err());
        assert!(e.run_dc_sweep(&ckt, "nope", 0.0, 1.0, 0.1).is_err());
        assert!(e.run_transient(&ckt, 0.0, 1e-9).is_err());
    }

    #[test]
    fn cycle_detector_finds_period_two() {
        let a = vec![0.0, 0.0];
        let b = vec![1.0, 1.0];
        let history = vec![
            a.clone(),
            b.clone(),
            a.clone(),
            b.clone(),
            a.clone(),
            b.clone(),
        ];
        assert_eq!(detect_vector_cycle(&history, 1e-6), Some(2));
        let history = vec![a.clone(); 6];
        assert_eq!(detect_vector_cycle(&history, 1e-6), None);
    }

    #[test]
    fn outcome_helpers() {
        assert!(NrOutcome::Converged { iterations: 3 }.is_converged());
        assert!(!NrOutcome::MaxIterations.is_converged());
        assert!(!NrOutcome::Oscillating { period: 2 }.is_converged());
        assert!(!NrOutcome::Singular.is_converged());
    }

    /// The NDR bias from [`rtd_ndr_from_cold_start_fails_plain_nr`], driven
    /// at its DC value (no source override).
    fn current_driven_rtd_biased() -> Circuit {
        let mut ckt = Circuit::new();
        let b = ckt.node("mid");
        ckt.add_current_source("I1", Circuit::GROUND, b, SourceWaveform::dc(1e-3))
            .unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::sharp_valley())
            .unwrap();
        ckt.add_resistor("Rsh", b, Circuit::GROUND, 1e6).unwrap();
        ckt
    }

    #[test]
    fn rescue_ladder_recovers_ndr_operating_point() {
        let ckt = current_driven_rtd_biased();
        let rescued = NrEngine::new(NrOptions {
            rescue: crate::rescue::RescueOptions::default(),
            ..NrOptions::default()
        });
        let op = rescued
            .solve_op_rescued(&ckt)
            .expect("ladder rescues NDR OP");
        assert!(!op.trace.is_empty(), "plain solve should have failed");
        assert!(op.trace.succeeded());
        assert!(op.stats.rescues >= 1);
        assert!(op.stats.rescue_rungs >= 1);
        let v = op.x[0];
        assert!(v > 0.0 && v < 10.0, "physical bias, got {v}");
        let mut f = FlopCounter::new();
        let i = Rtd::sharp_valley().current(v, &mut f) + v / 1e6;
        assert!(approx_eq(i, 1e-3, 1e-3), "KCL: {i} at v={v}");
    }

    #[test]
    fn rescue_disabled_keeps_op_failure_structured() {
        // Default options: the ladder never runs and the failure surfaces
        // as a structured NonConvergence, not a panic or silent wrong OP.
        let err = engine()
            .solve_op_rescued(&current_driven_rtd_biased())
            .unwrap_err();
        assert!(matches!(err, SimError::NonConvergence { .. }), "{err}");
        assert!(err.to_string().contains("rescue disabled"), "{err}");
    }

    #[test]
    fn rescue_ladder_is_inactive_on_healthy_deck() {
        let rescued = NrEngine::new(NrOptions {
            rescue: crate::rescue::RescueOptions::default(),
            ..NrOptions::default()
        });
        let op = rescued.solve_op_rescued(&rtd_divider(50.0)).unwrap();
        assert!(op.trace.is_empty());
        assert_eq!(op.stats.rescues, 0);
        assert_eq!(op.stats.rescue_rungs, 0);
    }
}
