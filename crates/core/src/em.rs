//! Euler–Maruyama stochastic transient engine (paper §4, Figure 10).
//!
//! Circuits with white-noise ("uncertain") inputs obey the nodal SDE of
//! paper eq. (13)/(17),
//!
//! ```text
//! C·dx = (b(t) - G(x,t)·x)·dt + B·dW
//! ```
//!
//! which the EM method (eq. 18) discretizes as
//!
//! ```text
//! x_{j+1} = x_j + C⁻¹·(b - G·x_j)·Δt + C⁻¹·B·ΔW_j .
//! ```
//!
//! `G` is re-evaluated each step with the SWEC equivalent conductance, so
//! nonlinear nano-devices are handled exactly as the paper notes ("Since G
//! is time variant, Equation (13) also includes cases with the nonlinear
//! nanodevices"). The engine factors `C` once, runs an ensemble of Wiener
//! paths, and reports per-node mean/std envelopes, a sample path, and
//! running-maximum ("peak performance") statistics.
//!
//! **Parallelism and determinism.** Monte-Carlo paths are independent, so
//! the ensemble executes on a scoped-thread worker pool
//! ([`nanosim_numeric::parallel`]) in fixed-size chunks of
//! [`PATH_CHUNK`] paths. Every path's PCG64 generator is derived
//! *deterministically up front* by splitting the seed stream in path order,
//! per-chunk statistics are accumulated with Welford's algorithm and merged
//! in chunk order, and per-path maxima are concatenated in path order —
//! none of which depends on scheduling. Results are therefore **bit
//! identical for every [`EmOptions::threads`] setting**, including the
//! serial `threads = 1`; `tests/stochastic.rs` locks this guarantee in.
//!
//! **Batched solves.** Within a chunk the paths advance in *lockstep*:
//! every path shares the one factorization of `C`, so each time step
//! assembles all paths' right-hand sides and performs a single
//! multi-RHS [`SparseLu::solve_many_into`] instead of one factor-structure
//! walk per path. Per-path arithmetic is bit-identical to the serial
//! per-path stepping (the batched kernel's lanes match independent solves
//! bit for bit), so this is purely a throughput optimization.
//!
//! **Supported circuits**: every MNA unknown must be a node voltage with
//! capacitance to ground (no voltage sources, no inductors) — the standard
//! state-space form. Drive the circuit with current sources; a Thevenin
//! source becomes a Norton equivalent.

use crate::assemble::{branch_voltage, mna_var_names, AssemblyWorkspace, CircuitMatrices};
use crate::report::EngineStats;
use crate::waveform::{TransientResult, Waveform};
use crate::{Result, SimError};
use nanosim_circuit::Circuit;
use nanosim_numeric::parallel::try_par_map;
use nanosim_numeric::rng::Pcg64;
use nanosim_numeric::sparse::{BatchedLu, CsrMatrix, OrderingChoice, PivotStrategy, SparseLu};
use nanosim_numeric::stats::{percentile, RunningStats};
use nanosim_numeric::{BudgetMeter, FlopCounter};
use nanosim_sde::wiener::WienerPath;
use std::time::Instant;

/// Monte-Carlo paths per work-stealing chunk. Chunk boundaries are a
/// function of the path index only (never of the thread count), which is
/// what keeps ensemble statistics bit-identical at any parallelism level.
pub const PATH_CHUNK: usize = 8;

/// Options of the EM engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EmOptions {
    /// Fixed integration step `Δt` (s).
    pub dt: f64,
    /// Number of Monte-Carlo paths.
    pub paths: usize,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// Re-evaluate nonlinear `Geq` every step (`true`) or freeze it at the
    /// initial state (`false`, linear-circuit fast path).
    pub update_geq: bool,
    /// Parallel conductance across nonlinear devices.
    pub gmin: f64,
    /// Worker threads for the ensemble: `0` = one per hardware thread,
    /// `1` = serial. Results are bit-identical for every setting (see the
    /// module docs), so this is purely a wall-clock knob.
    pub threads: usize,
    /// Relative per-path device-parameter spread `s` (`0 ≤ s < 1`). Each
    /// Monte-Carlo path scales every capacitance entry and the conductance
    /// stamp by independent factors drawn uniformly from `[1-s, 1+s]`
    /// (path-ordered stream seeded from [`EmOptions::seed`]). With
    /// `s > 0` every chunk factors its paths' distinct `C` matrices as one
    /// interleaved [`BatchedLu`] batch and advances them in lockstep;
    /// `s = 0` (the default) keeps the single shared factorization and is
    /// bit-identical to previous behavior. Ignored by
    /// [`EmEngine::run_with_paths`], which integrates nominal parameters.
    pub param_spread: f64,
}

impl Default for EmOptions {
    fn default() -> Self {
        EmOptions {
            dt: 1e-12,
            paths: 200,
            seed: 0x5eed_cafe,
            update_geq: true,
            gmin: 1e-12,
            threads: 0,
            param_spread: 0.0,
        }
    }
}

/// Peak ("performance") summary of one node over the ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct PeakSummary {
    /// Mean of per-path running maxima.
    pub mean_peak: f64,
    /// 95th percentile of per-path maxima.
    pub p95_peak: f64,
    /// Largest maximum seen in the ensemble.
    pub worst_peak: f64,
}

/// Ensemble result of a stochastic transient.
#[derive(Debug, Clone)]
pub struct EmResult {
    times: Vec<f64>,
    names: Vec<String>,
    mean: Vec<Vec<f64>>,
    std_dev: Vec<Vec<f64>>,
    maxima: Vec<Vec<f64>>,
    sample: TransientResult,
    /// Work accounting over the whole ensemble.
    pub stats: EngineStats,
}

impl EmResult {
    /// The shared time axis.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Node/variable names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of paths simulated.
    pub fn paths(&self) -> usize {
        self.maxima.first().map_or(0, Vec::len)
    }

    /// Ensemble-mean waveform of a node.
    pub fn mean_waveform(&self, name: &str) -> Option<Waveform> {
        let i = self.names.iter().position(|n| n == name)?;
        Some(Waveform::from_samples(
            self.times.clone(),
            self.mean[i].clone(),
        ))
    }

    /// Ensemble standard-deviation envelope of a node.
    pub fn std_waveform(&self, name: &str) -> Option<Waveform> {
        let i = self.names.iter().position(|n| n == name)?;
        Some(Waveform::from_samples(
            self.times.clone(),
            self.std_dev[i].clone(),
        ))
    }

    /// The first simulated path (the "one realization" plotted in
    /// Figure 10).
    pub fn sample_path(&self) -> &TransientResult {
        &self.sample
    }

    /// Running-maximum statistics of a node over the ensemble.
    pub fn peak_summary(&self, name: &str) -> Option<PeakSummary> {
        let i = self.names.iter().position(|n| n == name)?;
        peak_summary_of(&self.maxima[i])
    }

    /// Fraction of paths whose running maximum of `name` reached `level`.
    pub fn exceedance(&self, name: &str, level: f64) -> Option<f64> {
        let i = self.names.iter().position(|n| n == name)?;
        Some(exceedance_of(&self.maxima[i], level))
    }

    /// Decomposes into `(times, names, mean, std_dev, maxima, stats)` — the
    /// [`crate::sim::Dataset`] conversion path (the sample path is dropped).
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        Vec<f64>,
        Vec<String>,
        Vec<Vec<f64>>,
        Vec<Vec<f64>>,
        Vec<Vec<f64>>,
        EngineStats,
    ) {
        (
            self.times,
            self.names,
            self.mean,
            self.std_dev,
            self.maxima,
            self.stats,
        )
    }
}

/// [`PeakSummary`] of one variable's per-path running maxima (shared by
/// [`EmResult`] and [`crate::sim::Dataset`] so the two stay in lockstep).
pub(crate) fn peak_summary_of(maxima: &[f64]) -> Option<PeakSummary> {
    let stats: RunningStats = maxima.iter().copied().collect();
    Some(PeakSummary {
        mean_peak: stats.mean(),
        p95_peak: percentile(maxima, 0.95)?,
        worst_peak: stats.max(),
    })
}

/// Fraction of per-path maxima at or above `level`.
pub(crate) fn exceedance_of(maxima: &[f64], level: f64) -> f64 {
    let hits = maxima.iter().filter(|&&m| m >= level).count();
    hits as f64 / maxima.len() as f64
}

/// The Euler–Maruyama circuit engine.
#[derive(Debug, Clone, Default)]
pub struct EmEngine {
    opts: EmOptions,
    meter: BudgetMeter,
}

impl EmEngine {
    /// Creates the engine with the given options.
    pub fn new(opts: EmOptions) -> Self {
        EmEngine {
            opts,
            meter: BudgetMeter::unlimited(),
        }
    }

    /// Attaches a run budget. Checkpoints are placed per integration step
    /// inside every path chunk, so cancellation and deadlines take effect
    /// within one step's worth of work per worker.
    #[must_use]
    pub fn with_meter(mut self, meter: BudgetMeter) -> Self {
        self.meter = meter;
        self
    }

    /// The engine options.
    pub fn options(&self) -> &EmOptions {
        &self.opts
    }

    /// Checks the circuit satisfies the state-space restrictions and
    /// returns its matrices.
    fn prepare(&self, circuit: &Circuit) -> Result<CircuitMatrices> {
        let mats = CircuitMatrices::new(circuit)?;
        if mats.mna.num_branches() > 0 {
            return Err(SimError::UnsupportedCircuit {
                reason: "EM engine needs a pure state-space circuit: replace voltage sources \
                         with Norton equivalents and remove inductors"
                    .into(),
            });
        }
        // Every node needs capacitance for C to be invertible.
        let caps = mats.mna.node_capacitance();
        if let Some(j) = caps.iter().position(|&c| c <= 0.0) {
            let name = mna_var_names(&mats.mna)[j].clone();
            return Err(SimError::UnsupportedCircuit {
                reason: format!("node {name} has no capacitance; C must be nonsingular"),
            });
        }
        Ok(mats)
    }

    /// Runs the Monte-Carlo ensemble from `t = 0` to `horizon`, distributing
    /// paths over [`EmOptions::threads`] workers. Statistics stream through
    /// per-chunk Welford accumulators merged in chunk order, so no path
    /// series is ever materialized beyond the recorded sample path and the
    /// result is bit-identical at any thread count.
    ///
    /// # Errors
    /// Fails on unsupported circuits, invalid options or singular matrices.
    pub fn run(&self, circuit: &Circuit, horizon: f64) -> Result<EmResult> {
        if !(self.opts.dt > 0.0 && horizon > self.opts.dt) {
            return Err(SimError::InvalidConfig {
                context: format!(
                    "em needs 0 < dt < horizon (dt={}, horizon={horizon})",
                    self.opts.dt
                ),
            });
        }
        if self.opts.paths == 0 {
            return Err(SimError::InvalidConfig {
                context: "em needs at least one path".into(),
            });
        }
        if !(0.0..1.0).contains(&self.opts.param_spread) {
            return Err(SimError::InvalidConfig {
                context: format!(
                    "em needs 0 <= param_spread < 1 (got {})",
                    self.opts.param_spread
                ),
            });
        }
        let t0 = Instant::now();
        let mats = self.prepare(circuit)?;
        let dim = mats.mna.dim();
        let steps = (horizon / self.opts.dt).round() as usize;
        let paths = self.opts.paths;
        let mut stats = EngineStats::new();
        let mut flops = FlopCounter::new();

        // The result shape (mean + std-dev + sample series, per-path
        // maxima) is known up front: charge it before any path work so a
        // byte budget too small for the ensemble fails immediately and
        // identically at every worker count.
        let mut run_meter = self.meter.fork();
        let result_f64s = (steps as u64 + 1) * (1 + 3 * dim as u64) + (paths as u64) * dim as u64;
        run_meter.charge_bytes(8 * result_f64s).map_err(|stop| {
            SimError::budget_exceeded(
                stop,
                format!("em ensemble of {paths} paths x {steps} steps"),
            )
        })?;

        // Per-path parameter variation, drawn in path order from its own
        // seed-derived stream so enabling it never perturbs the noise RNGs.
        let variation = if self.opts.param_spread > 0.0 {
            Some(PathVariation::build(
                &mats,
                paths,
                self.opts.param_spread,
                self.opts.seed,
            ))
        } else {
            None
        };
        // Nominal parameters: factor C once; the factorization is immutable
        // and shared by every worker (each solves into its own buffers).
        // With per-path spread each chunk instead factors its paths' C
        // matrices as one interleaved batch.
        let c_lu = if variation.is_none() {
            Some(SparseLu::factor(&mats.c_csr, &mut flops)?)
        } else {
            None
        };
        let names = mna_var_names(&mats.mna);
        let times: Vec<f64> = (0..=steps).map(|k| k as f64 * self.opts.dt).collect();

        // Per-path generators derived up front in path order: the stream of
        // splits depends only on the seed, never on scheduling.
        let mut rng = Pcg64::seed_from_u64(self.opts.seed);
        let path_rngs: Vec<Pcg64> = (0..paths).map(|_| rng.split()).collect();

        let n_chunks = paths.div_ceil(PATH_CHUNK);
        let chunk_meter = &run_meter;
        let chunks = try_par_map(n_chunks, self.opts.threads, |ci| {
            let lo = ci * PATH_CHUNK;
            let hi = paths.min(lo + PATH_CHUNK);
            self.simulate_chunk(
                &mats,
                c_lu.as_ref(),
                steps,
                &path_rngs[lo..hi],
                lo,
                variation.as_ref(),
                chunk_meter,
            )
        })?;

        // Order-deterministic reduction: Welford-merge chunk accumulators
        // and concatenate per-path maxima, both in chunk order.
        let mut welford = vec![RunningStats::new(); dim * (steps + 1)];
        let mut maxima: Vec<Vec<f64>> = vec![Vec::with_capacity(paths); dim];
        let mut sample_columns: Vec<Vec<f64>> = Vec::new();
        for chunk in &chunks {
            for (total, part) in welford.iter_mut().zip(chunk.welford.iter()) {
                total.merge(part);
            }
            for (i, m) in maxima.iter_mut().enumerate() {
                m.extend_from_slice(&chunk.maxima[i]);
            }
            stats.merge(&chunk.stats);
        }
        if let Some(cols) = chunks.into_iter().next().and_then(|c| c.sample) {
            sample_columns = cols;
        }

        let mean: Vec<Vec<f64>> = (0..dim)
            .map(|i| {
                welford[i * (steps + 1)..(i + 1) * (steps + 1)]
                    .iter()
                    .map(RunningStats::mean)
                    .collect()
            })
            .collect();
        let std_dev: Vec<Vec<f64>> = (0..dim)
            .map(|i| {
                welford[i * (steps + 1)..(i + 1) * (steps + 1)]
                    .iter()
                    .map(RunningStats::std_dev)
                    .collect()
            })
            .collect();

        stats.flops += flops;
        stats.steps = steps * paths;
        stats.elapsed = t0.elapsed();
        let sample = TransientResult::new(
            times.clone(),
            names.clone(),
            sample_columns,
            EngineStats::new(),
        );
        Ok(EmResult {
            times,
            names,
            mean,
            std_dev,
            maxima,
            sample,
            stats,
        })
    }

    /// Integrates a single realization along caller-provided Wiener paths
    /// (one per stochastic source, in binding order). This is how Figure 10
    /// compares EM against the exact solution *of the same path*.
    ///
    /// # Errors
    /// Fails when the number or shape of the paths does not match the
    /// circuit's noise sources.
    pub fn run_with_paths(
        &self,
        circuit: &Circuit,
        wieners: &[WienerPath],
    ) -> Result<TransientResult> {
        let t0 = Instant::now();
        let mats = self.prepare(circuit)?;
        let noise_count = mats.mna.noise_bindings().len();
        if wieners.len() != noise_count {
            return Err(SimError::InvalidConfig {
                context: format!(
                    "{} wiener paths supplied for {} stochastic sources",
                    wieners.len(),
                    noise_count
                ),
            });
        }
        let steps = wieners.first().map_or(0, WienerPath::steps);
        if steps == 0 || wieners.iter().any(|w| w.steps() != steps) {
            return Err(SimError::InvalidConfig {
                context: "wiener paths must be nonempty and equal length".into(),
            });
        }
        let dt = wieners[0].dt();
        let mut stats = EngineStats::new();
        let mut flops = FlopCounter::new();
        let dim = mats.mna.dim();
        let mut run_meter = self.meter.fork();
        run_meter
            .charge_bytes(8 * (steps as u64 + 1) * (1 + dim as u64))
            .map_err(|stop| {
                SimError::budget_exceeded(stop, format!("em realization of {steps} steps"))
            })?;
        let c_lu = SparseLu::factor(&mats.c_csr, &mut flops)?;
        let mut state = PathState::new(&mats);
        let mut columns: Vec<Vec<f64>> = (0..dim).map(|i| vec![state.x[i]]).collect();
        let mut times = vec![0.0];
        for k in 0..steps {
            run_meter.checkpoint().map_err(|stop| {
                SimError::budget_exceeded(stop, format!("em realization at step {k}"))
            })?;
            let t = k as f64 * dt;
            for (dw, w) in state.dws.iter_mut().zip(wieners.iter()) {
                *dw = w.increment(k);
            }
            self.em_step(&mats, &c_lu, &mut state, t, dt, &mut stats, &mut flops)?;
            times.push(t + dt);
            for (i, c) in columns.iter_mut().enumerate() {
                c.push(state.x[i]);
            }
        }
        stats.steps = steps;
        stats.flops += flops;
        stats.elapsed = t0.elapsed();
        Ok(TransientResult::new(
            times,
            mna_var_names(&mats.mna),
            columns,
            stats,
        ))
    }

    /// Simulates one chunk of consecutive paths (global indices
    /// `lo..lo + path_rngs.len()`), streaming every sample into chunk-local
    /// Welford accumulators (`welford[i * (steps+1) + k]`) and per-path
    /// running maxima. The first chunk (`lo == 0`) captures the first
    /// path's series (the Figure 10 "one realization").
    ///
    /// Paths advance in **lockstep**: at each time step every path's
    /// right-hand side is assembled (each with its own generator and
    /// state, so per-path sequences are untouched), then one batched
    /// multi-RHS solve against the shared `C` factorization advances them
    /// all — amortizing the factor traversal across the chunk. For every
    /// `(variable, step)` accumulator the paths still push in ascending
    /// path order, so the reduction is bit-identical to per-path stepping.
    ///
    /// With `variation` set the chunk instead factors its paths' distinct
    /// capacitance matrices once as one interleaved [`BatchedLu`] batch and
    /// each step runs a single lane-parallel batched solve — one elimination
    /// traversal per step for the whole chunk instead of a refactor per
    /// path switch.
    fn simulate_chunk(
        &self,
        mats: &CircuitMatrices,
        c_lu: Option<&SparseLu>,
        steps: usize,
        path_rngs: &[Pcg64],
        lo: usize,
        variation: Option<&PathVariation>,
        meter: &BudgetMeter,
    ) -> Result<ChunkStats> {
        let record_sample = lo == 0;
        let dim = mats.mna.dim();
        let npaths = path_rngs.len();
        let sqrt_dt = self.opts.dt.sqrt();
        let mut state = PathState::new(mats);
        let mut stats = EngineStats::new();
        let mut flops = FlopCounter::new();

        // Per-path C factors advance as one interleaved batch.
        let batch = match variation {
            Some(var) => {
                let before = flops.total();
                let lane_mats: Vec<&CsrMatrix> = var.cap_mats[lo..lo + npaths].iter().collect();
                let b = BatchedLu::factor_ordered(
                    &lane_mats,
                    OrderingChoice::Natural,
                    PivotStrategy::default(),
                    &mut flops,
                )?;
                stats.full_factors += 1;
                stats.batched_factors += 1;
                stats.factor_flops += flops.total() - before;
                stats.min_recip_pivot = stats.min_recip_pivot.min(b.min_recip_pivot());
                Some(b)
            }
            None => None,
        };
        let mut welford = vec![RunningStats::new(); dim * (steps + 1)];
        let mut maxima: Vec<Vec<f64>> = vec![Vec::with_capacity(npaths); dim];
        let mut sample: Option<Vec<Vec<f64>>> = None;

        // Per-path evolution state; the assembly workspace and scratch
        // vectors in `state` are shared across paths (re-stamped per
        // path), the batched blocks are column-major `dim × npaths`.
        let mut rngs: Vec<Pcg64> = path_rngs.to_vec();
        let mut xs: Vec<Vec<f64>> = vec![vec![0.0; dim]; npaths];
        let mut max_v = vec![vec![f64::NEG_INFINITY; dim]; npaths];
        let mut rhs_block = vec![0.0f64; dim * npaths];
        let mut delta_block: Vec<f64> = Vec::new();
        let mut solve_work: Vec<f64> = Vec::new();

        for (p, (x, mv)) in xs.iter().zip(max_v.iter_mut()).enumerate() {
            for (i, m) in mv.iter_mut().enumerate() {
                let v = x[i];
                welford[i * (steps + 1)].push(v);
                *m = v;
            }
            if record_sample && p == 0 {
                sample = Some((0..dim).map(|i| vec![x[i]]).collect());
            }
        }
        for k in 0..steps {
            // Deterministic budget checkpoint: once per lockstep time step.
            // `try_par_map` keeps the smallest failing chunk index, so a
            // tripped budget reports the same chunk at every worker count.
            meter.checkpoint().map_err(|stop| {
                SimError::budget_exceeded(stop, format!("em paths {lo}.. at step {k}"))
            })?;
            let t = k as f64 * self.opts.dt;
            for (p, (x, rng)) in xs.iter().zip(rngs.iter_mut()).enumerate() {
                for dw in state.dws.iter_mut() {
                    *dw = sqrt_dt * rng.next_gaussian();
                }
                state.x.copy_from_slice(x);
                let g_scale = variation.map_or(1.0, |v| v.g_scale[lo + p]);
                self.assemble_rhs(
                    mats,
                    &mut state,
                    t,
                    self.opts.dt,
                    g_scale,
                    &mut stats,
                    &mut flops,
                )?;
                rhs_block[p * dim..(p + 1) * dim].copy_from_slice(&state.rhs);
            }
            // One factor traversal advances the whole chunk.
            match (&batch, c_lu) {
                (Some(b), _) => {
                    b.solve_all_into(&rhs_block, &mut delta_block, &mut solve_work, &mut flops)?
                }
                (None, Some(lu)) => lu.solve_many_into(
                    &rhs_block,
                    npaths,
                    &mut delta_block,
                    &mut solve_work,
                    &mut flops,
                )?,
                (None, None) => unreachable!("run() factors C when no per-path variation is set"),
            }
            stats.linear_solves += npaths as u64;
            for (p, (x, mv)) in xs.iter_mut().zip(max_v.iter_mut()).enumerate() {
                for (i, xi) in x.iter_mut().enumerate() {
                    *xi += delta_block[p * dim + i];
                    let v = *xi;
                    welford[i * (steps + 1) + k + 1].push(v);
                    if v > mv[i] {
                        mv[i] = v;
                    }
                }
                if p == 0 {
                    if let Some(cols) = sample.as_mut() {
                        for (i, c) in cols.iter_mut().enumerate() {
                            c.push(x[i]);
                        }
                    }
                }
            }
            flops.add((dim * npaths) as u64);
        }
        for mv in &max_v {
            for (i, m) in maxima.iter_mut().enumerate() {
                m.push(mv[i]);
            }
        }
        stats.flops += flops;
        Ok(ChunkStats {
            welford,
            maxima,
            sample,
            stats,
        })
    }

    /// Assembles one path's right-hand side
    /// `rhs = (b - g_scale·G(x)·x)·dt + B·dW` into `state.rhs` (`G`
    /// re-stamped at the path's current state; the increments already in
    /// `state.dws`). `g_scale` is the path's conductance spread factor;
    /// `1.0` (nominal) is bit-identical to the unscaled assembly. Shared
    /// by the serial stepper and the lockstep batched chunks.
    fn assemble_rhs(
        &self,
        mats: &CircuitMatrices,
        state: &mut PathState,
        t: f64,
        dt: f64,
        g_scale: f64,
        stats: &mut EngineStats,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        let mna = &mats.mna;
        let dim = mna.dim();
        // Assemble G (linear + SWEC conductances at the current state).
        state.ws.begin();
        for (i, b) in mna.nonlinear_bindings().iter().enumerate() {
            let v = branch_voltage(&state.x, b.var_plus, b.var_minus);
            let geq = if self.opts.update_geq {
                stats.device_evals += 1;
                b.device.equivalent_conductance(v, flops) + self.opts.gmin
            } else {
                self.opts.gmin
            };
            state.ws.stamp_nonlinear(i, geq);
        }
        for (k, m) in mna.mosfet_bindings().iter().enumerate() {
            let vd = m.var_drain.map_or(0.0, |i| state.x[i]);
            let vg = m.var_gate.map_or(0.0, |i| state.x[i]);
            let vs = m.var_source.map_or(0.0, |i| state.x[i]);
            let geq = m.model.geq(vg - vs, vd - vs, flops) + self.opts.gmin;
            stats.device_evals += 1;
            state.ws.stamp_mosfet_cond(k, geq);
        }
        // rhs = (b - G x) dt + B dW.
        mna.stamp_rhs(t, &mut state.rhs);
        state
            .ws
            .matrix()
            .matvec_into(&state.x, &mut state.gx, flops)?;
        for i in 0..dim {
            // `1.0 * x == x` bitwise, so the nominal path is unchanged.
            state.rhs[i] = (state.rhs[i] - g_scale * state.gx[i]) * dt;
        }
        flops.fma(dim as u64);
        if g_scale != 1.0 {
            flops.mul(dim as u64);
        }
        for (nb, &dw) in mna.noise_bindings().iter().zip(state.dws.iter()) {
            for &(row, coeff) in &nb.rows {
                state.rhs[row] += coeff * dw;
                flops.fma(1);
            }
        }
        Ok(())
    }

    /// One EM step in place: `x += C^{-1}[(b - Gx)·dt + B·dW]`, with the
    /// increments already in `state.dws`. Assembly scatter-updates the
    /// workspace pattern and every vector lives in `state` — zero heap
    /// allocations per step.
    fn em_step(
        &self,
        mats: &CircuitMatrices,
        c_lu: &SparseLu,
        state: &mut PathState,
        t: f64,
        dt: f64,
        stats: &mut EngineStats,
        flops: &mut FlopCounter,
    ) -> Result<()> {
        let dim = mats.mna.dim();
        self.assemble_rhs(mats, state, t, dt, 1.0, stats, flops)?;
        // x += C^{-1} rhs.
        c_lu.solve_into(&state.rhs, &mut state.delta, &mut state.solve_work, flops)?;
        stats.linear_solves += 1;
        for i in 0..dim {
            state.x[i] += state.delta[i];
        }
        flops.add(dim as u64);
        Ok(())
    }
}

/// Per-path parameter realizations for [`EmOptions::param_spread`]: the
/// jittered capacitance matrix and conductance scale of every path, drawn
/// in path order from a dedicated seed-derived stream (independent of the
/// noise generators, so enabling spread never shifts the Wiener paths).
#[derive(Debug)]
struct PathVariation {
    /// One capacitance matrix per path, identical sparsity pattern to the
    /// nominal `C` (values jittered, structure untouched) — the contract
    /// [`BatchedLu`] needs to interleave them into one factor batch.
    cap_mats: Vec<CsrMatrix>,
    /// Per-path conductance scale applied to `G·x` during RHS assembly.
    g_scale: Vec<f64>,
}

impl PathVariation {
    fn build(mats: &CircuitMatrices, paths: usize, spread: f64, seed: u64) -> Self {
        let mut rng = Pcg64::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut cap_mats = Vec::with_capacity(paths);
        let mut g_scale = Vec::with_capacity(paths);
        for _ in 0..paths {
            let mut c = mats.c_csr.clone();
            for v in c.values_mut() {
                *v *= 1.0 + spread * rng.uniform(-1.0, 1.0);
            }
            cap_mats.push(c);
            g_scale.push(1.0 + spread * rng.uniform(-1.0, 1.0));
        }
        PathVariation { cap_mats, g_scale }
    }
}

/// Per-worker integration state: the assembly workspace plus every vector
/// the stepper touches, so a path advances with zero allocation per step.
#[derive(Debug)]
struct PathState {
    ws: AssemblyWorkspace,
    x: Vec<f64>,
    rhs: Vec<f64>,
    gx: Vec<f64>,
    delta: Vec<f64>,
    solve_work: Vec<f64>,
    dws: Vec<f64>,
}

impl PathState {
    fn new(mats: &CircuitMatrices) -> Self {
        let dim = mats.mna.dim();
        PathState {
            ws: AssemblyWorkspace::new(
                mats,
                false,
                false,
                nanosim_numeric::sparse::OrderingChoice::default(),
            ),
            x: vec![0.0; dim],
            rhs: vec![0.0; dim],
            gx: vec![0.0; dim],
            delta: Vec::with_capacity(dim),
            solve_work: Vec::with_capacity(dim),
            dws: vec![0.0; mats.mna.noise_bindings().len()],
        }
    }
}

/// One chunk's contribution to the ensemble reduction.
#[derive(Debug)]
struct ChunkStats {
    /// Flattened `dim x (steps + 1)` Welford accumulators.
    welford: Vec<RunningStats>,
    /// Per-variable running maxima, one entry per path in the chunk.
    maxima: Vec<Vec<f64>>,
    /// The first path's series (only from the first chunk).
    sample: Option<Vec<Vec<f64>>>,
    /// Work accounting of the chunk.
    stats: EngineStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_devices::sources::SourceWaveform;
    use nanosim_sde::ou::OrnsteinUhlenbeck;

    /// Noisy RC node: g = 1 mS, c = 1 pF, mean drive 0, noise intensity
    /// sigma_i.
    fn noisy_rc(sigma_i: f64, i_dc: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let n = ckt.node("v");
        ckt.add_current_source(
            "In",
            Circuit::GROUND,
            n,
            SourceWaveform::white_noise(i_dc, sigma_i).unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", n, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", n, Circuit::GROUND, 1e-12).unwrap();
        ckt
    }

    fn ou_equivalent(sigma_i: f64, i_dc: f64) -> OrnsteinUhlenbeck {
        // theta = G/C, mu = i_dc/G, sigma = sigma_i/C.
        OrnsteinUhlenbeck::from_rc_node(1e-3, 1e-12, i_dc, sigma_i)
    }

    #[test]
    fn rejects_unsupported_circuits() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.add_capacitor("C1", a, Circuit::GROUND, 1e-12).unwrap();
        let e = EmEngine::new(EmOptions::default());
        assert!(matches!(
            e.run(&ckt, 1e-9),
            Err(SimError::UnsupportedCircuit { .. })
        ));
        // Node without capacitance.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_current_source("I1", Circuit::GROUND, a, SourceWaveform::dc(1e-3))
            .unwrap();
        ckt.add_resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        assert!(matches!(
            e.run(&ckt, 1e-9),
            Err(SimError::UnsupportedCircuit { .. })
        ));
    }

    #[test]
    fn invalid_options_rejected() {
        let ckt = noisy_rc(1e-9, 0.0);
        let e = EmEngine::new(EmOptions {
            dt: 0.0,
            ..EmOptions::default()
        });
        assert!(e.run(&ckt, 1e-9).is_err());
        let e = EmEngine::new(EmOptions {
            paths: 0,
            ..EmOptions::default()
        });
        assert!(e.run(&ckt, 1e-9).is_err());
        let e = EmEngine::new(EmOptions {
            param_spread: 1.0,
            ..EmOptions::default()
        });
        assert!(e.run(&ckt, 1e-9).is_err());
        let e = EmEngine::new(EmOptions {
            param_spread: -0.1,
            ..EmOptions::default()
        });
        assert!(e.run(&ckt, 1e-9).is_err());
    }

    #[test]
    fn param_spread_batches_factors_and_stays_thread_deterministic() {
        // 21 paths over PATH_CHUNK=8 -> 3 chunks, each factoring its lanes
        // as one interleaved batch. The chunk decomposition depends only on
        // path indices, so the spread ensemble is bit-identical at every
        // worker count, exactly like the nominal path. A coupling cap makes
        // C non-diagonal so the batched elimination does real work.
        let mut ckt = noisy_rc(1e-9, 1e-3);
        let n = ckt.node("v");
        let n2 = ckt.node("v2");
        ckt.add_capacitor("Cc", n, n2, 2e-13).unwrap();
        ckt.add_capacitor("C2", n2, Circuit::GROUND, 1e-12).unwrap();
        ckt.add_resistor("R2", n2, Circuit::GROUND, 1e3).unwrap();
        let opts = EmOptions {
            dt: 5e-12,
            paths: 21,
            seed: 77,
            threads: 1,
            param_spread: 0.05,
            ..EmOptions::default()
        };
        let serial = EmEngine::new(opts.clone()).run(&ckt, 1e-10).unwrap();
        assert_eq!(serial.stats.batched_factors, 3);
        assert_eq!(serial.stats.full_factors, 3);
        assert!(serial.stats.factor_flops > 0);
        // Spread jitters C and scales G per path: with drive the paths now
        // disagree even before noise does.
        let sd = serial.std_waveform("v").unwrap();
        assert!(sd.final_value() > 0.0);
        for threads in [2, 3, 8] {
            let par = EmEngine::new(EmOptions {
                threads,
                ..opts.clone()
            })
            .run(&ckt, 1e-10)
            .unwrap();
            for name in par.names() {
                let a = serial.mean_waveform(name).unwrap();
                let b = par.mean_waveform(name).unwrap();
                assert_eq!(a.values(), b.values(), "threads={threads} {name}");
            }
        }
    }

    #[test]
    fn zero_spread_is_bitwise_nominal() {
        // `param_spread: 0.0` must take the shared-factor path and produce
        // exactly the stats/values of a build without the feature.
        let ckt = noisy_rc(2e-9, 0.0);
        let opts = EmOptions {
            dt: 5e-12,
            paths: 9,
            seed: 5,
            ..EmOptions::default()
        };
        let r = EmEngine::new(opts).run(&ckt, 1e-10).unwrap();
        assert_eq!(r.stats.batched_factors, 0);
        assert_eq!(r.stats.full_factors, 0);
    }

    #[test]
    fn ensemble_statistics_match_ou_theory() {
        // Var[X(t)] -> sigma^2/(2 theta); tau = 1 ns, run 3 tau.
        let sigma_i = 2e-9; // A sqrt(s)
        let ckt = noisy_rc(sigma_i, 0.0);
        let engine = EmEngine::new(EmOptions {
            dt: 5e-12,
            paths: 400,
            seed: 42,
            ..EmOptions::default()
        });
        let r = engine.run(&ckt, 3e-9).unwrap();
        let ou = ou_equivalent(sigma_i, 0.0);
        let sd = r.std_waveform("v").unwrap();
        let expected_sd = ou.variance(3e-9).sqrt();
        let got = sd.final_value();
        assert!(
            (got - expected_sd).abs() < 0.15 * expected_sd,
            "sd {got} vs {expected_sd}"
        );
        // Mean stays near zero.
        let mean = r.mean_waveform("v").unwrap();
        assert!(mean.final_value().abs() < 0.2 * expected_sd);
        assert_eq!(r.paths(), 400);
    }

    #[test]
    fn deterministic_drive_reaches_dc_level() {
        // i_dc = 1 mA into 1 kOhm -> 1 V, no noise.
        let ckt = noisy_rc(0.0, 1e-3);
        let engine = EmEngine::new(EmOptions {
            dt: 5e-12,
            paths: 3,
            ..EmOptions::default()
        });
        let r = engine.run(&ckt, 5e-9).unwrap();
        let mean = r.mean_waveform("v").unwrap();
        assert!(
            (mean.final_value() - 1.0).abs() < 0.02,
            "{}",
            mean.final_value()
        );
        // All paths identical without noise.
        let sd = r.std_waveform("v").unwrap();
        assert!(sd.final_value() < 1e-12);
    }

    #[test]
    fn em_path_matches_ou_em_on_same_wiener_path() {
        // Integrating the circuit along an explicit Wiener path must equal
        // the scalar OU EM integration of the same path (the engine *is*
        // that equation in matrix form).
        let sigma_i = 1e-9;
        let ckt = noisy_rc(sigma_i, 0.0);
        let engine = EmEngine::new(EmOptions {
            dt: 1e-12,
            ..EmOptions::default()
        });
        let mut rng = Pcg64::seed_from_u64(7);
        let path = WienerPath::generate(1e-9, 1000, &mut rng);
        let r = engine.run_with_paths(&ckt, &[path.clone()]).unwrap();
        let ou = ou_equivalent(sigma_i, 0.0);
        let scalar = ou.em_path(0.0, &path);
        let circuit_v = r.column("v").unwrap();
        for (a, b) in circuit_v.iter().zip(scalar.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn run_with_paths_validates_shape() {
        let ckt = noisy_rc(1e-9, 0.0);
        let engine = EmEngine::new(EmOptions::default());
        assert!(engine.run_with_paths(&ckt, &[]).is_err());
        let mut rng = Pcg64::seed_from_u64(1);
        let p1 = WienerPath::generate(1e-9, 100, &mut rng);
        let p2 = WienerPath::generate(1e-9, 50, &mut rng);
        assert!(engine.run_with_paths(&ckt, &[p1.clone(), p2]).is_err());
        assert!(engine.run_with_paths(&ckt, &[p1]).is_ok());
    }

    #[test]
    fn peak_summary_and_exceedance() {
        let ckt = noisy_rc(2e-9, 0.0);
        let engine = EmEngine::new(EmOptions {
            dt: 5e-12,
            paths: 100,
            seed: 9,
            ..EmOptions::default()
        });
        let r = engine.run(&ckt, 2e-9).unwrap();
        let peak = r.peak_summary("v").unwrap();
        assert!(peak.mean_peak > 0.0, "noise pushes the max above 0");
        assert!(peak.p95_peak >= peak.mean_peak);
        assert!(peak.worst_peak >= peak.p95_peak);
        let p_low = r.exceedance("v", 0.0).unwrap();
        assert!(p_low > 0.9, "almost every path exceeds 0 at some point");
        let p_high = r.exceedance("v", peak.worst_peak * 1.01).unwrap();
        assert_eq!(p_high, 0.0);
        assert!(r.peak_summary("zz").is_none());
    }

    #[test]
    fn nonlinear_devices_enter_through_swec_geq() {
        // A noisy node loaded by an RTD: "Since G is time variant, Equation
        // (13) also includes cases with the nonlinear nanodevices" (§4.1).
        // Drive the node near 1 V where the RTD conducts strongly; the
        // mean must settle where I_rtd(v) + v/R = i_dc.
        use nanosim_devices::rtd::Rtd;
        use nanosim_devices::traits::NonlinearTwoTerminal as _;
        let mut ckt = Circuit::new();
        let n = ckt.node("v");
        ckt.add_current_source(
            "In",
            Circuit::GROUND,
            n,
            SourceWaveform::white_noise(8e-3, 1e-9).unwrap(),
        )
        .unwrap();
        ckt.add_rtd("X1", n, Circuit::GROUND, Rtd::date2005())
            .unwrap();
        ckt.add_resistor("R1", n, Circuit::GROUND, 1e3).unwrap();
        ckt.add_capacitor("C1", n, Circuit::GROUND, 1e-12).unwrap();
        let engine = EmEngine::new(EmOptions {
            dt: 2e-12,
            paths: 60,
            seed: 11,
            ..EmOptions::default()
        });
        let r = engine.run(&ckt, 3e-9).unwrap();
        let v_end = r.mean_waveform("v").unwrap().final_value();
        // Self-consistency of the mean operating point.
        let mut f = nanosim_numeric::FlopCounter::new();
        let residual = Rtd::date2005().current(v_end, &mut f) + v_end / 1e3 - 8e-3;
        assert!(
            residual.abs() < 8e-4,
            "operating point residual {residual} at v = {v_end}"
        );
        // Frozen-Geq mode solves the same circuit but linearized at 0 —
        // a different (higher) voltage, demonstrating the update matters.
        let frozen = EmEngine::new(EmOptions {
            dt: 2e-12,
            paths: 20,
            seed: 11,
            update_geq: false,
            ..EmOptions::default()
        });
        let rf = frozen.run(&ckt, 3e-9).unwrap();
        let v_frozen = rf.mean_waveform("v").unwrap().final_value();
        assert!(
            (v_frozen - v_end).abs() > 0.05,
            "frozen {v_frozen} vs updated {v_end} should differ"
        );
    }

    #[test]
    fn sample_path_is_recorded() {
        let ckt = noisy_rc(1e-9, 0.0);
        let engine = EmEngine::new(EmOptions {
            dt: 1e-11,
            paths: 5,
            ..EmOptions::default()
        });
        let r = engine.run(&ckt, 1e-9).unwrap();
        assert_eq!(r.sample_path().points(), r.times().len());
        assert_eq!(r.names(), r.sample_path().names());
    }
}
