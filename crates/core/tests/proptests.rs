//! Property-based tests of the simulation engines.
//!
//! The invariants here are the ones the paper's method rests on: every
//! conductance SWEC stamps is positive, DC solutions satisfy Kirchhoff's
//! current law at the nonlinear node, transients approach the right steady
//! state, and engines agree where all are trustworthy.

use nanosim_circuit::Circuit;
use nanosim_core::nr::{NrEngine, NrOptions};
use nanosim_core::sim::{Analysis, SimOptions, Simulator};
use nanosim_core::swec::{DcMode, SwecDcSweep, SwecOptions, SwecTransient};
use nanosim_core::OrderingChoice;
use nanosim_devices::rtd::{Rtd, RtdParams};
use nanosim_devices::sources::SourceWaveform;
use nanosim_devices::traits::NonlinearTwoTerminal;
use nanosim_numeric::FlopCounter;
use proptest::prelude::*;

/// Physically sensible random RTD parameter sets (same family as the
/// devices crate's strategy, restricted so peaks stay below ~8 V).
fn rtd_params() -> impl Strategy<Value = RtdParams> {
    // The excess-current factors (h, n2) are bounded so J2 stays small over
    // a 0..6 V sweep: the paper's method targets staircase resonant I-V,
    // not diode-style exponentials (which SPICE handles with junction
    // limiting instead).
    (
        1e-5f64..5e-4,
        0.1f64..0.4,
        0.4f64..1.5,
        0.05f64..0.4,
        1e-9f64..1e-8,
        0.25f64..0.55,
        0.015f64..0.04,
    )
        .prop_map(|(a, b, c, d, h, n1, n2)| RtdParams {
            a,
            b,
            c,
            d,
            h,
            n1,
            n2,
            temperature: 300.0,
        })
}

/// Strategy: a random *connected* resistor network (spanning tree + extra
/// chords) with RTDs to ground on a random subset of nodes and one DC
/// source at the root. Connectivity is by construction: node `k` always
/// attaches to an earlier node.
fn connected_circuit() -> impl Strategy<Value = Circuit> {
    (3usize..18).prop_flat_map(|n| {
        let tree_parents = proptest::collection::vec(0usize..1_000_000, n - 1);
        let chords = proptest::collection::vec((0usize..1_000_000, 0usize..1_000_000), 0..n);
        let resistances = proptest::collection::vec(20.0f64..2e3, 2 * n);
        let rtd_mask = proptest::collection::vec(0usize..2, n);
        (Just(n), tree_parents, chords, resistances, rtd_mask).prop_map(
            |(n, parents, chords, res, rtd_mask)| {
                let mut ckt = Circuit::new();
                let nodes: Vec<_> = (0..n).map(|k| ckt.node(&format!("n{k}"))).collect();
                ckt.add_voltage_source("V1", nodes[0], Circuit::GROUND, SourceWaveform::dc(1.0))
                    .unwrap();
                let mut ri = 0usize;
                let r = |i: &mut usize| {
                    let v = res[*i % res.len()];
                    *i += 1;
                    v
                };
                for k in 1..n {
                    let parent = parents[k - 1] % k;
                    ckt.add_resistor(&format!("Rt{k}"), nodes[parent], nodes[k], r(&mut ri))
                        .unwrap();
                }
                for (idx, &(a, b)) in chords.iter().enumerate() {
                    let (a, b) = (a % n, b % n);
                    if a != b {
                        ckt.add_resistor(&format!("Rc{idx}"), nodes[a], nodes[b], r(&mut ri))
                            .unwrap();
                    }
                }
                let mut any_rtd = false;
                for (k, &on) in rtd_mask.iter().enumerate() {
                    if on == 1 {
                        any_rtd = true;
                        ckt.add_rtd(&format!("X{k}"), nodes[k], Circuit::GROUND, Rtd::date2005())
                            .unwrap();
                    }
                }
                if !any_rtd {
                    // Keep at least one shunt so every node has a DC path.
                    ckt.add_resistor("Rg", nodes[n - 1], Circuit::GROUND, 500.0)
                        .unwrap();
                }
                ckt
            },
        )
    })
}

fn divider(rtd: Rtd, series: f64, vs: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("in");
    let b = ckt.node("mid");
    ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(vs))
        .unwrap();
    ckt.add_resistor("R1", a, b, series).unwrap();
    ckt.add_rtd("X1", b, Circuit::GROUND, rtd).unwrap();
    ckt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SWEC fixed-point DC solutions satisfy KCL at the RTD node for random
    /// devices, loads and biases — including biases that land in the NDR
    /// region.
    #[test]
    fn swec_dc_satisfies_kcl(
        params in rtd_params(),
        series in 20.0f64..500.0,
        vs in 0.1f64..6.0
    ) {
        let rtd = Rtd::new(params).unwrap();
        let ckt = divider(rtd.clone(), series, vs);
        let engine = SwecDcSweep::new(SwecOptions {
            dc_mode: DcMode::FixedPoint,
            ..SwecOptions::default()
        });
        let x = engine.solve_op(&ckt).unwrap();
        let v_mid = x[1];
        let mut flops = FlopCounter::new();
        let i_rtd = rtd.current(v_mid, &mut flops);
        let i_res = (vs - v_mid) / series;
        let scale = i_res.abs().max(1e-9);
        prop_assert!(
            (i_rtd - i_res).abs() < 1e-4 * scale + 1e-9,
            "KCL: rtd {i_rtd} vs resistor {i_res} at v={v_mid}"
        );
        // The node voltage is physical: between 0 and the source.
        prop_assert!(v_mid >= -1e-9 && v_mid <= vs + 1e-9);
    }

    /// The non-iterative sweep tracks the fixed-point sweep within a few
    /// percent of the peak current for random devices — restricted to
    /// configurations with a unique operating point everywhere (load
    /// conductance above the steepest NDR slope); outside that regime the
    /// two sweeps may legally settle on different hysteresis branches.
    #[test]
    fn noniterative_tracks_fixed_point(params in rtd_params(), series in 20.0f64..200.0) {
        let rtd = Rtd::new(params).unwrap();
        let mut flops = FlopCounter::new();
        let steepest_ndr = {
            let mut worst = 0.0f64;
            let mut v = 0.0;
            while v <= 6.0 {
                worst = worst.max(-rtd.differential_conductance(v, &mut flops));
                v += 0.02;
            }
            worst
        };
        prop_assume!(series * steepest_ndr < 0.8, "unique-solution load line");
        let ckt = divider(rtd, series, 0.0);
        let stop = 6.0;
        let ni = SwecDcSweep::new(SwecOptions::default())
            .run(&ckt, "V1", 0.0, stop, 0.02)
            .unwrap();
        let fp = SwecDcSweep::new(SwecOptions {
            dc_mode: DcMode::FixedPoint,
            ..SwecOptions::default()
        })
        .run(&ckt, "V1", 0.0, stop, 0.02)
        .unwrap();
        let a = ni.curve("I(X1)").unwrap();
        let b = fp.curve("I(X1)").unwrap();
        let peak = b.peak().unwrap().1.max(1e-9);
        prop_assert!(
            a.rms_difference(&b) < 0.08 * peak,
            "rms {} vs peak {peak}",
            a.rms_difference(&b)
        );
    }

    /// SWEC and Newton agree on the operating point whenever Newton
    /// converges — restricted, like the sweep-agreement property, to
    /// unique-solution load lines (otherwise each method may follow a
    /// different hysteresis branch and both are "right").
    #[test]
    fn swec_matches_converged_newton(params in rtd_params(), series in 30.0f64..300.0) {
        let rtd = Rtd::new(params).unwrap();
        let mut flops = FlopCounter::new();
        let steepest_ndr = {
            let mut worst = 0.0f64;
            let mut v = 0.0;
            while v <= 3.0 {
                worst = worst.max(-rtd.differential_conductance(v, &mut flops));
                v += 0.02;
            }
            worst
        };
        prop_assume!(series * steepest_ndr < 0.8, "unique-solution load line");
        let ckt = divider(rtd, series, 0.0);
        let swec = SwecDcSweep::new(SwecOptions {
            dc_mode: DcMode::FixedPoint,
            ..SwecOptions::default()
        })
        .run(&ckt, "V1", 0.0, 3.0, 0.05)
        .unwrap();
        let nr = NrEngine::new(NrOptions::default())
            .run_dc_sweep(&ckt, "V1", 0.0, 3.0, 0.05)
            .unwrap();
        let a = swec.curve("mid").unwrap();
        let b = nr.sweep.curve("mid").unwrap();
        for (k, outcome) in nr.outcomes.iter().enumerate() {
            if outcome.is_converged() {
                let v = 0.05 * k as f64;
                let d = (a.value_at(v) - b.value_at(v)).abs();
                prop_assert!(d < 5e-3 * (1.0 + a.value_at(v).abs()), "at {v}: {d}");
            }
        }
    }

    /// A linear RC transient driven by a random step ends at the step value
    /// regardless of R, C (time scaled to 5 tau).
    #[test]
    fn rc_transient_settles(
        r in 10.0f64..1e5,
        c in 1e-14f64..1e-10,
        vstep in 0.1f64..10.0
    ) {
        let tau = r * c;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("out");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pwl(vec![(0.0, 0.0), (tau * 1e-3, vstep), (1.0, vstep)]).unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", a, b, r).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, c).unwrap();
        let result = SwecTransient::new(SwecOptions::default())
            .run(&ckt, tau / 10.0, 5.0 * tau)
            .unwrap();
        let out = result.waveform("out").unwrap();
        let expected = vstep * (1.0 - (-5.0f64).exp());
        prop_assert!(
            (out.final_value() - expected).abs() < 0.02 * vstep,
            "{} vs {expected}",
            out.final_value()
        );
        // No overshoot for a first-order system.
        let peak = out.peak().unwrap().1;
        prop_assert!(peak <= vstep * 1.001);
    }

    /// On random connected circuits, AMD- and RCM-ordered operating points
    /// match the natural-order solution within 1e-10 relative error —
    /// the fill permutation is invisible to the physics.
    #[test]
    fn ordered_ops_match_natural_on_random_circuits(ckt in connected_circuit()) {
        let solve = |ordering| {
            let mut sim = Simulator::with_options(ckt.clone(), SimOptions { ordering, ..Default::default() })
                .expect("assembles");
            sim.run(Analysis::op()).expect("op solves")
        };
        let natural = solve(OrderingChoice::Natural);
        for ordering in [OrderingChoice::Rcm, OrderingChoice::Amd] {
            let ds = solve(ordering);
            for name in natural.names() {
                let a = ds.value(name).unwrap();
                let b = natural.value(name).unwrap();
                prop_assert!(
                    (a - b).abs() <= 1e-10 * b.abs().max(1.0),
                    "{ordering:?}/{name}: {a} vs {b}"
                );
            }
        }
    }

    /// A fixed ordering is bit-deterministic: the same circuit solved
    /// twice, and through sharded sweeps at several worker counts, gives
    /// byte-identical results.
    #[test]
    fn ordered_results_bit_deterministic(ckt in connected_circuit()) {
        use nanosim_core::sim::ExecPlan;
        let run = |workers: usize| {
            let mut sim = Simulator::with_options(
                ckt.clone(),
                SimOptions { ordering: OrderingChoice::Amd, ..Default::default() },
            )
            .expect("assembles");
            let a = Analysis::dc_sweep("V1", 0.0, 1.0, 0.05);
            let a = if workers == 0 { a } else { a.plan(ExecPlan::sharded(workers)) };
            sim.run(a).expect("sweep runs")
        };
        let first = run(0);
        let second = run(0);
        for name in first.names() {
            prop_assert_eq!(first.column(name).unwrap(), second.column(name).unwrap());
        }
        for workers in [2usize, 5] {
            let sharded = run(workers);
            for name in first.names() {
                prop_assert_eq!(
                    first.column(name).unwrap(),
                    sharded.column(name).unwrap(),
                    "workers={}, column {}", workers, name
                );
            }
        }
    }

    /// Transient node voltages of the RTD divider stay within the source
    /// range for random ramps (passivity — the engine never manufactures
    /// energy).
    #[test]
    fn rtd_ramp_stays_bounded(params in rtd_params(), vtop in 1.0f64..6.0) {
        let rtd = Rtd::new(params).unwrap();
        let mut ckt = Circuit::new();
        let a = ckt.node("in");
        let b = ckt.node("mid");
        ckt.add_voltage_source(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::pwl(vec![(0.0, 0.0), (10e-9, vtop), (20e-9, vtop)]).unwrap(),
        )
        .unwrap();
        ckt.add_resistor("R1", a, b, 50.0).unwrap();
        ckt.add_rtd("X1", b, Circuit::GROUND, rtd).unwrap();
        ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-13).unwrap();
        let result = SwecTransient::new(SwecOptions::default())
            .run(&ckt, 0.1e-9, 20e-9)
            .unwrap();
        let mid = result.waveform("mid").unwrap();
        for &v in mid.values() {
            prop_assert!(v >= -0.05 && v <= vtop + 0.05, "v={v} outside [0, {vtop}]");
        }
    }
}
