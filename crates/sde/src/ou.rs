//! The Ornstein–Uhlenbeck process — the exact model of an RC node driven by
//! white noise.
//!
//! The paper's Figure 10 workload ("a time-variant nanoscale transistor with
//! some parasitic RCs" under a random input) is, for a single node, the SDE
//!
//! ```text
//! dX = θ·(μ - X)·dt + σ·dW
//! ```
//!
//! with `θ = G/C` (conductance over capacitance), `μ` the deterministic
//! operating point and `σ` the noise intensity scaled by `1/C`. This module
//! provides the closed-form moments, exact distributional sampling, and a
//! pathwise high-resolution reference solution ("true solution" in the
//! figure) built by Brownian-bridge refinement of the same Wiener path.

use crate::em::euler_maruyama_path;
use crate::wiener::WienerPath;
use nanosim_numeric::rng::Pcg64;

/// An Ornstein–Uhlenbeck process `dX = θ(μ - X)dt + σ dW`.
///
/// # Example
/// ```
/// use nanosim_sde::ou::OrnsteinUhlenbeck;
/// let ou = OrnsteinUhlenbeck::new(2.0, 0.0, 0.5);
/// assert!((ou.mean(1.0, 1e9) - 0.0).abs() < 1e-9); // decays to mu
/// assert!((ou.stationary_variance() - 0.0625).abs() < 1e-12); // sigma^2/(2 theta)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrnsteinUhlenbeck {
    /// Mean-reversion rate `θ` (1/s), positive.
    theta: f64,
    /// Long-run mean `μ`.
    mu: f64,
    /// Noise intensity `σ`.
    sigma: f64,
}

impl OrnsteinUhlenbeck {
    /// Creates the process.
    ///
    /// # Panics
    /// Panics if `theta <= 0` or `sigma < 0`.
    pub fn new(theta: f64, mu: f64, sigma: f64) -> Self {
        assert!(theta > 0.0, "theta must be positive, got {theta}");
        assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        OrnsteinUhlenbeck { theta, mu, sigma }
    }

    /// Builds the OU process of a noisy RC node: conductance `g` (S),
    /// capacitance `c` (F), DC drive current `i_dc` (A) and white-noise
    /// current intensity `i_noise` (A·s^½).
    ///
    /// # Panics
    /// Panics if `g <= 0` or `c <= 0`.
    pub fn from_rc_node(g: f64, c: f64, i_dc: f64, i_noise: f64) -> Self {
        assert!(g > 0.0 && c > 0.0, "g and c must be positive");
        OrnsteinUhlenbeck::new(g / c, i_dc / g, i_noise / c)
    }

    /// Mean-reversion rate `θ`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Long-run mean `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Noise intensity `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Exact mean `E[X(t)] = μ + (x0 - μ)·e^{-θt}`.
    pub fn mean(&self, x0: f64, t: f64) -> f64 {
        self.mu + (x0 - self.mu) * (-self.theta * t).exp()
    }

    /// Exact variance `Var[X(t)] = σ²/(2θ)·(1 - e^{-2θt})`.
    pub fn variance(&self, t: f64) -> f64 {
        self.sigma * self.sigma / (2.0 * self.theta) * (1.0 - (-2.0 * self.theta * t).exp())
    }

    /// Stationary (t → ∞) variance `σ²/(2θ)`.
    pub fn stationary_variance(&self) -> f64 {
        self.sigma * self.sigma / (2.0 * self.theta)
    }

    /// Drift function `f(x) = θ(μ - x)` for use with the EM integrator.
    pub fn drift(&self, x: f64) -> f64 {
        self.theta * (self.mu - x)
    }

    /// One *exact* transition over `dt` given a standard normal draw `xi`:
    /// samples from the true conditional distribution, not a discretization.
    pub fn exact_step(&self, x: f64, dt: f64, xi: f64) -> f64 {
        let decay = (-self.theta * dt).exp();
        let sd = (self.stationary_variance() * (1.0 - decay * decay)).sqrt();
        self.mu + (x - self.mu) * decay + sd * xi
    }

    /// Samples an exact path on a uniform grid.
    pub fn exact_path(&self, x0: f64, horizon: f64, steps: usize, rng: &mut Pcg64) -> Vec<f64> {
        let dt = horizon / steps as f64;
        let mut xs = Vec::with_capacity(steps + 1);
        xs.push(x0);
        let mut x = x0;
        for _ in 0..steps {
            x = self.exact_step(x, dt, rng.next_gaussian());
            xs.push(x);
        }
        xs
    }

    /// Euler–Maruyama solution along a given Wiener path.
    pub fn em_path(&self, x0: f64, path: &WienerPath) -> Vec<f64> {
        euler_maruyama_path(|x, _| self.drift(x), |_, _| self.sigma, x0, path)
    }

    /// High-resolution pathwise reference ("true solution" of Figure 10):
    /// refines the same Wiener path `refinements` times with Brownian
    /// bridges, integrates on the fine grid, and returns the solution
    /// sampled back on the coarse grid.
    pub fn pathwise_reference(
        &self,
        x0: f64,
        path: &WienerPath,
        refinements: u32,
        rng: &mut Pcg64,
    ) -> Vec<f64> {
        let mut fine = path.clone();
        for _ in 0..refinements {
            fine = fine.refine(rng);
        }
        let xs = self.em_path(x0, &fine);
        let stride = 1usize << refinements;
        xs.iter().copied().step_by(stride).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::stats::RunningStats;

    #[test]
    fn moments_closed_form() {
        let ou = OrnsteinUhlenbeck::new(4.0, 1.0, 0.8);
        assert!((ou.mean(3.0, 0.0) - 3.0).abs() < 1e-15);
        assert!((ou.mean(3.0, 1e9) - 1.0).abs() < 1e-12);
        assert!(ou.variance(0.0).abs() < 1e-15);
        assert!((ou.variance(1e9) - ou.stationary_variance()).abs() < 1e-12);
        assert!((ou.stationary_variance() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn from_rc_node_maps_parameters() {
        // g = 1 mS, c = 1 pF -> theta = 1e9 1/s; i_dc = 1 mA -> mu = 1 V.
        let ou = OrnsteinUhlenbeck::from_rc_node(1e-3, 1e-12, 1e-3, 1e-9);
        assert!((ou.theta() - 1e9).abs() < 1.0);
        assert!((ou.mu() - 1.0).abs() < 1e-12);
        assert!((ou.sigma() - 1e3).abs() < 1e-9);
    }

    #[test]
    fn exact_step_statistics() {
        let ou = OrnsteinUhlenbeck::new(2.0, 0.5, 0.6);
        let mut rng = Pcg64::seed_from_u64(1);
        let (x0, dt) = (2.0, 0.3);
        let mut stats = RunningStats::new();
        for _ in 0..40_000 {
            stats.push(ou.exact_step(x0, dt, rng.next_gaussian()));
        }
        let decay = (-2.0f64 * dt).exp();
        let expected_mean = 0.5 + (x0 - 0.5) * decay;
        let expected_var = ou.stationary_variance() * (1.0 - decay * decay);
        assert!((stats.mean() - expected_mean).abs() < 0.01);
        assert!((stats.variance() - expected_var).abs() < 0.005);
    }

    #[test]
    fn em_converges_to_exact_moments() {
        let ou = OrnsteinUhlenbeck::new(3.0, 0.0, 1.0);
        let mut rng = Pcg64::seed_from_u64(2);
        let mut stats = RunningStats::new();
        for _ in 0..3000 {
            let path = WienerPath::generate(1.0, 200, &mut rng);
            stats.push(*ou.em_path(2.0, &path).last().unwrap());
        }
        assert!((stats.mean() - ou.mean(2.0, 1.0)).abs() < 0.03);
        assert!((stats.variance() - ou.variance(1.0)).abs() < 0.02);
    }

    #[test]
    fn pathwise_reference_tracks_em_from_same_path() {
        // The reference and EM share the coarse Wiener path, so they should
        // be pathwise close — much closer than two independent paths.
        let ou = OrnsteinUhlenbeck::new(2.0, 0.0, 0.5);
        let mut rng = Pcg64::seed_from_u64(3);
        let path = WienerPath::generate(1.0, 128, &mut rng);
        let em = ou.em_path(1.0, &path);
        let reference = ou.pathwise_reference(1.0, &path, 3, &mut rng);
        assert_eq!(reference.len(), em.len());
        let max_gap = em
            .iter()
            .zip(reference.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(max_gap < 0.15, "pathwise gap {max_gap}");
        // An independent exact path would typically differ by O(stationary sd).
        let independent = ou.exact_path(1.0, 1.0, 128, &mut rng);
        let indep_gap = em
            .iter()
            .zip(independent.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(indep_gap > max_gap, "{indep_gap} vs {max_gap}");
    }

    #[test]
    fn zero_noise_is_deterministic_decay() {
        let ou = OrnsteinUhlenbeck::new(5.0, 0.0, 0.0);
        let mut rng = Pcg64::seed_from_u64(4);
        let xs = ou.exact_path(1.0, 1.0, 100, &mut rng);
        assert!((xs.last().unwrap() - (-5.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "theta must be positive")]
    fn rejects_nonpositive_theta() {
        OrnsteinUhlenbeck::new(0.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn rejects_negative_sigma() {
        OrnsteinUhlenbeck::new(1.0, 0.0, -1.0);
    }
}
