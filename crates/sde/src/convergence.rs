//! Strong/weak convergence-order measurement for SDE integrators.
//!
//! Validates the Euler–Maruyama implementation against theory (and powers
//! the ablation bench): EM has **strong order 1/2** — the pathwise RMS error
//! at fixed horizon scales as `O(√Δt)` — and **weak order 1** — the error of
//! expectations scales as `O(Δt)`. The measurement follows Higham's SIAM
//! Review experiment (the paper's reference \[13\]): integrate GBM (whose
//! exact pathwise solution is known) on one fine Wiener path, then on
//! coarsened views of the *same* path, and regress log-error on log-dt.

use crate::em::euler_maruyama_path;
use crate::gbm::GeometricBrownianMotion;
use crate::wiener::WienerPath;
use nanosim_numeric::rng::Pcg64;
use nanosim_numeric::stats::RunningStats;

/// One resolution level of a convergence study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergencePoint {
    /// Step size used.
    pub dt: f64,
    /// Measured error at this step size.
    pub error: f64,
}

/// Result of a convergence study: per-resolution errors plus the fitted
/// log-log slope (the empirical order).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceStudy {
    /// Error at each step size, finest first.
    pub points: Vec<ConvergencePoint>,
    /// Least-squares slope of `log(error)` against `log(dt)`.
    pub order: f64,
}

/// Least-squares slope of `log y` on `log x`.
fn loglog_slope(points: &[ConvergencePoint]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for p in points {
        let x = p.dt.ln();
        let y = p.error.max(1e-300).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Measures the **strong** order of Euler–Maruyama on GBM:
/// `E|X_em(T) - X_exact(T)|` at `levels` dyadic coarsenings of a fine path.
///
/// # Panics
/// Panics if `levels == 0` or `samples == 0`.
pub fn em_strong_order(
    gbm: &GeometricBrownianMotion,
    x0: f64,
    horizon: f64,
    fine_steps: usize,
    levels: usize,
    samples: usize,
    rng: &mut Pcg64,
) -> ConvergenceStudy {
    assert!(levels > 0 && samples > 0, "need levels > 0 and samples > 0");
    let mut errs = vec![RunningStats::new(); levels];
    for _ in 0..samples {
        let fine = WienerPath::generate(horizon, fine_steps, rng);
        let exact = *gbm.exact_path(x0, &fine).last().expect("nonempty");
        for (lvl, err) in errs.iter_mut().enumerate() {
            let path = fine.coarsen(1 << lvl);
            let em = euler_maruyama_path(|x, _| gbm.drift(x), |x, _| gbm.diffusion(x), x0, &path);
            err.push((em.last().expect("nonempty") - exact).abs());
        }
    }
    let points: Vec<ConvergencePoint> = errs
        .iter()
        .enumerate()
        .map(|(lvl, s)| ConvergencePoint {
            dt: horizon / (fine_steps >> lvl) as f64,
            error: s.mean(),
        })
        .collect();
    let order = loglog_slope(&points);
    ConvergenceStudy { points, order }
}

/// Measures the **weak** order of Euler–Maruyama on GBM:
/// `|E[X_em(T)] - E[X(T)]|` at `levels` dyadic step sizes with independent
/// paths per level.
///
/// # Panics
/// Panics if `levels == 0` or `samples == 0`.
pub fn em_weak_order(
    gbm: &GeometricBrownianMotion,
    x0: f64,
    horizon: f64,
    fine_steps: usize,
    levels: usize,
    samples: usize,
    rng: &mut Pcg64,
) -> ConvergenceStudy {
    assert!(levels > 0 && samples > 0, "need levels > 0 and samples > 0");
    let exact_mean = gbm.mean(x0, horizon);
    let mut points = Vec::with_capacity(levels);
    for lvl in 0..levels {
        let steps = fine_steps >> lvl;
        let mut stats = RunningStats::new();
        for _ in 0..samples {
            let path = WienerPath::generate(horizon, steps, rng);
            let em = euler_maruyama_path(|x, _| gbm.drift(x), |x, _| gbm.diffusion(x), x0, &path);
            stats.push(*em.last().expect("nonempty"));
        }
        points.push(ConvergencePoint {
            dt: horizon / steps as f64,
            error: (stats.mean() - exact_mean).abs(),
        });
    }
    let order = loglog_slope(&points);
    ConvergenceStudy { points, order }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_order_is_about_half() {
        let gbm = GeometricBrownianMotion::new(2.0, 1.0);
        let mut rng = Pcg64::seed_from_u64(12345);
        let study = em_strong_order(&gbm, 1.0, 1.0, 512, 5, 400, &mut rng);
        assert_eq!(study.points.len(), 5);
        assert!(
            (0.35..=0.75).contains(&study.order),
            "strong order {} (expected ~0.5)",
            study.order
        );
        // Errors grow with dt.
        for w in study.points.windows(2) {
            assert!(w[1].error > w[0].error, "{:?}", study.points);
        }
    }

    #[test]
    fn weak_order_is_about_one() {
        let gbm = GeometricBrownianMotion::new(2.0, 0.1);
        let mut rng = Pcg64::seed_from_u64(777);
        let study = em_weak_order(&gbm, 1.0, 1.0, 256, 4, 40_000, &mut rng);
        assert!(
            (0.6..=1.6).contains(&study.order),
            "weak order {} (expected ~1.0)",
            study.order
        );
    }

    #[test]
    fn loglog_slope_of_power_law_is_exact() {
        let points: Vec<ConvergencePoint> = (1..6)
            .map(|k| {
                let dt = 2f64.powi(-k);
                ConvergencePoint {
                    dt,
                    error: 3.0 * dt.powf(0.5),
                }
            })
            .collect();
        let slope = loglog_slope(&points);
        assert!((slope - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "need levels")]
    fn rejects_zero_levels() {
        let gbm = GeometricBrownianMotion::new(1.0, 1.0);
        let mut rng = Pcg64::seed_from_u64(1);
        em_strong_order(&gbm, 1.0, 1.0, 64, 0, 10, &mut rng);
    }
}
