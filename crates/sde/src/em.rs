//! Euler–Maruyama and Milstein integrators for scalar SDEs.
//!
//! The Euler–Maruyama method (paper eq. 18) applied to
//! `dX = f(X, t)·dt + g(X, t)·dW` reads
//!
//! ```text
//! X_{j+1} = X_j + f(X_j, τ_j)·Δt + g(X_j, τ_j)·(W(τ_{j+1}) - W(τ_j))
//! ```
//!
//! and is the stochastic analogue of forward Euler ("in the deterministic
//! case (B ≡ 0), Equation (19) reduces to Euler's method"). The Milstein
//! scheme adds the `½·g·g'·(ΔW² - Δt)` correction and lifts the strong
//! order from 0.5 to 1.0 — an ablation the benchmark harness measures.

use crate::wiener::WienerPath;

/// Integrates `dX = f(X, t)·dt + g(X, t)·dW` along `path` with the
/// Euler–Maruyama method, returning all `N + 1` states including `x0`.
///
/// # Example
/// ```
/// use nanosim_sde::em::euler_maruyama_path;
/// use nanosim_sde::wiener::WienerPath;
/// // Zero noise reduces EM to forward Euler on dX = -X dt.
/// let path = WienerPath::from_increments(0.01, &[0.0; 100]);
/// let xs = euler_maruyama_path(|x, _| -x, |_, _| 0.0, 1.0, &path);
/// let exact = (-1.0f64).exp();
/// assert!((xs.last().unwrap() - exact).abs() < 0.01);
/// ```
pub fn euler_maruyama_path<F, G>(f: F, g: G, x0: f64, path: &WienerPath) -> Vec<f64>
where
    F: Fn(f64, f64) -> f64,
    G: Fn(f64, f64) -> f64,
{
    let dt = path.dt();
    let mut xs = Vec::with_capacity(path.steps() + 1);
    xs.push(x0);
    let mut x = x0;
    for j in 0..path.steps() {
        let t = j as f64 * dt;
        x += f(x, t) * dt + g(x, t) * path.increment(j);
        xs.push(x);
    }
    xs
}

/// Milstein scheme: EM plus the `½·g·∂g/∂x·(ΔW² - Δt)` correction term
/// (`dg_dx` is the state-derivative of the diffusion coefficient).
pub fn milstein_path<F, G, DG>(f: F, g: G, dg_dx: DG, x0: f64, path: &WienerPath) -> Vec<f64>
where
    F: Fn(f64, f64) -> f64,
    G: Fn(f64, f64) -> f64,
    DG: Fn(f64, f64) -> f64,
{
    let dt = path.dt();
    let mut xs = Vec::with_capacity(path.steps() + 1);
    xs.push(x0);
    let mut x = x0;
    for j in 0..path.steps() {
        let t = j as f64 * dt;
        let dw = path.increment(j);
        let gx = g(x, t);
        x += f(x, t) * dt + gx * dw + 0.5 * gx * dg_dx(x, t) * (dw * dw - dt);
        xs.push(x);
    }
    xs
}

/// One Euler–Maruyama step (exposed for engines that manage their own state
/// vectors).
pub fn em_step<F, G>(f: F, g: G, x: f64, t: f64, dt: f64, dw: f64) -> f64
where
    F: Fn(f64, f64) -> f64,
    G: Fn(f64, f64) -> f64,
{
    x + f(x, t) * dt + g(x, t) * dw
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::rng::Pcg64;
    use nanosim_numeric::stats::RunningStats;

    #[test]
    fn zero_noise_matches_forward_euler() {
        let path = WienerPath::from_increments(0.001, &[0.0; 1000]);
        let xs = euler_maruyama_path(|x, _| -2.0 * x, |_, _| 0.0, 3.0, &path);
        let exact = 3.0 * (-2.0f64).exp();
        assert!((xs.last().unwrap() - exact).abs() < 0.01);
        assert_eq!(xs.len(), 1001);
        assert_eq!(xs[0], 3.0);
    }

    #[test]
    fn additive_noise_integrates_the_path() {
        // dX = sigma dW with f = 0: X(T) = x0 + sigma W(T) exactly.
        let mut rng = Pcg64::seed_from_u64(1);
        let path = WienerPath::generate(1.0, 128, &mut rng);
        let xs = euler_maruyama_path(|_, _| 0.0, |_, _| 0.7, 0.5, &path);
        let expected = 0.5 + 0.7 * path.values().last().unwrap();
        assert!((xs.last().unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn em_step_is_one_iteration_of_path() {
        let mut rng = Pcg64::seed_from_u64(2);
        let path = WienerPath::generate(1.0, 4, &mut rng);
        let f = |x: f64, _t: f64| -x;
        let g = |x: f64, _t: f64| 0.1 * x;
        let xs = euler_maruyama_path(f, g, 1.0, &path);
        let manual = em_step(f, g, 1.0, 0.0, path.dt(), path.increment(0));
        assert!((xs[1] - manual).abs() < 1e-15);
    }

    #[test]
    fn gbm_mean_matches_exponential_growth() {
        // dX = mu X dt + sigma X dW: E[X(T)] = x0 e^{mu T}.
        let mut rng = Pcg64::seed_from_u64(3);
        let (mu, sigma, x0, horizon) = (0.5, 0.3, 1.0, 1.0);
        let mut stats = RunningStats::new();
        for _ in 0..4000 {
            let path = WienerPath::generate(horizon, 64, &mut rng);
            let xs = euler_maruyama_path(|x, _| mu * x, |x, _| sigma * x, x0, &path);
            stats.push(*xs.last().unwrap());
        }
        let expected = x0 * (mu * horizon as f64).exp();
        assert!(
            (stats.mean() - expected).abs() < 0.05 * expected,
            "mean {} vs {}",
            stats.mean(),
            expected
        );
    }

    #[test]
    fn milstein_beats_em_pathwise_on_gbm() {
        // Strong error against the exact GBM solution on the same path:
        // Milstein (order 1.0) must beat EM (order 0.5) at fixed dt.
        let mut rng = Pcg64::seed_from_u64(4);
        let (mu, sigma, x0) = (0.2, 0.8, 1.0);
        let mut em_err = RunningStats::new();
        let mut mil_err = RunningStats::new();
        for _ in 0..400 {
            let path = WienerPath::generate(1.0, 64, &mut rng);
            let wt = *path.values().last().unwrap();
            let exact = x0 * ((mu - 0.5 * sigma * sigma) * 1.0 + sigma * wt).exp();
            let em = euler_maruyama_path(|x, _| mu * x, |x, _| sigma * x, x0, &path);
            let mil = milstein_path(|x, _| mu * x, |x, _| sigma * x, |_, _| sigma, x0, &path);
            em_err.push((em.last().unwrap() - exact).abs());
            mil_err.push((mil.last().unwrap() - exact).abs());
        }
        assert!(
            mil_err.mean() < 0.5 * em_err.mean(),
            "milstein {} vs em {}",
            mil_err.mean(),
            em_err.mean()
        );
    }

    #[test]
    fn milstein_reduces_to_em_for_additive_noise() {
        let mut rng = Pcg64::seed_from_u64(5);
        let path = WienerPath::generate(1.0, 32, &mut rng);
        let em = euler_maruyama_path(|x, _| -x, |_, _| 0.4, 1.0, &path);
        let mil = milstein_path(|x, _| -x, |_, _| 0.4, |_, _| 0.0, 1.0, &path);
        for (a, b) in em.iter().zip(mil.iter()) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn time_dependent_drift_is_honored() {
        // dX = t dt (no noise): X(T) = T^2/2.
        let path = WienerPath::from_increments(0.001, &[0.0; 1000]);
        let xs = euler_maruyama_path(|_, t| t, |_, _| 0.0, 0.0, &path);
        assert!((xs.last().unwrap() - 0.5).abs() < 1e-3);
    }
}
