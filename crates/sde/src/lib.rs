//! Stochastic differential equation substrate for Nano-Sim.
//!
//! Section 4 of the paper models uncertain nanocircuit inputs as white noise
//! — formally, increments of a **Wiener process** — and integrates the
//! resulting stochastic state equation with the **Euler–Maruyama** method.
//! This crate provides that machinery independent of any circuit:
//!
//! * [`wiener`] — discretized Wiener paths `W(t)` with the three defining
//!   properties of paper §4.1 (zero start, `N(0, t-s)` increments,
//!   independence), plus Brownian-bridge refinement.
//! * [`ito`] — the Ito vs Stratonovich sum comparison of paper eq. (15)/(16):
//!   the two discretizations of `∫W dW` converge to *different* answers,
//!   which is why the integration rule must be fixed before predicting
//!   transients.
//! * [`em`] — generic Euler–Maruyama and Milstein integrators for
//!   `dX = f(X, t)·dt + g(X, t)·dW`.
//! * [`ou`] — the Ornstein–Uhlenbeck process (an RC node driven by white
//!   noise *is* an OU process): exact moments and an exact pathwise solution
//!   used as the "true solution" of the paper's Figure 10.
//! * [`gbm`] — geometric Brownian motion and the Black–Scholes closed form,
//!   the analogy the paper invokes for peak prediction ("a close analogy to
//!   this problem is the stock price prediction").
//! * [`peak`] — running-maximum ("peak performance") prediction inside a
//!   time window via the reflection principle and Monte-Carlo estimates.
//! * [`convergence`] — strong/weak order measurement used to validate the
//!   EM implementation (strong 0.5, weak 1.0).
//!
//! # Example
//!
//! ```
//! use nanosim_sde::wiener::WienerPath;
//! use nanosim_sde::em::euler_maruyama_path;
//! use nanosim_numeric::rng::Pcg64;
//!
//! let mut rng = Pcg64::seed_from_u64(7);
//! let path = WienerPath::generate(1.0, 256, &mut rng);
//! // dX = -X dt + 0.3 dW from X(0) = 1: a noisy RC discharge.
//! let xs = euler_maruyama_path(|x, _t| -x, |_x, _t| 0.3, 1.0, &path);
//! assert_eq!(xs.len(), 257);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod convergence;
pub mod em;
pub mod gbm;
pub mod ito;
pub mod ou;
pub mod peak;
pub mod wiener;

pub use em::{euler_maruyama_path, milstein_path};
pub use ou::OrnsteinUhlenbeck;
pub use wiener::WienerPath;
