//! Ito versus Stratonovich stochastic integration (paper eq. 15/16).
//!
//! The paper stresses that the two Riemann-style discretizations of
//! `∫ h(t) dW(t)` — left-endpoint (Ito, eq. 15) and midpoint (Stratonovich,
//! eq. 16) — "give markedly different answers. Even with Δt → 0, the
//! mismatch of the two equations does not go away." For `h = W` the closed
//! forms are
//!
//! ```text
//! Ito:          ∫₀ᵀ W dW = (W(T)² - T) / 2
//! Stratonovich: ∫₀ᵀ W dW =  W(T)² / 2
//! ```
//!
//! so the expected Ito integral is 0 while the expected Stratonovich
//! integral is T/2 — a difference of exactly `T/2` that survives any
//! refinement. Nano-Sim (like the paper) fixes the Ito convention, which is
//! what the Euler–Maruyama method discretizes.

use crate::wiener::WienerPath;

/// Left-endpoint (Ito) sum `Σ h(t_j)·(W(t_{j+1}) - W(t_j))` (paper eq. 15).
pub fn ito_integral<F: Fn(f64) -> f64>(h: F, path: &WienerPath) -> f64 {
    let dt = path.dt();
    (0..path.steps())
        .map(|j| h(j as f64 * dt) * path.increment(j))
        .sum()
}

/// Midpoint (Stratonovich) sum `Σ h((t_j + t_{j+1})/2)·ΔW_j` (paper eq. 16).
pub fn stratonovich_integral<F: Fn(f64) -> f64>(h: F, path: &WienerPath) -> f64 {
    let dt = path.dt();
    (0..path.steps())
        .map(|j| h((j as f64 + 0.5) * dt) * path.increment(j))
        .sum()
}

/// Ito sum of `∫ W dW` (integrand evaluated at the left endpoint).
pub fn ito_w_dw(path: &WienerPath) -> f64 {
    (0..path.steps())
        .map(|j| path.at(j) * path.increment(j))
        .sum()
}

/// Stratonovich sum of `∫ W dW` (integrand at the midpoint, approximated by
/// the average of the endpoints, which is the standard definition).
pub fn stratonovich_w_dw(path: &WienerPath) -> f64 {
    (0..path.steps())
        .map(|j| 0.5 * (path.at(j) + path.at(j + 1)) * path.increment(j))
        .sum()
}

/// Closed-form Ito value `(W(T)² - T)/2` for comparison.
pub fn ito_w_dw_exact(path: &WienerPath) -> f64 {
    let wt = *path.values().last().expect("nonempty path");
    0.5 * (wt * wt - path.horizon())
}

/// Closed-form Stratonovich value `W(T)²/2` for comparison.
pub fn stratonovich_w_dw_exact(path: &WienerPath) -> f64 {
    let wt = *path.values().last().expect("nonempty path");
    0.5 * wt * wt
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::rng::Pcg64;
    use nanosim_numeric::stats::RunningStats;

    #[test]
    fn stratonovich_w_dw_is_exact_telescoping() {
        // The midpoint rule on W dW telescopes to W(T)^2/2 *exactly*.
        let mut rng = Pcg64::seed_from_u64(1);
        let p = WienerPath::generate(1.0, 512, &mut rng);
        let s = stratonovich_w_dw(&p);
        assert!((s - stratonovich_w_dw_exact(&p)).abs() < 1e-12);
    }

    #[test]
    fn ito_w_dw_converges_to_closed_form() {
        let mut rng = Pcg64::seed_from_u64(2);
        // Average the discretization error over paths at two resolutions:
        // it shrinks with dt (order 1 in the mean-square sense here).
        let mut err_coarse = RunningStats::new();
        let mut err_fine = RunningStats::new();
        for _ in 0..300 {
            let fine = WienerPath::generate(1.0, 1024, &mut rng);
            let coarse = fine.coarsen(16);
            err_fine.push((ito_w_dw(&fine) - ito_w_dw_exact(&fine)).powi(2));
            err_coarse.push((ito_w_dw(&coarse) - ito_w_dw_exact(&coarse)).powi(2));
        }
        assert!(
            err_fine.mean() < err_coarse.mean() / 4.0,
            "fine {} vs coarse {}",
            err_fine.mean(),
            err_coarse.mean()
        );
    }

    #[test]
    fn the_mismatch_does_not_go_away() {
        // Paper: "Even with Δt -> 0, the mismatch of the two equations does
        // not go away" — the gap is T/2 on average.
        let mut rng = Pcg64::seed_from_u64(3);
        let horizon = 2.0;
        let mut gap = RunningStats::new();
        for _ in 0..2000 {
            let p = WienerPath::generate(horizon, 256, &mut rng);
            gap.push(stratonovich_w_dw(&p) - ito_w_dw(&p));
        }
        assert!(
            (gap.mean() - horizon / 2.0).abs() < 0.05,
            "mean gap {} vs T/2 = {}",
            gap.mean(),
            horizon / 2.0
        );
    }

    #[test]
    fn expected_ito_is_zero_expected_stratonovich_is_half_t() {
        let mut rng = Pcg64::seed_from_u64(4);
        let mut ito = RunningStats::new();
        let mut strat = RunningStats::new();
        for _ in 0..4000 {
            let p = WienerPath::generate(1.0, 64, &mut rng);
            ito.push(ito_w_dw(&p));
            strat.push(stratonovich_w_dw(&p));
        }
        assert!(ito.mean().abs() < 0.05, "E[Ito] = {}", ito.mean());
        assert!(
            (strat.mean() - 0.5).abs() < 0.05,
            "E[Strat] = {}",
            strat.mean()
        );
    }

    #[test]
    fn deterministic_integrand_agrees_for_both_rules() {
        // For deterministic smooth h the two rules converge to the same
        // value (the paper's opening observation about ordinary integrals).
        let mut rng = Pcg64::seed_from_u64(5);
        let p = WienerPath::generate(1.0, 4096, &mut rng);
        let h = |t: f64| (3.0 * t).sin();
        let i = ito_integral(h, &p);
        let s = stratonovich_integral(h, &p);
        assert!((i - s).abs() < 0.05, "ito {i} vs strat {s}");
    }

    #[test]
    fn constant_integrand_gives_scaled_terminal_value() {
        let mut rng = Pcg64::seed_from_u64(6);
        let p = WienerPath::generate(1.0, 128, &mut rng);
        let i = ito_integral(|_| 2.0, &p);
        assert!((i - 2.0 * p.values().last().unwrap()).abs() < 1e-12);
    }
}
