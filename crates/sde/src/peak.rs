//! Peak ("performance") prediction within a time window.
//!
//! Paper §4.2 and §5.3: the transient value matters, not only the average —
//! "if the transient voltage drop at a certain time point exceeds certain
//! constraints, the whole design is still going to fail". The quantity to
//! predict is the *running maximum* of the stochastic response inside a
//! window. For driftless Brownian motion the reflection principle gives a
//! closed form; for general processes Monte-Carlo estimation over exact or
//! EM paths is used (this is what the paper's Figure 10 peak callout does).

use crate::gbm::normal_cdf;
use crate::ou::OrnsteinUhlenbeck;
use nanosim_numeric::rng::Pcg64;
use nanosim_numeric::stats::{percentile, RunningStats};

/// `P( max_{0<=s<=T} [μ·s + σ·W(s)] >= level )` for drifted Brownian motion,
/// by the reflection principle:
///
/// ```text
/// P = Φ((μT - a)/(σ√T)) + e^{2μa/σ²}·Φ((-μT - a)/(σ√T))
/// ```
///
/// For `μ = 0` this reduces to the textbook `2·Φ(-a/(σ√T))`.
///
/// # Panics
/// Panics if `sigma <= 0`, `horizon <= 0` or `level < 0`.
pub fn brownian_peak_probability(mu: f64, sigma: f64, horizon: f64, level: f64) -> f64 {
    assert!(sigma > 0.0, "sigma must be positive");
    assert!(horizon > 0.0, "horizon must be positive");
    assert!(level >= 0.0, "level must be non-negative");
    if level == 0.0 {
        return 1.0;
    }
    let sq = sigma * horizon.sqrt();
    let p = normal_cdf((mu * horizon - level) / sq)
        + (2.0 * mu * level / (sigma * sigma)).exp() * normal_cdf((-mu * horizon - level) / sq);
    p.clamp(0.0, 1.0)
}

/// Expected running maximum of driftless Brownian motion:
/// `E[max] = σ·sqrt(2T/π)`.
pub fn brownian_expected_peak(sigma: f64, horizon: f64) -> f64 {
    sigma * (2.0 * horizon / std::f64::consts::PI).sqrt()
}

/// Monte-Carlo estimate of the peak distribution of an arbitrary
/// path-producing process.
#[derive(Debug, Clone)]
pub struct PeakEstimate {
    /// Mean of the per-path running maxima.
    pub mean_peak: f64,
    /// Standard error of `mean_peak`.
    pub std_error: f64,
    /// 95th percentile of the running maxima.
    pub p95: f64,
    /// Fraction of paths whose maximum reached `level` (when a level was
    /// given).
    pub exceedance: Option<f64>,
    /// Number of simulated paths.
    pub paths: usize,
}

/// Estimates the running-maximum statistics of a process by Monte Carlo.
///
/// `sample_path` is called once per replication and must return the sampled
/// path; the running maximum of each path is accumulated. `level` optionally
/// requests an exceedance probability.
///
/// # Panics
/// Panics if `paths == 0` or a sampled path is empty.
pub fn monte_carlo_peak<F>(mut sample_path: F, paths: usize, level: Option<f64>) -> PeakEstimate
where
    F: FnMut() -> Vec<f64>,
{
    assert!(paths > 0, "need at least one path");
    let mut stats = RunningStats::new();
    let mut maxima = Vec::with_capacity(paths);
    let mut hits = 0usize;
    for _ in 0..paths {
        let xs = sample_path();
        assert!(!xs.is_empty(), "sampled path is empty");
        let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        stats.push(m);
        maxima.push(m);
        if let Some(a) = level {
            if m >= a {
                hits += 1;
            }
        }
    }
    PeakEstimate {
        mean_peak: stats.mean(),
        std_error: stats.std_error(),
        p95: percentile(&maxima, 0.95).expect("nonempty maxima"),
        exceedance: level.map(|_| hits as f64 / paths as f64),
        paths,
    }
}

/// Peak estimate for an OU process via exact-transition sampling — the
/// workhorse behind the Figure 10 "possible performance peak" annotation.
pub fn ou_peak(
    ou: &OrnsteinUhlenbeck,
    x0: f64,
    horizon: f64,
    steps: usize,
    paths: usize,
    level: Option<f64>,
    rng: &mut Pcg64,
) -> PeakEstimate {
    monte_carlo_peak(|| ou.exact_path(x0, horizon, steps, rng), paths, level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wiener::WienerPath;

    #[test]
    fn reflection_principle_driftless() {
        // P(max >= a) = 2 Phi(-a / (sigma sqrt(T))).
        let p = brownian_peak_probability(0.0, 1.0, 1.0, 1.0);
        let expected = 2.0 * normal_cdf(-1.0);
        assert!((p - expected).abs() < 1e-9, "{p} vs {expected}");
    }

    #[test]
    fn peak_probability_monotone_in_level() {
        let p1 = brownian_peak_probability(0.0, 1.0, 1.0, 0.5);
        let p2 = brownian_peak_probability(0.0, 1.0, 1.0, 1.5);
        assert!(p1 > p2);
        assert_eq!(brownian_peak_probability(0.0, 1.0, 1.0, 0.0), 1.0);
    }

    #[test]
    fn positive_drift_raises_peak_probability() {
        let p0 = brownian_peak_probability(0.0, 1.0, 1.0, 1.0);
        let pp = brownian_peak_probability(0.5, 1.0, 1.0, 1.0);
        let pm = brownian_peak_probability(-0.5, 1.0, 1.0, 1.0);
        assert!(pp > p0 && p0 > pm);
    }

    #[test]
    fn reflection_matches_monte_carlo() {
        let (mu, sigma, horizon, level) = (0.3, 0.8, 1.0, 1.0);
        let mut rng = Pcg64::seed_from_u64(1);
        let est = monte_carlo_peak(
            || {
                let p = WienerPath::generate(horizon, 256, &mut rng);
                let dt = p.dt();
                p.values()
                    .iter()
                    .enumerate()
                    .map(|(j, &w)| mu * (j as f64 * dt) + sigma * w)
                    .collect()
            },
            8000,
            Some(level),
        );
        let analytic = brownian_peak_probability(mu, sigma, horizon, level);
        let mc = est.exceedance.unwrap();
        // Discretization misses excursions between grid points, so the MC
        // estimate is biased slightly low; allow a one-sided band.
        assert!(
            (mc - analytic).abs() < 0.05,
            "mc {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn expected_peak_matches_monte_carlo() {
        let sigma = 0.7;
        let mut rng = Pcg64::seed_from_u64(2);
        let est = monte_carlo_peak(
            || {
                let p = WienerPath::generate(1.0, 512, &mut rng);
                p.values().iter().map(|&w| sigma * w).collect()
            },
            4000,
            None,
        );
        let analytic = brownian_expected_peak(sigma, 1.0);
        assert!(
            (est.mean_peak - analytic).abs() < 0.05,
            "mc {} vs analytic {analytic}",
            est.mean_peak
        );
        assert!(est.exceedance.is_none());
        assert!(est.p95 > est.mean_peak);
        assert_eq!(est.paths, 4000);
    }

    #[test]
    fn ou_peak_bounded_by_mean_plus_sd() {
        // The OU running max over a short window sits between the initial
        // value and a few stationary standard deviations above the mean.
        let ou = OrnsteinUhlenbeck::new(5.0, 0.5, 0.4);
        let mut rng = Pcg64::seed_from_u64(3);
        let est = ou_peak(&ou, 0.5, 1.0, 200, 2000, Some(0.8), &mut rng);
        let sd = ou.stationary_variance().sqrt();
        assert!(est.mean_peak > 0.5);
        assert!(est.mean_peak < 0.5 + 5.0 * sd, "peak {}", est.mean_peak);
        let p = est.exceedance.unwrap();
        assert!(p > 0.0 && p < 1.0, "exceedance {p}");
    }

    #[test]
    fn std_error_shrinks_with_paths() {
        let ou = OrnsteinUhlenbeck::new(5.0, 0.0, 0.4);
        let mut rng = Pcg64::seed_from_u64(4);
        let small = ou_peak(&ou, 0.0, 1.0, 50, 200, None, &mut rng);
        let large = ou_peak(&ou, 0.0, 1.0, 50, 5000, None, &mut rng);
        assert!(large.std_error < small.std_error);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn rejects_bad_sigma() {
        brownian_peak_probability(0.0, 0.0, 1.0, 1.0);
    }
}
