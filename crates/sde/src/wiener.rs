//! Discretized Wiener processes (standard Brownian motion).
//!
//! Paper §4.1 defines the standard Wiener process over `[0, T]` by three
//! conditions: `W(0) = 0`, increments `W(t) - W(s) ~ sqrt(t-s)·N(0, 1)`, and
//! independence of non-overlapping increments. For computation the paper
//! discretizes `W` at `t_j = j·dt`, `dt = T/N` — exactly what
//! [`WienerPath::generate`] produces.

use nanosim_numeric::rng::Pcg64;

/// A Wiener path sampled on a uniform grid over `[0, T]`.
///
/// Stores `N + 1` values `W(t_0) .. W(t_N)` with `W(0) = 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct WienerPath {
    dt: f64,
    values: Vec<f64>,
}

impl WienerPath {
    /// Generates a fresh path over `[0, horizon]` with `steps` increments.
    ///
    /// # Panics
    /// Panics if `horizon <= 0` or `steps == 0`.
    pub fn generate(horizon: f64, steps: usize, rng: &mut Pcg64) -> Self {
        assert!(horizon > 0.0, "horizon must be positive, got {horizon}");
        assert!(steps > 0, "need at least one step");
        let dt = horizon / steps as f64;
        let sqrt_dt = dt.sqrt();
        let mut values = Vec::with_capacity(steps + 1);
        values.push(0.0);
        let mut w = 0.0;
        for _ in 0..steps {
            w += sqrt_dt * rng.next_gaussian();
            values.push(w);
        }
        WienerPath { dt, values }
    }

    /// Builds a path from explicit increments `dW_j` (used by tests and by
    /// the convergence harness to reuse one path at several resolutions).
    ///
    /// # Panics
    /// Panics if `dt <= 0` or `increments` is empty.
    pub fn from_increments(dt: f64, increments: &[f64]) -> Self {
        assert!(dt > 0.0, "dt must be positive");
        assert!(!increments.is_empty(), "need at least one increment");
        let mut values = Vec::with_capacity(increments.len() + 1);
        values.push(0.0);
        let mut w = 0.0;
        for dw in increments {
            w += dw;
            values.push(w);
        }
        WienerPath { dt, values }
    }

    /// Grid spacing `dt`.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of increments `N`.
    pub fn steps(&self) -> usize {
        self.values.len() - 1
    }

    /// Time horizon `T = N·dt`.
    pub fn horizon(&self) -> f64 {
        self.dt * self.steps() as f64
    }

    /// The sampled values `W(t_0) .. W(t_N)`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `W(t_j)`.
    ///
    /// # Panics
    /// Panics if `j` exceeds the number of samples.
    pub fn at(&self, j: usize) -> f64 {
        self.values[j]
    }

    /// Increment `dW_j = W(t_{j+1}) - W(t_j)`.
    ///
    /// # Panics
    /// Panics if `j >= self.steps()`.
    pub fn increment(&self, j: usize) -> f64 {
        self.values[j + 1] - self.values[j]
    }

    /// Iterates over the increments.
    pub fn increments(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.windows(2).map(|w| w[1] - w[0])
    }

    /// Coarsens the path by keeping every `factor`-th sample — the standard
    /// trick for strong-convergence studies: the same Brownian path seen at
    /// a coarser resolution.
    ///
    /// # Panics
    /// Panics if `factor == 0` or does not divide the step count.
    pub fn coarsen(&self, factor: usize) -> WienerPath {
        assert!(factor > 0, "factor must be positive");
        assert_eq!(
            self.steps() % factor,
            0,
            "factor {factor} must divide {} steps",
            self.steps()
        );
        let values: Vec<f64> = self.values.iter().step_by(factor).copied().collect();
        WienerPath {
            dt: self.dt * factor as f64,
            values,
        }
    }

    /// Refines the path by a Brownian bridge: inserts one midpoint between
    /// every pair of samples, conditionally sampled given the endpoints.
    pub fn refine(&self, rng: &mut Pcg64) -> WienerPath {
        let new_dt = self.dt / 2.0;
        let half_sd = (self.dt / 4.0).sqrt();
        let mut values = Vec::with_capacity(self.values.len() * 2 - 1);
        for j in 0..self.steps() {
            let a = self.values[j];
            let b = self.values[j + 1];
            values.push(a);
            // Bridge midpoint: mean (a+b)/2, variance dt/4.
            values.push(0.5 * (a + b) + half_sd * rng.next_gaussian());
        }
        values.push(*self.values.last().expect("nonempty"));
        WienerPath { dt: new_dt, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::stats::RunningStats;

    #[test]
    fn starts_at_zero_with_right_shape() {
        let mut rng = Pcg64::seed_from_u64(1);
        let p = WienerPath::generate(2.0, 100, &mut rng);
        assert_eq!(p.at(0), 0.0);
        assert_eq!(p.steps(), 100);
        assert_eq!(p.values().len(), 101);
        assert!((p.dt() - 0.02).abs() < 1e-15);
        assert!((p.horizon() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn increment_statistics_match_sqrt_dt_normal() {
        // Paper §4.1 condition 2: W(t)-W(s) ~ N(0, t-s).
        let mut rng = Pcg64::seed_from_u64(2);
        let mut stats = RunningStats::new();
        for _ in 0..200 {
            let p = WienerPath::generate(1.0, 100, &mut rng);
            stats.extend(p.increments());
        }
        // 20k samples of sd 0.1 have standard error ~7e-4.
        assert!(stats.mean().abs() < 3e-3, "mean {}", stats.mean());
        let dt = 0.01;
        assert!(
            (stats.variance() - dt).abs() < dt * 0.05,
            "variance {} vs dt {dt}",
            stats.variance()
        );
    }

    #[test]
    fn terminal_value_variance_is_horizon() {
        let mut rng = Pcg64::seed_from_u64(3);
        let mut stats = RunningStats::new();
        for _ in 0..4000 {
            let p = WienerPath::generate(2.0, 32, &mut rng);
            stats.push(*p.values().last().unwrap());
        }
        assert!(stats.mean().abs() < 0.1);
        assert!(
            (stats.variance() - 2.0).abs() < 0.15,
            "{}",
            stats.variance()
        );
    }

    #[test]
    fn nonoverlapping_increments_uncorrelated() {
        // Paper §4.1 condition 3 (independence -> zero correlation).
        let mut rng = Pcg64::seed_from_u64(4);
        let mut sum_xy = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let p = WienerPath::generate(1.0, 2, &mut rng);
            sum_xy += p.increment(0) * p.increment(1);
        }
        let corr = sum_xy / n as f64 / 0.5; // each increment has var 0.5
        assert!(corr.abs() < 0.05, "correlation {corr}");
    }

    #[test]
    fn from_increments_round_trip() {
        let p = WienerPath::from_increments(0.5, &[1.0, -0.5, 0.25]);
        assert_eq!(p.values(), &[0.0, 1.0, 0.5, 0.75]);
        assert_eq!(p.increment(2), 0.25);
        let collected: Vec<f64> = p.increments().collect();
        assert_eq!(collected.len(), 3);
        assert!((collected[1] + 0.5).abs() < 1e-15);
    }

    #[test]
    fn coarsen_preserves_samples_and_horizon() {
        let mut rng = Pcg64::seed_from_u64(5);
        let p = WienerPath::generate(1.0, 64, &mut rng);
        let c = p.coarsen(4);
        assert_eq!(c.steps(), 16);
        assert!((c.horizon() - 1.0).abs() < 1e-12);
        assert_eq!(c.at(1), p.at(4));
        assert_eq!(c.at(16), p.at(64));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn coarsen_rejects_bad_factor() {
        let mut rng = Pcg64::seed_from_u64(6);
        WienerPath::generate(1.0, 10, &mut rng).coarsen(3);
    }

    #[test]
    fn refine_keeps_original_points() {
        let mut rng = Pcg64::seed_from_u64(7);
        let p = WienerPath::generate(1.0, 8, &mut rng);
        let r = p.refine(&mut rng);
        assert_eq!(r.steps(), 16);
        assert!((r.dt() - p.dt() / 2.0).abs() < 1e-18);
        for j in 0..=8 {
            assert_eq!(r.at(2 * j), p.at(j), "original samples preserved");
        }
    }

    #[test]
    fn refine_statistics_are_brownian() {
        // Midpoints of a bridge over [0, dt] have variance dt/4 around the
        // endpoint mean.
        let mut rng = Pcg64::seed_from_u64(8);
        let mut stats = RunningStats::new();
        for _ in 0..5000 {
            let p = WienerPath::generate(1.0, 1, &mut rng);
            let r = p.refine(&mut rng);
            let mid_dev = r.at(1) - 0.5 * (p.at(0) + p.at(1));
            stats.push(mid_dev);
        }
        assert!(stats.mean().abs() < 0.02);
        assert!(
            (stats.variance() - 0.25).abs() < 0.02,
            "{}",
            stats.variance()
        );
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn generate_rejects_bad_horizon() {
        let mut rng = Pcg64::seed_from_u64(9);
        WienerPath::generate(0.0, 10, &mut rng);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Pcg64::seed_from_u64(42);
        let mut b = Pcg64::seed_from_u64(42);
        assert_eq!(
            WienerPath::generate(1.0, 16, &mut a),
            WienerPath::generate(1.0, 16, &mut b)
        );
    }
}
