//! Geometric Brownian motion and the Black–Scholes closed form.
//!
//! Paper §4.2: "Following the Black-Scholes approach \[13\]\[14\], we can
//! predict the peak performance within certain time window. A close analogy
//! to this problem is the stock price prediction." GBM is also the standard
//! test process for Euler–Maruyama convergence studies (Higham, the paper's
//! reference \[13\]) because its pathwise solution is known in closed form.

use crate::wiener::WienerPath;

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation of `erf`
/// (absolute error < 1.5e-7), accurate enough for probability reporting.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz–Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// A geometric Brownian motion `dX = μ·X·dt + σ·X·dW`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricBrownianMotion {
    /// Drift rate `μ`.
    mu: f64,
    /// Volatility `σ`, non-negative.
    sigma: f64,
}

impl GeometricBrownianMotion {
    /// Creates the process.
    ///
    /// # Panics
    /// Panics if `sigma < 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
        GeometricBrownianMotion { mu, sigma }
    }

    /// Drift rate `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Volatility `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Exact pathwise solution `X(t) = x0·exp((μ - σ²/2)·t + σ·W(t))`
    /// evaluated on every grid point of `path`.
    pub fn exact_path(&self, x0: f64, path: &WienerPath) -> Vec<f64> {
        let dt = path.dt();
        path.values()
            .iter()
            .enumerate()
            .map(|(j, &w)| {
                let t = j as f64 * dt;
                x0 * ((self.mu - 0.5 * self.sigma * self.sigma) * t + self.sigma * w).exp()
            })
            .collect()
    }

    /// Exact terminal mean `E[X(T)] = x0·e^{μT}`.
    pub fn mean(&self, x0: f64, t: f64) -> f64 {
        x0 * (self.mu * t).exp()
    }

    /// Exact terminal variance `x0²·e^{2μT}·(e^{σ²T} - 1)`.
    pub fn variance(&self, x0: f64, t: f64) -> f64 {
        let m = self.mean(x0, t);
        m * m * ((self.sigma * self.sigma * t).exp() - 1.0)
    }

    /// Drift function for the EM integrator.
    pub fn drift(&self, x: f64) -> f64 {
        self.mu * x
    }

    /// Diffusion function for the EM integrator.
    pub fn diffusion(&self, x: f64) -> f64 {
        self.sigma * x
    }
}

/// Black–Scholes price of a European call with spot `s`, strike `k`,
/// risk-free rate `r`, volatility `sigma` and maturity `t` — the paper's
/// "stock price prediction" analogy in closed form.
///
/// # Panics
/// Panics if `s <= 0`, `k <= 0`, `sigma < 0` or `t < 0`.
pub fn black_scholes_call(s: f64, k: f64, r: f64, sigma: f64, t: f64) -> f64 {
    assert!(s > 0.0 && k > 0.0, "spot and strike must be positive");
    assert!(sigma >= 0.0 && t >= 0.0, "sigma and t must be non-negative");
    if t == 0.0 || sigma == 0.0 {
        // Deterministic limit.
        return (s - k * (-r * t).exp()).max(0.0);
    }
    let sqrt_t = t.sqrt();
    let d1 = ((s / k).ln() + (r + 0.5 * sigma * sigma) * t) / (sigma * sqrt_t);
    let d2 = d1 - sigma * sqrt_t;
    s * normal_cdf(d1) - k * (-r * t).exp() * normal_cdf(d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::rng::Pcg64;
    use nanosim_numeric::stats::RunningStats;

    #[test]
    fn erf_reference_values() {
        // Known values to the approximation's documented accuracy (1.5e-7).
        assert!((erf(0.0)).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_27).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 2e-7);
        assert!((erf(5.0) - 1.0).abs() < 2e-7);
    }

    #[test]
    fn normal_cdf_symmetry_and_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        for x in [-2.0, -0.5, 0.7, 1.3] {
            // erf is odd by construction, so the symmetry is near-exact.
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_path_matches_moments() {
        let gbm = GeometricBrownianMotion::new(0.3, 0.4);
        let mut rng = Pcg64::seed_from_u64(1);
        let mut stats = RunningStats::new();
        for _ in 0..5000 {
            let p = WienerPath::generate(1.0, 16, &mut rng);
            stats.push(*gbm.exact_path(1.0, &p).last().unwrap());
        }
        assert!(
            (stats.mean() - gbm.mean(1.0, 1.0)).abs() < 0.05,
            "mean {} vs {}",
            stats.mean(),
            gbm.mean(1.0, 1.0)
        );
        assert!(
            (stats.variance() - gbm.variance(1.0, 1.0)).abs() < 0.1,
            "var {} vs {}",
            stats.variance(),
            gbm.variance(1.0, 1.0)
        );
    }

    #[test]
    fn exact_path_is_positive_and_starts_at_x0() {
        let gbm = GeometricBrownianMotion::new(-0.5, 1.0);
        let mut rng = Pcg64::seed_from_u64(2);
        let p = WienerPath::generate(1.0, 64, &mut rng);
        let xs = gbm.exact_path(2.0, &p);
        assert_eq!(xs[0], 2.0);
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn black_scholes_known_value() {
        // Classic textbook case: S=100, K=100, r=5%, sigma=20%, T=1 -> 10.4506.
        let c = black_scholes_call(100.0, 100.0, 0.05, 0.2, 1.0);
        assert!((c - 10.4506).abs() < 0.01, "price {c}");
    }

    #[test]
    fn black_scholes_degenerate_limits() {
        // Zero volatility: discounted intrinsic value.
        let c = black_scholes_call(100.0, 90.0, 0.0, 0.0, 1.0);
        assert!((c - 10.0).abs() < 1e-9);
        // Zero maturity: intrinsic value.
        let c = black_scholes_call(80.0, 100.0, 0.05, 0.2, 0.0);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn black_scholes_monotone_in_spot() {
        let c1 = black_scholes_call(90.0, 100.0, 0.02, 0.3, 1.0);
        let c2 = black_scholes_call(110.0, 100.0, 0.02, 0.3, 1.0);
        assert!(c2 > c1);
    }

    #[test]
    fn black_scholes_matches_monte_carlo() {
        // Risk-neutral GBM Monte Carlo reproduces the closed form.
        let (s, k, r, sigma, t) = (100.0, 105.0, 0.03, 0.25, 0.5);
        let gbm = GeometricBrownianMotion::new(r, sigma);
        let mut rng = Pcg64::seed_from_u64(3);
        let mut payoff = RunningStats::new();
        for _ in 0..20_000 {
            let p = WienerPath::generate(t, 1, &mut rng);
            let st = *gbm.exact_path(s, &p).last().unwrap();
            payoff.push((st - k).max(0.0));
        }
        let mc = (-r * t).exp() * payoff.mean();
        let bs = black_scholes_call(s, k, r, sigma, t);
        assert!((mc - bs).abs() < 0.15, "mc {mc} vs bs {bs}");
    }
}
