//! Physical constants used by the device models.

/// Elementary charge `q` in coulombs.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Boltzmann constant `k` in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Planck constant `h` in J·s.
pub const PLANCK: f64 = 6.626_070_15e-34;

/// Conductance quantum `G0 = 2e²/h` in siemens — the height of one step in
/// a quantum wire's conductance staircase (paper Figure 1(b)).
pub const QUANTUM_CONDUCTANCE: f64 = 2.0 * ELEMENTARY_CHARGE * ELEMENTARY_CHARGE / PLANCK;

/// Reference temperature in kelvin used by the paper's experiments.
pub const ROOM_TEMPERATURE: f64 = 300.0;

/// Thermal voltage `kT/q` at temperature `t` kelvin.
///
/// # Panics
/// Panics if `t` is not strictly positive.
///
/// # Example
/// ```
/// let vt = nanosim_devices::constants::thermal_voltage(300.0);
/// assert!((vt - 0.02585).abs() < 1e-4);
/// ```
pub fn thermal_voltage(t: f64) -> f64 {
    assert!(t > 0.0, "temperature must be positive, got {t}");
    BOLTZMANN * t / ELEMENTARY_CHARGE
}

/// Numerically safe `ln(1 + e^x)` (softplus), exact to double precision for
/// all magnitudes of `x`. The Schulman RTD equation needs this for exponents
/// approaching ±80.
pub fn ln_1p_exp(x: f64) -> f64 {
    if x > 33.0 {
        // e^-x below machine epsilon relative to x.
        x
    } else if x < -37.0 {
        // e^x underflows the ln_1p argument.
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Logistic function `1 / (1 + e^-x)`, the derivative of [`ln_1p_exp`].
pub fn logistic(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::approx_eq;

    #[test]
    fn quantum_conductance_value() {
        // 2e^2/h = 77.48 microsiemens.
        assert!(approx_eq(QUANTUM_CONDUCTANCE, 7.748e-5, 1e-3));
    }

    #[test]
    fn thermal_voltage_at_300k() {
        assert!(approx_eq(thermal_voltage(300.0), 0.025852, 1e-3));
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn thermal_voltage_rejects_zero() {
        thermal_voltage(0.0);
    }

    #[test]
    fn ln_1p_exp_matches_naive_in_safe_range() {
        for x in [-20.0, -1.0, 0.0, 1.0, 20.0] {
            let naive = (1.0 + f64::exp(x)).ln();
            assert!(approx_eq(ln_1p_exp(x), naive, 1e-12), "x={x}");
        }
    }

    #[test]
    fn ln_1p_exp_extremes_do_not_overflow() {
        assert_eq!(ln_1p_exp(800.0), 800.0);
        assert!(ln_1p_exp(-800.0) >= 0.0);
        assert!(ln_1p_exp(-800.0) < 1e-300);
    }

    #[test]
    fn logistic_is_symmetric_and_bounded() {
        for x in [-50.0, -2.0, 0.0, 2.0, 50.0] {
            let s = logistic(x);
            assert!((0.0..=1.0).contains(&s));
            assert!(approx_eq(s + logistic(-x), 1.0, 1e-12));
        }
        assert!(approx_eq(logistic(0.0), 0.5, 1e-15));
    }

    #[test]
    fn logistic_is_derivative_of_softplus() {
        let h = 1e-6;
        for x in [-5.0, -0.5, 0.0, 0.5, 5.0] {
            let num = (ln_1p_exp(x + h) - ln_1p_exp(x - h)) / (2.0 * h);
            assert!(approx_eq(num, logistic(x), 1e-6), "x={x}");
        }
    }
}
