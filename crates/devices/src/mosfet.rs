//! Level-1 (square-law) MOSFET model.
//!
//! The paper's eq. (2) gives the classic long-channel drain current and
//! eq. (3) its step-wise equivalent conductance `G(t) = I_DS/V_DS`:
//!
//! ```text
//! triode     (V_DS <= V_GS - V_th):  I = k·W/L·((V_GS - V_th)·V_DS - V_DS²/2)
//! saturation (V_DS >  V_GS - V_th):  I = k·W/L·(V_GS - V_th)²/2
//! cutoff     (V_GS <= V_th):         I = 0
//! ```
//!
//! The MOSFET is a three-terminal device; in the SWEC engine its channel is
//! stamped as the equivalent conductance between drain and source evaluated
//! at the *previous* time point's `(V_GS, V_DS)`, exactly as the paper does
//! for the FET of the FET-RTD inverter.

use crate::error::DeviceError;
use crate::Result;
use nanosim_numeric::FlopCounter;

/// Channel polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel: conducts for `V_GS > V_th`, positive drain current.
    Nmos,
    /// P-channel: mirror-image polarity.
    Pmos,
}

/// Operating region of the square-law model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosRegion {
    /// `|V_GS| <= |V_th|`: channel off.
    Cutoff,
    /// `|V_DS| < |V_GS - V_th|`: resistive region.
    Triode,
    /// `|V_DS| >= |V_GS - V_th|`: current-source region.
    Saturation,
}

/// Level-1 MOSFET parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetParams {
    /// Polarity.
    pub mos_type: MosType,
    /// Transconductance parameter `k` (A/V²) — `µ·C_ox`.
    pub k: f64,
    /// Effective channel width (m, or any unit consistent with `l`).
    pub w: f64,
    /// Effective channel length.
    pub l: f64,
    /// Threshold voltage (V); positive for NMOS, negative for PMOS.
    pub vth: f64,
    /// Channel-length modulation (1/V); zero for the paper's ideal model.
    pub lambda: f64,
}

impl MosfetParams {
    /// A generic n-channel device: `k = 100 µA/V², W/L = 10, V_th = 1 V`.
    pub fn nmos_default() -> Self {
        MosfetParams {
            mos_type: MosType::Nmos,
            k: 1e-4,
            w: 10.0,
            l: 1.0,
            vth: 1.0,
            lambda: 0.0,
        }
    }

    /// A generic p-channel device (`V_th = -1 V`, lower mobility).
    pub fn pmos_default() -> Self {
        MosfetParams {
            mos_type: MosType::Pmos,
            k: 4e-5,
            w: 20.0,
            l: 1.0,
            vth: -1.0,
            lambda: 0.0,
        }
    }

    /// Validates the parameter ranges.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidParameter`] when `k`, `w` or `l` are
    /// not positive, `lambda` is negative, or the threshold sign disagrees
    /// with the polarity.
    pub fn validate(&self) -> Result<()> {
        let check = |name: &'static str, value: f64, ok: bool, req: &'static str| {
            if ok && value.is_finite() {
                Ok(())
            } else {
                Err(DeviceError::InvalidParameter {
                    device: "mosfet",
                    parameter: name,
                    value,
                    requirement: req,
                })
            }
        };
        check("k", self.k, self.k > 0.0, "must be positive")?;
        check("w", self.w, self.w > 0.0, "must be positive")?;
        check("l", self.l, self.l > 0.0, "must be positive")?;
        check(
            "lambda",
            self.lambda,
            self.lambda >= 0.0,
            "must be non-negative",
        )?;
        match self.mos_type {
            MosType::Nmos => check("vth", self.vth, self.vth >= 0.0, "NMOS needs vth >= 0"),
            MosType::Pmos => check("vth", self.vth, self.vth <= 0.0, "PMOS needs vth <= 0"),
        }
    }
}

/// A level-1 MOSFET.
///
/// # Example
/// ```
/// use nanosim_devices::mosfet::{Mosfet, MosfetParams, MosRegion};
/// use nanosim_numeric::FlopCounter;
///
/// # fn main() -> Result<(), nanosim_devices::DeviceError> {
/// let fet = Mosfet::new(MosfetParams::nmos_default())?;
/// let mut flops = FlopCounter::new();
/// assert_eq!(fet.region(3.0, 0.5), MosRegion::Triode);
/// assert!(fet.ids(3.0, 0.5, &mut flops) > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mosfet {
    params: MosfetParams,
    /// Precomputed `k·W/L`.
    beta: f64,
}

impl Mosfet {
    /// Creates a MOSFET from validated parameters.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidParameter`] for out-of-range values.
    pub fn new(params: MosfetParams) -> Result<Self> {
        params.validate()?;
        Ok(Mosfet {
            beta: params.k * params.w / params.l,
            params,
        })
    }

    /// Generic NMOS device.
    pub fn nmos() -> Self {
        Mosfet::new(MosfetParams::nmos_default()).expect("defaults valid")
    }

    /// Generic PMOS device.
    pub fn pmos() -> Self {
        Mosfet::new(MosfetParams::pmos_default()).expect("defaults valid")
    }

    /// The model parameters.
    pub fn params(&self) -> &MosfetParams {
        &self.params
    }

    /// `k·W/L` in A/V².
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Maps terminal voltages to the NMOS-normalized frame: PMOS devices are
    /// computed as mirrored NMOS and the current negated on the way out.
    fn normalize(&self, vgs: f64, vds: f64) -> (f64, f64, f64, f64) {
        match self.params.mos_type {
            MosType::Nmos => (vgs, vds, self.params.vth, 1.0),
            MosType::Pmos => (-vgs, -vds, -self.params.vth, -1.0),
        }
    }

    /// Operating region for the given terminal voltages.
    pub fn region(&self, vgs: f64, vds: f64) -> MosRegion {
        let (vgs, vds, vth, _) = self.normalize(vgs, vds);
        let vov = vgs - vth;
        if vov <= 0.0 {
            MosRegion::Cutoff
        } else if vds < vov {
            MosRegion::Triode
        } else {
            MosRegion::Saturation
        }
    }

    /// Drain current `I_DS(V_GS, V_DS)` per paper eq. (2).
    ///
    /// Negative `V_DS` (for NMOS) is handled by source/drain symmetry:
    /// `I(vgs, vds) = -I(vgs - vds, -vds)`.
    pub fn ids(&self, vgs: f64, vds: f64, flops: &mut FlopCounter) -> f64 {
        let (nvgs, nvds, vth, sign) = self.normalize(vgs, vds);
        sign * self.ids_normalized(nvgs, nvds, vth, flops)
    }

    fn ids_normalized(&self, vgs: f64, vds: f64, vth: f64, flops: &mut FlopCounter) -> f64 {
        if vds < 0.0 {
            // Source/drain swap for reverse conduction.
            flops.add(2);
            return -self.ids_normalized(vgs - vds, -vds, vth, flops);
        }
        let vov = vgs - vth;
        flops.add(1);
        if vov <= 0.0 {
            return 0.0;
        }
        let lambda_term = 1.0 + self.params.lambda * vds;
        flops.mul(1);
        flops.add(1);
        if vds < vov {
            flops.mul(4);
            flops.add(2);
            self.beta * (vov * vds - 0.5 * vds * vds) * lambda_term
        } else {
            flops.mul(3);
            self.beta * 0.5 * vov * vov * lambda_term
        }
    }

    /// Step-wise equivalent channel conductance `Geq = I_DS/V_DS`
    /// (paper eq. 3):
    ///
    /// ```text
    /// triode:     Geq = k·W/L·(V_GS - V_th - V_DS/2)
    /// saturation: Geq = k·W/L·(V_GS - V_th)²/(2·V_DS)
    /// cutoff:     Geq = 0
    /// ```
    pub fn geq(&self, vgs: f64, vds: f64, flops: &mut FlopCounter) -> f64 {
        let (nvgs, nvds, vth, _) = self.normalize(vgs, vds);
        if nvds.abs() < 1e-12 {
            // Channel conductance limit at vds -> 0: beta * vov in triode.
            let vov = nvgs - vth;
            flops.add(1);
            flops.mul(1);
            return if vov > 0.0 { self.beta * vov } else { 0.0 };
        }
        let i = self.ids_normalized(nvgs, nvds, vth, flops);
        flops.div(1);
        i / nvds
    }

    /// Small-signal output conductance `dI_DS/dV_DS` — the quantity SPICE
    /// stamps. Zero in saturation when `lambda = 0`.
    pub fn gds(&self, vgs: f64, vds: f64, flops: &mut FlopCounter) -> f64 {
        let h = 1e-7;
        flops.add(1);
        flops.div(1);
        (self.ids(vgs, vds + h, flops) - self.ids(vgs, vds - h, flops)) / (2.0 * h)
    }

    /// Small-signal transconductance `dI_DS/dV_GS`.
    pub fn gm(&self, vgs: f64, vds: f64, flops: &mut FlopCounter) -> f64 {
        let h = 1e-7;
        flops.add(1);
        flops.div(1);
        (self.ids(vgs + h, vds, flops) - self.ids(vgs - h, vds, flops)) / (2.0 * h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::approx_eq;

    fn flops() -> FlopCounter {
        FlopCounter::new()
    }

    #[test]
    fn cutoff_region_zero_current() {
        let fet = Mosfet::nmos();
        assert_eq!(fet.region(0.5, 2.0), MosRegion::Cutoff);
        assert_eq!(fet.ids(0.5, 2.0, &mut flops()), 0.0);
        assert_eq!(fet.geq(0.5, 2.0, &mut flops()), 0.0);
    }

    #[test]
    fn triode_current_matches_formula() {
        let fet = Mosfet::nmos();
        let (vgs, vds) = (3.0, 0.5);
        assert_eq!(fet.region(vgs, vds), MosRegion::Triode);
        let expected = 1e-3 * ((vgs - 1.0) * vds - 0.5 * vds * vds);
        assert!(approx_eq(fet.ids(vgs, vds, &mut flops()), expected, 1e-12));
    }

    #[test]
    fn saturation_current_matches_formula() {
        let fet = Mosfet::nmos();
        let (vgs, vds) = (2.0, 3.0);
        assert_eq!(fet.region(vgs, vds), MosRegion::Saturation);
        let expected = 1e-3 * 0.5 * (vgs - 1.0) * (vgs - 1.0);
        assert!(approx_eq(fet.ids(vgs, vds, &mut flops()), expected, 1e-12));
    }

    #[test]
    fn geq_matches_paper_eq3_triode() {
        let fet = Mosfet::nmos();
        let (vgs, vds) = (3.0, 0.5);
        let expected = 1e-3 * (vgs - 1.0 - vds / 2.0);
        assert!(approx_eq(fet.geq(vgs, vds, &mut flops()), expected, 1e-12));
    }

    #[test]
    fn geq_matches_paper_eq3_saturation() {
        let fet = Mosfet::nmos();
        let (vgs, vds) = (2.0, 3.0);
        let expected = 1e-3 * (vgs - 1.0f64).powi(2) / (2.0 * vds);
        assert!(approx_eq(fet.geq(vgs, vds, &mut flops()), expected, 1e-12));
    }

    #[test]
    fn geq_is_current_over_voltage() {
        let fet = Mosfet::nmos();
        for (vgs, vds) in [(2.0, 0.3), (3.0, 1.5), (4.0, 4.0)] {
            let i = fet.ids(vgs, vds, &mut flops());
            let g = fet.geq(vgs, vds, &mut flops());
            assert!(approx_eq(g, i / vds, 1e-12), "vgs={vgs} vds={vds}");
        }
    }

    #[test]
    fn current_continuous_at_triode_saturation_boundary() {
        let fet = Mosfet::nmos();
        let vgs = 2.5;
        let vov = vgs - 1.0;
        let below = fet.ids(vgs, vov - 1e-9, &mut flops());
        let above = fet.ids(vgs, vov + 1e-9, &mut flops());
        assert!(approx_eq(below, above, 1e-6));
    }

    #[test]
    fn reverse_conduction_antisymmetric() {
        let fet = Mosfet::nmos();
        // I(vgs, -vds) = -I(vgs + vds, vds) by source/drain swap.
        let i_rev = fet.ids(3.0, -0.5, &mut flops());
        let i_fwd = fet.ids(3.5, 0.5, &mut flops());
        assert!(approx_eq(i_rev, -i_fwd, 1e-12));
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let n = Mosfet::nmos();
        let p = Mosfet::new(MosfetParams {
            mos_type: MosType::Pmos,
            k: 1e-4,
            w: 10.0,
            l: 1.0,
            vth: -1.0,
            lambda: 0.0,
        })
        .unwrap();
        let i_n = n.ids(3.0, 2.0, &mut flops());
        let i_p = p.ids(-3.0, -2.0, &mut flops());
        assert!(approx_eq(i_p, -i_n, 1e-12));
        assert_eq!(p.region(-3.0, -2.0), n.region(3.0, 2.0));
        // Geq is positive for both polarities (I and V flip together).
        assert!(p.geq(-3.0, -2.0, &mut flops()) > 0.0);
    }

    #[test]
    fn gds_zero_in_ideal_saturation_positive_in_triode() {
        let fet = Mosfet::nmos();
        assert!(fet.gds(2.0, 3.0, &mut flops()).abs() < 1e-9);
        assert!(fet.gds(3.0, 0.5, &mut flops()) > 0.0);
    }

    #[test]
    fn lambda_gives_finite_output_conductance() {
        let fet = Mosfet::new(MosfetParams {
            lambda: 0.05,
            ..MosfetParams::nmos_default()
        })
        .unwrap();
        let g = fet.gds(2.0, 3.0, &mut flops());
        let expected = 1e-3 * 0.5 * 1.0 * 0.05; // beta/2 * vov^2 * lambda
        assert!(approx_eq(g, expected, 1e-6));
    }

    #[test]
    fn gm_positive_when_on() {
        let fet = Mosfet::nmos();
        assert!(fet.gm(2.0, 3.0, &mut flops()) > 0.0);
        assert_eq!(fet.gm(0.2, 3.0, &mut flops()), 0.0);
    }

    #[test]
    fn geq_at_zero_vds_is_channel_conductance() {
        let fet = Mosfet::nmos();
        let g = fet.geq(3.0, 0.0, &mut flops());
        assert!(approx_eq(g, 1e-3 * 2.0, 1e-12));
        assert_eq!(fet.geq(0.5, 0.0, &mut flops()), 0.0);
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = MosfetParams {
            k: 0.0,
            ..MosfetParams::nmos_default()
        };
        assert!(Mosfet::new(bad).is_err());
        let bad = MosfetParams {
            vth: -0.5,
            ..MosfetParams::nmos_default()
        };
        assert!(Mosfet::new(bad).is_err(), "NMOS with negative vth");
        let bad = MosfetParams {
            lambda: -0.1,
            ..MosfetParams::nmos_default()
        };
        assert!(Mosfet::new(bad).is_err());
        let bad = MosfetParams {
            vth: 1.0,
            ..MosfetParams::pmos_default()
        };
        assert!(Mosfet::new(bad).is_err(), "PMOS with positive vth");
    }

    #[test]
    fn flops_recorded() {
        let fet = Mosfet::nmos();
        let mut f = flops();
        fet.ids(3.0, 0.5, &mut f);
        assert!(f.total() > 0);
    }
}
