//! The nonlinear two-terminal device abstraction.
//!
//! Every simulation engine in `nanosim-core` (SWEC, Newton–Raphson, MLA,
//! piecewise-linear) is written against this trait, so the *same model code*
//! is exercised by the paper's method and its baselines — exactly how the
//! paper compares them.

use nanosim_numeric::FlopCounter;
use std::fmt::Debug;

/// Voltage below which `I(V)/V` switches to its analytic `V -> 0` limit.
pub const GEQ_ZERO_VOLTAGE: f64 = 1e-9;

/// A voltage-controlled two-terminal nonlinear branch `i = I(v)`.
///
/// All methods thread a [`FlopCounter`] because the paper's Table I compares
/// simulators by floating point operation counts, and model evaluations are
/// a large share of them.
pub trait NonlinearTwoTerminal: Debug {
    /// Branch current at branch voltage `v` (amperes).
    fn current(&self, v: f64, flops: &mut FlopCounter) -> f64;

    /// Differential (small-signal) conductance `dI/dV` at `v`.
    ///
    /// This is the linearization SPICE-like simulators stamp; it is
    /// *negative* inside an NDR region, which is what breaks them.
    fn differential_conductance(&self, v: f64, flops: &mut FlopCounter) -> f64;

    /// Step-wise equivalent conductance `Geq(v) = I(v)/v` (paper §3.2).
    ///
    /// For a passive device (`sign(I) == sign(v)`) this is positive even
    /// where `dI/dV < 0`, which is the paper's fix for the NDR problem. At
    /// `v -> 0` the secant degenerates and the analytic limit
    /// `Geq(0) = dI/dV(0)` is used instead.
    fn equivalent_conductance(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        if v.abs() < GEQ_ZERO_VOLTAGE {
            self.differential_conductance(0.0, flops)
        } else {
            let i = self.current(v, flops);
            flops.div(1);
            i / v
        }
    }

    /// Voltage derivative of the equivalent conductance,
    /// `dGeq/dV = (I'(v)·v - I(v)) / v²` (paper eq. 7–8), used by the SWEC
    /// engine's first-order Taylor extrapolation (paper eq. 5).
    ///
    /// The default implementation evaluates the quotient rule from
    /// [`NonlinearTwoTerminal::current`] and
    /// [`NonlinearTwoTerminal::differential_conductance`]; near `v = 0` it
    /// falls back to a symmetric finite difference of `Geq`.
    fn d_equivalent_conductance_dv(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        if v.abs() < 1e-6 {
            let h = 1e-6;
            let gp = self.equivalent_conductance(v + h, flops);
            let gm = self.equivalent_conductance(v - h, flops);
            flops.add(1);
            flops.div(1);
            (gp - gm) / (2.0 * h)
        } else {
            let i = self.current(v, flops);
            let di = self.differential_conductance(v, flops);
            flops.mul(2);
            flops.add(1);
            flops.div(1);
            (di * v - i) / (v * v)
        }
    }

    /// Short identifier used in reports ("rtd", "nanowire", ...).
    fn device_kind(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::approx_eq;

    /// A simple cubic test device i = v^3 - used to validate the trait's
    /// default method implementations against hand-derived values.
    #[derive(Debug)]
    struct Cubic;

    impl NonlinearTwoTerminal for Cubic {
        fn current(&self, v: f64, flops: &mut FlopCounter) -> f64 {
            flops.mul(2);
            v * v * v
        }

        fn differential_conductance(&self, v: f64, flops: &mut FlopCounter) -> f64 {
            flops.mul(2);
            3.0 * v * v
        }

        fn device_kind(&self) -> &'static str {
            "cubic-test"
        }
    }

    #[test]
    fn default_geq_is_secant_through_origin() {
        let d = Cubic;
        let mut f = FlopCounter::new();
        // i(2)/2 = 8/2 = 4
        assert!(approx_eq(d.equivalent_conductance(2.0, &mut f), 4.0, 1e-12));
    }

    #[test]
    fn default_geq_uses_derivative_at_zero() {
        let d = Cubic;
        let mut f = FlopCounter::new();
        assert_eq!(d.equivalent_conductance(0.0, &mut f), 0.0);
        assert_eq!(d.equivalent_conductance(1e-12, &mut f), 0.0);
    }

    #[test]
    fn default_dgeq_matches_quotient_rule() {
        let d = Cubic;
        let mut f = FlopCounter::new();
        // Geq = v^2 so dGeq/dv = 2v.
        assert!(approx_eq(
            d.d_equivalent_conductance_dv(1.5, &mut f),
            3.0,
            1e-9
        ));
    }

    #[test]
    fn default_dgeq_finite_difference_near_zero() {
        let d = Cubic;
        let mut f = FlopCounter::new();
        // dGeq/dv at 0 is 0 for Geq = v^2.
        assert!(d.d_equivalent_conductance_dv(0.0, &mut f).abs() < 1e-5);
    }

    #[test]
    fn flops_recorded_by_defaults() {
        let d = Cubic;
        let mut f = FlopCounter::new();
        d.equivalent_conductance(1.0, &mut f);
        assert!(f.divs() >= 1);
    }

    #[test]
    fn trait_is_object_safe() {
        let d: Box<dyn NonlinearTwoTerminal> = Box::new(Cubic);
        assert_eq!(d.device_kind(), "cubic-test");
    }
}
