//! Independent source waveforms.
//!
//! Deterministic waveforms follow SPICE semantics (`DC`, `PULSE`, `SIN`,
//! `PWL`); [`SourceWaveform::WhiteNoise`] marks a stochastic input for the
//! Euler–Maruyama engine (paper §4.1: "Because of its high randomness, u(t)
//! is generally modeled as white noise"). Deterministic engines see its mean
//! value; the EM engine reads the intensity as the `B·dW` coefficient.

use crate::error::DeviceError;
use crate::Result;
use nanosim_numeric::interp::PwlFunction;
use std::f64::consts::TAU;

/// SPICE `PULSE(v1 v2 td tr tf pw per)` parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseParams {
    /// Initial value (V or A).
    pub v1: f64,
    /// Pulsed value.
    pub v2: f64,
    /// Delay before the first edge (s).
    pub delay: f64,
    /// Rise time (s), strictly positive.
    pub rise: f64,
    /// Fall time (s), strictly positive.
    pub fall: f64,
    /// Pulse width at `v2` (s).
    pub width: f64,
    /// Repetition period (s); `0` or `inf` means a single pulse.
    pub period: f64,
}

impl PulseParams {
    /// Validates the timing parameters.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidWaveform`] for non-positive edges or a
    /// period shorter than one full pulse.
    pub fn validate(&self) -> Result<()> {
        if !(self.rise > 0.0 && self.fall > 0.0) {
            return Err(DeviceError::InvalidWaveform {
                context: format!(
                    "pulse rise/fall must be positive (rise={}, fall={})",
                    self.rise, self.fall
                ),
            });
        }
        if self.width < 0.0 || self.delay < 0.0 {
            return Err(DeviceError::InvalidWaveform {
                context: format!(
                    "pulse width/delay must be non-negative (width={}, delay={})",
                    self.width, self.delay
                ),
            });
        }
        let one_shot = self.rise + self.width + self.fall;
        if self.period > 0.0 && self.period.is_finite() && self.period < one_shot {
            return Err(DeviceError::InvalidWaveform {
                context: format!(
                    "pulse period {} shorter than rise+width+fall {}",
                    self.period, one_shot
                ),
            });
        }
        Ok(())
    }
}

/// SPICE `SIN(vo va freq td theta)` parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinParams {
    /// Offset.
    pub offset: f64,
    /// Amplitude.
    pub amplitude: f64,
    /// Frequency (Hz), strictly positive.
    pub frequency: f64,
    /// Delay (s).
    pub delay: f64,
    /// Damping factor (1/s), non-negative.
    pub theta: f64,
}

impl SinParams {
    /// Validates the parameters.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidWaveform`] for non-positive frequency
    /// or negative damping.
    pub fn validate(&self) -> Result<()> {
        if !(self.frequency > 0.0 && self.frequency.is_finite()) {
            return Err(DeviceError::InvalidWaveform {
                context: format!("sin frequency must be positive, got {}", self.frequency),
            });
        }
        if self.theta < 0.0 {
            return Err(DeviceError::InvalidWaveform {
                context: format!("sin damping must be non-negative, got {}", self.theta),
            });
        }
        Ok(())
    }
}

/// An independent source waveform.
///
/// # Example
/// ```
/// use nanosim_devices::sources::{SourceWaveform, PulseParams};
/// # fn main() -> Result<(), nanosim_devices::DeviceError> {
/// let sw = SourceWaveform::pulse(PulseParams {
///     v1: 0.0, v2: 5.0, delay: 0.0,
///     rise: 1e-9, fall: 1e-9, width: 99e-9, period: 200e-9,
/// })?;
/// assert_eq!(sw.value(0.0), 0.0);
/// assert_eq!(sw.value(50e-9), 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// Trapezoidal pulse train.
    Pulse(PulseParams),
    /// (Damped) sine.
    Sin(SinParams),
    /// Piecewise-linear in time.
    Pwl(PwlFunction),
    /// White-noise input for the stochastic engine: deterministic engines
    /// see `mean`, the EM engine uses `intensity` as the Wiener-increment
    /// coefficient (units: value·s^(1/2)).
    WhiteNoise {
        /// Deterministic mean value.
        mean: f64,
        /// Noise intensity multiplying `dW`.
        intensity: f64,
    },
}

impl SourceWaveform {
    /// DC source.
    pub fn dc(value: f64) -> Self {
        SourceWaveform::Dc(value)
    }

    /// Validated pulse source.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidWaveform`] when the timing is
    /// inconsistent.
    pub fn pulse(params: PulseParams) -> Result<Self> {
        params.validate()?;
        Ok(SourceWaveform::Pulse(params))
    }

    /// Validated sine source.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidWaveform`] for a bad frequency/damping.
    pub fn sin(params: SinParams) -> Result<Self> {
        params.validate()?;
        Ok(SourceWaveform::Sin(params))
    }

    /// PWL source from `(time, value)` breakpoints.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidWaveform`] when breakpoints are not
    /// strictly increasing in time.
    pub fn pwl(points: Vec<(f64, f64)>) -> Result<Self> {
        let f = PwlFunction::new(points).map_err(|e| DeviceError::InvalidWaveform {
            context: e.to_string(),
        })?;
        Ok(SourceWaveform::Pwl(f))
    }

    /// White-noise source.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidWaveform`] for negative intensity.
    pub fn white_noise(mean: f64, intensity: f64) -> Result<Self> {
        if intensity < 0.0 || !intensity.is_finite() {
            return Err(DeviceError::InvalidWaveform {
                context: format!("noise intensity must be non-negative, got {intensity}"),
            });
        }
        Ok(SourceWaveform::WhiteNoise { mean, intensity })
    }

    /// Deterministic value at time `t` (the mean for white noise).
    pub fn value(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Pulse(p) => pulse_value(p, t),
            SourceWaveform::Sin(s) => sin_value(s, t),
            SourceWaveform::Pwl(f) => f.eval(t),
            SourceWaveform::WhiteNoise { mean, .. } => *mean,
        }
    }

    /// Time derivative of the deterministic value at `t` — the slew `α` of
    /// the paper's adaptive time-step constraint (eq. 11).
    pub fn slew(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc(_) | SourceWaveform::WhiteNoise { .. } => 0.0,
            SourceWaveform::Pulse(p) => pulse_slew(p, t),
            SourceWaveform::Sin(s) => {
                if t < s.delay {
                    0.0
                } else {
                    // d/dt [offset + A·sin(2πf(t-td))·e^-θ(t-td)]
                    let tt = t - s.delay;
                    let w = TAU * s.frequency;
                    let damp = (-s.theta * tt).exp();
                    s.amplitude * damp * (w * (w * tt).cos() - s.theta * (w * tt).sin())
                }
            }
            SourceWaveform::Pwl(f) => f.slope(t),
        }
    }

    /// Whether the waveform carries a stochastic component.
    pub fn is_stochastic(&self) -> bool {
        matches!(self, SourceWaveform::WhiteNoise { .. })
    }

    /// Wiener-increment coefficient (zero for deterministic waveforms).
    pub fn noise_intensity(&self) -> f64 {
        match self {
            SourceWaveform::WhiteNoise { intensity, .. } => *intensity,
            _ => 0.0,
        }
    }

    /// Next waveform corner strictly after time `t` (pulse edges, PWL
    /// breakpoints). Transient engines shrink their step so they land on
    /// corners instead of integrating across them. Returns `None` for
    /// smooth/constant waveforms.
    pub fn next_breakpoint(&self, t: f64) -> Option<f64> {
        const EPS: f64 = 1e-18;
        match self {
            SourceWaveform::Dc(_) | SourceWaveform::Sin(_) | SourceWaveform::WhiteNoise { .. } => {
                None
            }
            SourceWaveform::Pwl(f) => f.points().iter().map(|&(x, _)| x).find(|&x| x > t + EPS),
            SourceWaveform::Pulse(p) => {
                let corners = [0.0, p.rise, p.rise + p.width, p.rise + p.width + p.fall];
                if t < p.delay {
                    return Some(p.delay);
                }
                let periodic = p.period > 0.0 && p.period.is_finite();
                let tt = t - p.delay;
                let (base, local) = if periodic {
                    let k = (tt / p.period).floor();
                    (p.delay + k * p.period, tt - k * p.period)
                } else {
                    (p.delay, tt)
                };
                for &c in &corners[1..] {
                    if local + EPS < c {
                        return Some(base + c);
                    }
                }
                if periodic {
                    Some(base + p.period)
                } else {
                    None
                }
            }
        }
    }

    /// Largest deterministic value over `[0, t_end]` (used for source
    ///-stepping continuation scaling). Sampled on a fine grid for the
    /// periodic/pwl cases.
    pub fn max_abs_value(&self, t_end: f64) -> f64 {
        match self {
            SourceWaveform::Dc(v) => v.abs(),
            SourceWaveform::WhiteNoise { mean, .. } => mean.abs(),
            SourceWaveform::Pulse(p) => p.v1.abs().max(p.v2.abs()),
            SourceWaveform::Sin(s) => s.offset.abs() + s.amplitude.abs(),
            SourceWaveform::Pwl(_) => {
                let n = 1000;
                (0..=n)
                    .map(|i| self.value(t_end * i as f64 / n as f64).abs())
                    .fold(0.0, f64::max)
            }
        }
    }
}

fn pulse_value(p: &PulseParams, t: f64) -> f64 {
    if t < p.delay {
        return p.v1;
    }
    let mut tt = t - p.delay;
    if p.period > 0.0 && p.period.is_finite() {
        tt %= p.period;
    }
    if tt < p.rise {
        p.v1 + (p.v2 - p.v1) * tt / p.rise
    } else if tt < p.rise + p.width {
        p.v2
    } else if tt < p.rise + p.width + p.fall {
        p.v2 + (p.v1 - p.v2) * (tt - p.rise - p.width) / p.fall
    } else {
        p.v1
    }
}

fn pulse_slew(p: &PulseParams, t: f64) -> f64 {
    if t < p.delay {
        return 0.0;
    }
    let mut tt = t - p.delay;
    if p.period > 0.0 && p.period.is_finite() {
        tt %= p.period;
    }
    if tt < p.rise {
        (p.v2 - p.v1) / p.rise
    } else if tt < p.rise + p.width {
        0.0
    } else if tt < p.rise + p.width + p.fall {
        (p.v1 - p.v2) / p.fall
    } else {
        0.0
    }
}

fn sin_value(s: &SinParams, t: f64) -> f64 {
    if t < s.delay {
        s.offset
    } else {
        let tt = t - s.delay;
        s.offset + s.amplitude * (TAU * s.frequency * tt).sin() * (-s.theta * tt).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::approx_eq;

    fn clock_pulse() -> PulseParams {
        PulseParams {
            v1: 0.0,
            v2: 5.0,
            delay: 10e-9,
            rise: 2e-9,
            fall: 2e-9,
            width: 40e-9,
            period: 100e-9,
        }
    }

    #[test]
    fn dc_is_constant() {
        let s = SourceWaveform::dc(3.3);
        assert_eq!(s.value(0.0), 3.3);
        assert_eq!(s.value(1.0), 3.3);
        assert_eq!(s.slew(0.5), 0.0);
        assert!(!s.is_stochastic());
    }

    #[test]
    fn pulse_phases() {
        let s = SourceWaveform::pulse(clock_pulse()).unwrap();
        assert_eq!(s.value(0.0), 0.0); // before delay
        assert!(approx_eq(s.value(11e-9), 2.5, 1e-9)); // mid-rise
        assert_eq!(s.value(30e-9), 5.0); // flat top
        assert!(approx_eq(s.value(53e-9), 2.5, 1e-9)); // mid-fall
        assert_eq!(s.value(80e-9), 0.0); // low
    }

    #[test]
    fn pulse_is_periodic() {
        let s = SourceWaveform::pulse(clock_pulse()).unwrap();
        for t in [15e-9, 30e-9, 53e-9, 80e-9] {
            assert!(approx_eq(s.value(t), s.value(t + 100e-9), 1e-9), "t={t}");
            assert!(approx_eq(s.value(t), s.value(t + 300e-9), 1e-9), "t={t}");
        }
    }

    #[test]
    fn single_shot_pulse_stays_low_after_one_cycle() {
        let mut p = clock_pulse();
        p.period = 0.0;
        let s = SourceWaveform::pulse(p).unwrap();
        assert_eq!(s.value(30e-9), 5.0);
        assert_eq!(s.value(500e-9), 0.0);
    }

    #[test]
    fn pulse_slew_on_edges() {
        let s = SourceWaveform::pulse(clock_pulse()).unwrap();
        assert!(approx_eq(s.slew(11e-9), 5.0 / 2e-9, 1e-6));
        assert_eq!(s.slew(30e-9), 0.0);
        assert!(approx_eq(s.slew(53e-9), -5.0 / 2e-9, 1e-6));
        assert_eq!(s.slew(0.0), 0.0);
    }

    #[test]
    fn pulse_validation() {
        let mut p = clock_pulse();
        p.rise = 0.0;
        assert!(SourceWaveform::pulse(p).is_err());
        let mut p = clock_pulse();
        p.period = 10e-9; // shorter than rise+width+fall
        assert!(SourceWaveform::pulse(p).is_err());
        let mut p = clock_pulse();
        p.width = -1.0;
        assert!(SourceWaveform::pulse(p).is_err());
    }

    #[test]
    fn sin_value_and_slew() {
        let s = SourceWaveform::sin(SinParams {
            offset: 1.0,
            amplitude: 2.0,
            frequency: 1e6,
            delay: 0.0,
            theta: 0.0,
        })
        .unwrap();
        assert!(approx_eq(s.value(0.0), 1.0, 1e-12));
        assert!(approx_eq(s.value(0.25e-6), 3.0, 1e-9)); // quarter period
        assert!(approx_eq(s.slew(0.0), 2.0 * TAU * 1e6, 1e-3));
        // Numeric check of the damped-sine slew.
        let sd = SourceWaveform::sin(SinParams {
            offset: 0.0,
            amplitude: 1.0,
            frequency: 1e6,
            delay: 1e-7,
            theta: 1e6,
        })
        .unwrap();
        let h = 1e-12;
        for t in [2e-7, 5e-7, 9e-7] {
            let num = (sd.value(t + h) - sd.value(t - h)) / (2.0 * h);
            assert!(approx_eq(num, sd.slew(t), 1e-3), "t={t}");
        }
    }

    #[test]
    fn sin_validation() {
        let bad = SinParams {
            offset: 0.0,
            amplitude: 1.0,
            frequency: 0.0,
            delay: 0.0,
            theta: 0.0,
        };
        assert!(SourceWaveform::sin(bad).is_err());
        let bad = SinParams {
            offset: 0.0,
            amplitude: 1.0,
            frequency: 1.0,
            delay: 0.0,
            theta: -1.0,
        };
        assert!(SourceWaveform::sin(bad).is_err());
    }

    #[test]
    fn pwl_source() {
        let s = SourceWaveform::pwl(vec![(0.0, 0.0), (1e-9, 5.0), (2e-9, 5.0)]).unwrap();
        assert!(approx_eq(s.value(0.5e-9), 2.5, 1e-9));
        assert!(approx_eq(s.slew(0.5e-9), 5e9, 1e-3));
        assert_eq!(s.value(10e-9), 5.0);
        assert!(SourceWaveform::pwl(vec![(0.0, 0.0)]).is_err());
    }

    #[test]
    fn white_noise_deterministic_view() {
        let s = SourceWaveform::white_noise(1.5, 0.3).unwrap();
        assert_eq!(s.value(0.0), 1.5);
        assert_eq!(s.slew(0.0), 0.0);
        assert!(s.is_stochastic());
        assert_eq!(s.noise_intensity(), 0.3);
        assert!(SourceWaveform::white_noise(0.0, -1.0).is_err());
    }

    #[test]
    fn noise_intensity_zero_for_deterministic() {
        assert_eq!(SourceWaveform::dc(1.0).noise_intensity(), 0.0);
    }

    #[test]
    fn breakpoints_of_pulse() {
        let s = SourceWaveform::pulse(clock_pulse()).unwrap();
        // delay=10n rise=2n width=40n fall=2n period=100n
        assert!(approx_eq(s.next_breakpoint(0.0).unwrap(), 10e-9, 1e-15));
        assert!(approx_eq(s.next_breakpoint(10e-9).unwrap(), 12e-9, 1e-15));
        assert!(approx_eq(s.next_breakpoint(20e-9).unwrap(), 52e-9, 1e-15));
        assert!(approx_eq(s.next_breakpoint(52.5e-9).unwrap(), 54e-9, 1e-15));
        // After the last corner of a cycle, the next period's start.
        assert!(approx_eq(s.next_breakpoint(60e-9).unwrap(), 110e-9, 1e-15));
        // Second period's rise end.
        assert!(approx_eq(
            s.next_breakpoint(110.5e-9).unwrap(),
            112e-9,
            1e-12
        ));
    }

    #[test]
    fn breakpoints_of_single_shot_pulse_end() {
        let mut p = clock_pulse();
        p.period = 0.0;
        let s = SourceWaveform::pulse(p).unwrap();
        assert!(approx_eq(s.next_breakpoint(20e-9).unwrap(), 52e-9, 1e-15));
        assert_eq!(s.next_breakpoint(60e-9), None);
    }

    #[test]
    fn breakpoints_of_pwl_and_smooth() {
        let s = SourceWaveform::pwl(vec![(0.0, 0.0), (1e-9, 5.0), (3e-9, 5.0)]).unwrap();
        assert!(approx_eq(s.next_breakpoint(0.0).unwrap(), 1e-9, 1e-15));
        assert!(approx_eq(s.next_breakpoint(1.5e-9).unwrap(), 3e-9, 1e-15));
        assert_eq!(s.next_breakpoint(5e-9), None);
        assert_eq!(SourceWaveform::dc(1.0).next_breakpoint(0.0), None);
    }

    #[test]
    fn max_abs_value_estimates() {
        assert_eq!(SourceWaveform::dc(-3.0).max_abs_value(1.0), 3.0);
        let s = SourceWaveform::pulse(clock_pulse()).unwrap();
        assert_eq!(s.max_abs_value(1.0), 5.0);
        let s = SourceWaveform::sin(SinParams {
            offset: 1.0,
            amplitude: 2.0,
            frequency: 1e6,
            delay: 0.0,
            theta: 0.0,
        })
        .unwrap();
        assert_eq!(s.max_abs_value(1.0), 3.0);
        let s = SourceWaveform::pwl(vec![(0.0, 0.0), (0.5, -7.0), (1.0, 2.0)]).unwrap();
        assert!(approx_eq(s.max_abs_value(1.0), 7.0, 1e-6));
    }
}
