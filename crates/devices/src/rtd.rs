//! Resonant tunneling diode: the Schulman–De Los Santos–Chow model.
//!
//! The paper (eq. 4, after \[5\]) describes the RTD current density as
//! `J(V) = J1(V) + J2(V)` with
//!
//! ```text
//! J1(V) = A · ln[ (1 + e^{q(B - C + n1·V)/kT}) / (1 + e^{q(B - C - n1·V)/kT}) ]
//!           · [ π/2 + atan((C - n1·V)/D) ]
//! J2(V) = H · (e^{q·n2·V/kT} - 1)
//! ```
//!
//! `J1` is the resonant-tunneling component whose `atan` factor collapses as
//! the bias pulls the well out of resonance, producing the peak and the
//! negative differential resistance (NDR) region; `J2` is the thermionic
//! excess current that restores a positive slope at high bias (PDR2).
//!
//! The equivalent conductance `Geq = J/V` (paper eq. 6) and its voltage
//! derivative (paper eq. 8) are implemented analytically.

use crate::constants::{ln_1p_exp, logistic, thermal_voltage, ROOM_TEMPERATURE};
use crate::error::DeviceError;
use crate::traits::NonlinearTwoTerminal;
use crate::Result;
use nanosim_numeric::FlopCounter;
use std::f64::consts::FRAC_PI_2;

/// Operating region of an RTD at a given bias (paper Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RtdRegion {
    /// First positive differential resistance region (before the peak).
    Pdr1,
    /// Negative differential resistance region (between peak and valley).
    Ndr,
    /// Second positive differential resistance region (after the valley).
    Pdr2,
}

/// Parameters of the Schulman RTD equation.
///
/// All voltages (`b`, `c`, `d`) are in volts, `a` and `h` in amperes, `n1`
/// and `n2` dimensionless, `temperature` in kelvin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtdParams {
    /// Resonance current scale (A).
    pub a: f64,
    /// Energy-level alignment offset (V).
    pub b: f64,
    /// Resonance center (V); the tunneling peak sits near `c/n1`.
    pub c: f64,
    /// Resonance linewidth (V).
    pub d: f64,
    /// Excess (thermionic) current scale (A).
    pub h: f64,
    /// Voltage-division factor of the resonant level.
    pub n1: f64,
    /// Ideality-like factor of the excess current.
    pub n2: f64,
    /// Device temperature (K).
    pub temperature: f64,
}

impl RtdParams {
    /// The exact parameter set the paper reports for its FET-RTD inverter
    /// transient (§5.2): `A = 1e-4, B = 2, C = 1.5, D = 0.3, n1 = 0.35,
    /// n2 = 0.0172, H = 1.43e-8` at 300 K.
    pub fn date2005() -> Self {
        RtdParams {
            a: 1e-4,
            b: 2.0,
            c: 1.5,
            d: 0.3,
            h: 1.43e-8,
            n1: 0.35,
            n2: 0.0172,
            temperature: ROOM_TEMPERATURE,
        }
    }

    /// A variant with a narrow resonance linewidth and stronger excess
    /// current so the peak (~1.2 V), valley (~2.4 V) and the second PDR
    /// region all fall inside a 0–6 V sweep — used to render the three
    /// labelled regions of the paper's Figure 4 on one plot.
    pub fn sharp_valley() -> Self {
        RtdParams {
            a: 1e-4,
            b: 0.2,
            c: 0.5,
            d: 0.05,
            h: 1e-8,
            n1: 0.4,
            n2: 0.1,
            temperature: ROOM_TEMPERATURE,
        }
    }

    /// Validates the parameter ranges.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidParameter`] when a parameter is outside
    /// its physical range (`a, d, n1 > 0`, `h, n2 >= 0`, `temperature > 0`).
    pub fn validate(&self) -> Result<()> {
        let check = |name: &'static str, value: f64, ok: bool, req: &'static str| {
            if ok && value.is_finite() {
                Ok(())
            } else {
                Err(DeviceError::InvalidParameter {
                    device: "rtd",
                    parameter: name,
                    value,
                    requirement: req,
                })
            }
        };
        check("a", self.a, self.a > 0.0, "must be positive")?;
        check("d", self.d, self.d > 0.0, "must be positive")?;
        check("n1", self.n1, self.n1 > 0.0, "must be positive")?;
        check("h", self.h, self.h >= 0.0, "must be non-negative")?;
        check("n2", self.n2, self.n2 >= 0.0, "must be non-negative")?;
        check("b", self.b, true, "must be finite")?;
        check("c", self.c, true, "must be finite")?;
        check(
            "temperature",
            self.temperature,
            self.temperature > 0.0,
            "must be positive",
        )
    }
}

impl Default for RtdParams {
    fn default() -> Self {
        RtdParams::date2005()
    }
}

/// A resonant tunneling diode device.
///
/// # Example
/// ```
/// use nanosim_devices::rtd::{Rtd, RtdRegion};
/// use nanosim_devices::traits::NonlinearTwoTerminal;
/// use nanosim_numeric::FlopCounter;
///
/// let rtd = Rtd::date2005();
/// let mut flops = FlopCounter::new();
/// let peak = rtd.peak().expect("this RTD has a peak");
/// assert!(rtd.current(peak.voltage, &mut flops) > 0.0);
/// assert_eq!(rtd.region(peak.voltage * 0.5), RtdRegion::Pdr1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rtd {
    params: RtdParams,
    /// Precomputed q/kT (1/V).
    u: f64,
}

/// A located extremum of the RTD I-V curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvExtremum {
    /// Bias voltage of the extremum (V).
    pub voltage: f64,
    /// Current at the extremum (A).
    pub current: f64,
}

impl Rtd {
    /// Creates an RTD from validated parameters.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidParameter`] for out-of-range values.
    pub fn new(params: RtdParams) -> Result<Self> {
        params.validate()?;
        Ok(Rtd {
            u: 1.0 / thermal_voltage(params.temperature),
            params,
        })
    }

    /// RTD with the paper's §5.2 parameter set.
    pub fn date2005() -> Self {
        Rtd::new(RtdParams::date2005()).expect("paper parameters are valid")
    }

    /// RTD with the sharp-valley parameter set (paper Figure 4 rendering).
    pub fn sharp_valley() -> Self {
        Rtd::new(RtdParams::sharp_valley()).expect("sharp-valley parameters are valid")
    }

    /// The model parameters.
    pub fn params(&self) -> &RtdParams {
        &self.params
    }

    /// Resonant tunneling component `J1(V)`.
    pub fn current_j1(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        let p = &self.params;
        let arg_pos = self.u * (p.b - p.c + p.n1 * v);
        let arg_neg = self.u * (p.b - p.c - p.n1 * v);
        // 2 muls + 3 adds per argument, softplus ~ 2 func.
        flops.mul(4);
        flops.add(6);
        let log_ratio = ln_1p_exp(arg_pos) - ln_1p_exp(arg_neg);
        flops.func(2);
        flops.add(1);
        let resonance = FRAC_PI_2 + ((p.c - p.n1 * v) / p.d).atan();
        flops.mul(1);
        flops.add(2);
        flops.div(1);
        flops.func(1);
        flops.mul(2);
        p.a * log_ratio * resonance
    }

    /// Excess (thermionic) component `J2(V)`.
    pub fn current_j2(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        let p = &self.params;
        flops.mul(3);
        flops.add(1);
        flops.func(1);
        p.h * ((self.u * p.n2 * v).exp() - 1.0)
    }

    /// Analytic `dJ1/dV`.
    fn dj1_dv(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        let p = &self.params;
        let arg_pos = self.u * (p.b - p.c + p.n1 * v);
        let arg_neg = self.u * (p.b - p.c - p.n1 * v);
        let log_ratio = ln_1p_exp(arg_pos) - ln_1p_exp(arg_neg);
        let dlog = self.u * p.n1 * (logistic(arg_pos) + logistic(arg_neg));
        let x = (p.c - p.n1 * v) / p.d;
        let resonance = FRAC_PI_2 + x.atan();
        let dresonance = -(p.n1 / p.d) / (1.0 + x * x);
        // Bookkeeping: softplus/logistic/atan evaluations plus arithmetic.
        flops.func(5);
        flops.mul(12);
        flops.add(10);
        flops.div(2);
        p.a * (dlog * resonance + log_ratio * dresonance)
    }

    /// Analytic `dJ2/dV`.
    fn dj2_dv(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        let p = &self.params;
        flops.func(1);
        flops.mul(5);
        p.h * self.u * p.n2 * (self.u * p.n2 * v).exp()
    }

    /// Finds the first current peak for `v` in `(0, v_max]`, if any.
    ///
    /// Scans `dI/dV` sign changes on a fine grid and refines by bisection.
    pub fn peak(&self) -> Option<IvExtremum> {
        self.find_extremum(true)
    }

    /// Finds the valley (current minimum after the peak), if any.
    pub fn valley(&self) -> Option<IvExtremum> {
        self.find_extremum(false)
    }

    fn find_extremum(&self, peak: bool) -> Option<IvExtremum> {
        let mut flops = FlopCounter::new();
        let v_max = 4.0 * self.params.c / self.params.n1;
        let n = 4000;
        let dv = v_max / n as f64;
        let mut prev = self.differential_conductance(dv * 0.5, &mut flops);
        let mut seen_peak = false;
        for i in 1..n {
            let v = dv * (0.5 + i as f64);
            let cur = self.differential_conductance(v, &mut flops);
            let crossing_down = prev > 0.0 && cur <= 0.0; // peak
            let crossing_up = prev < 0.0 && cur >= 0.0; // valley
            if crossing_down {
                seen_peak = true;
                if peak {
                    let root = self.refine_extremum(v - dv, v);
                    return Some(IvExtremum {
                        voltage: root,
                        current: self.current(root, &mut flops),
                    });
                }
            }
            if crossing_up && seen_peak && !peak {
                let root = self.refine_extremum(v - dv, v);
                return Some(IvExtremum {
                    voltage: root,
                    current: self.current(root, &mut flops),
                });
            }
            prev = cur;
        }
        None
    }

    fn refine_extremum(&self, mut lo: f64, mut hi: f64) -> f64 {
        let mut flops = FlopCounter::new();
        let flo = self.differential_conductance(lo, &mut flops);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            let fmid = self.differential_conductance(mid, &mut flops);
            if fmid == 0.0 {
                return mid;
            }
            if (fmid > 0.0) == (flo > 0.0) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Classifies the bias point into PDR1 / NDR / PDR2 (paper Figure 4).
    ///
    /// Voltages at or below zero are reported as [`RtdRegion::Pdr1`].
    pub fn region(&self, v: f64) -> RtdRegion {
        let mut flops = FlopCounter::new();
        if v <= 0.0 {
            return RtdRegion::Pdr1;
        }
        let peak_v = self.peak().map(|e| e.voltage);
        let valley_v = self.valley().map(|e| e.voltage);
        match (peak_v, valley_v) {
            (Some(p), _) if v <= p => RtdRegion::Pdr1,
            (Some(_), Some(val)) if v < val => RtdRegion::Ndr,
            (Some(_), Some(_)) => RtdRegion::Pdr2,
            (Some(_), None) => {
                if self.differential_conductance(v, &mut flops) < 0.0 {
                    RtdRegion::Ndr
                } else {
                    RtdRegion::Pdr2
                }
            }
            _ => RtdRegion::Pdr1,
        }
    }

    /// Peak-to-valley current ratio, when both extrema exist.
    pub fn peak_to_valley_ratio(&self) -> Option<f64> {
        let p = self.peak()?;
        let v = self.valley()?;
        if v.current.abs() > 0.0 {
            Some(p.current / v.current)
        } else {
            None
        }
    }
}

impl NonlinearTwoTerminal for Rtd {
    fn current(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        flops.add(1);
        self.current_j1(v, flops) + self.current_j2(v, flops)
    }

    fn differential_conductance(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        flops.add(1);
        self.dj1_dv(v, flops) + self.dj2_dv(v, flops)
    }

    fn device_kind(&self) -> &'static str {
        "rtd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::approx_eq;

    fn flops() -> FlopCounter {
        FlopCounter::new()
    }

    #[test]
    fn zero_bias_zero_current() {
        let rtd = Rtd::date2005();
        assert!(rtd.current(0.0, &mut flops()).abs() < 1e-18);
    }

    #[test]
    fn current_is_odd_like_passive() {
        // sign(I) == sign(V): the device absorbs power at every bias.
        let rtd = Rtd::date2005();
        for v in [-5.0, -2.0, -0.3, 0.3, 2.0, 5.0] {
            let i = rtd.current(v, &mut flops());
            assert!(i * v > 0.0, "v={v}, i={i}");
        }
    }

    #[test]
    fn paper_parameters_have_peak_near_3v() {
        let rtd = Rtd::date2005();
        let peak = rtd.peak().expect("peak exists");
        assert!(
            peak.voltage > 2.0 && peak.voltage < 4.0,
            "peak at {}",
            peak.voltage
        );
        // Peak current on the order of 10 mA for the paper's parameters.
        assert!(peak.current > 1e-3 && peak.current < 1e-1);
    }

    #[test]
    fn ndr_region_has_negative_differential_conductance() {
        let rtd = Rtd::date2005();
        let peak = rtd.peak().unwrap();
        let v = peak.voltage + 0.4;
        assert!(rtd.differential_conductance(v, &mut flops()) < 0.0);
        // ... while the SWEC equivalent conductance stays positive (paper
        // Figure 5).
        assert!(rtd.equivalent_conductance(v, &mut flops()) > 0.0);
    }

    #[test]
    fn geq_positive_across_full_sweep() {
        let rtd = Rtd::date2005();
        let mut v = -6.0;
        while v <= 6.0 {
            let g = rtd.equivalent_conductance(v, &mut flops());
            assert!(g > 0.0, "Geq({v}) = {g}");
            v += 0.05;
        }
    }

    #[test]
    fn geq_limit_matches_derivative_at_zero() {
        let rtd = Rtd::date2005();
        let g0 = rtd.equivalent_conductance(0.0, &mut flops());
        let gd = rtd.differential_conductance(0.0, &mut flops());
        assert!(approx_eq(g0, gd, 1e-12));
        // And the secant at small voltage approaches the same value.
        let gs = rtd.equivalent_conductance(1e-5, &mut flops());
        assert!(approx_eq(g0, gs, 1e-3), "{g0} vs {gs}");
    }

    #[test]
    fn differential_conductance_matches_finite_difference() {
        let rtd = Rtd::date2005();
        let h = 1e-7;
        for v in [-2.0, 0.0, 1.0, 2.5, 3.2, 4.0, 5.5] {
            let num =
                (rtd.current(v + h, &mut flops()) - rtd.current(v - h, &mut flops())) / (2.0 * h);
            let ana = rtd.differential_conductance(v, &mut flops());
            assert!(
                approx_eq(num, ana, 1e-4),
                "v={v}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn dgeq_dv_matches_finite_difference() {
        let rtd = Rtd::date2005();
        let h = 1e-6;
        for v in [0.5, 1.5, 3.0, 4.5] {
            let num = (rtd.equivalent_conductance(v + h, &mut flops())
                - rtd.equivalent_conductance(v - h, &mut flops()))
                / (2.0 * h);
            let ana = rtd.d_equivalent_conductance_dv(v, &mut flops());
            assert!(
                approx_eq(num, ana, 1e-4),
                "v={v}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn sharp_valley_has_three_regions_within_6v() {
        let rtd = Rtd::sharp_valley();
        let peak = rtd.peak().expect("peak");
        let valley = rtd.valley().expect("valley");
        assert!(peak.voltage < valley.voltage);
        assert!(valley.voltage < 6.0, "valley at {}", valley.voltage);
        assert_eq!(rtd.region(peak.voltage * 0.5), RtdRegion::Pdr1);
        assert_eq!(
            rtd.region(0.5 * (peak.voltage + valley.voltage)),
            RtdRegion::Ndr
        );
        assert_eq!(rtd.region(valley.voltage + 0.5), RtdRegion::Pdr2);
    }

    #[test]
    fn peak_to_valley_ratio_is_large() {
        let rtd = Rtd::sharp_valley();
        let pvr = rtd.peak_to_valley_ratio().expect("pvr");
        assert!(pvr > 2.0, "pvr = {pvr}");
    }

    #[test]
    fn region_at_negative_bias_is_pdr1() {
        let rtd = Rtd::date2005();
        assert_eq!(rtd.region(-1.0), RtdRegion::Pdr1);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let bad = RtdParams {
            d: 0.0,
            ..RtdParams::date2005()
        };
        assert!(Rtd::new(bad).is_err());
        let bad = RtdParams {
            a: -1.0,
            ..RtdParams::date2005()
        };
        assert!(Rtd::new(bad).is_err());
        let bad = RtdParams {
            temperature: -5.0,
            ..RtdParams::date2005()
        };
        assert!(Rtd::new(bad).is_err());
        let bad = RtdParams {
            b: f64::NAN,
            ..RtdParams::date2005()
        };
        assert!(Rtd::new(bad).is_err());
    }

    #[test]
    fn flops_are_recorded() {
        let rtd = Rtd::date2005();
        let mut f = flops();
        rtd.current(1.0, &mut f);
        assert!(f.funcs() >= 3, "J1 uses softplus twice and atan once");
        assert!(f.total() > 10);
    }

    #[test]
    fn j1_j2_sum_to_current() {
        let rtd = Rtd::date2005();
        let v = 2.2;
        let j1 = rtd.current_j1(v, &mut flops());
        let j2 = rtd.current_j2(v, &mut flops());
        let j = rtd.current(v, &mut flops());
        assert!(approx_eq(j, j1 + j2, 1e-15));
    }

    #[test]
    fn default_params_are_paper_params() {
        assert_eq!(RtdParams::default(), RtdParams::date2005());
    }

    #[test]
    fn cooling_sharpens_the_resonance() {
        // In the Schulman model the only temperature dependence is the
        // kT/q smearing: cooling from 300 K to 77 K quadruples q/kT, which
        // (a) keeps the resonance (peak) position set by C/n1, and
        // (b) steepens the current characteristics everywhere the
        // logarithmic term is still thermally smeared.
        let warm = Rtd::date2005();
        let cold = Rtd::new(RtdParams {
            temperature: 77.0,
            ..RtdParams::date2005()
        })
        .unwrap();
        let mut f = flops();
        let peak_warm = warm.peak().unwrap();
        let peak_cold = cold.peak().unwrap();
        // Peak position is set by the resonance (C/n1), not temperature.
        assert!(
            (peak_cold.voltage - peak_warm.voltage).abs() < 0.5,
            "{} vs {}",
            peak_cold.voltage,
            peak_warm.voltage
        );
        // The low-bias conductance scales like q/kT (degenerate limit):
        // the cold device conducts ~300/77 times more per volt.
        let g_warm = warm.differential_conductance(0.0, &mut f);
        let g_cold = cold.differential_conductance(0.0, &mut f);
        let ratio = g_cold / g_warm;
        assert!(
            (ratio - 300.0 / 77.0).abs() < 0.4,
            "conductance ratio {ratio}"
        );
        // The colder device still has a genuine NDR region.
        assert!(cold.differential_conductance(peak_cold.voltage + 0.4, &mut f) < 0.0);
    }
}
