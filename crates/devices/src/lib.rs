//! Nanotechnology device models for the Nano-Sim simulator.
//!
//! The Nano-Sim paper (DATE 2005) simulates circuits built from devices with
//! *non-monotonic* ("staircase") I-V characteristics that break classic
//! Newton–Raphson simulators. This crate implements every model the paper's
//! experiments use:
//!
//! * [`rtd`] — the Schulman–De Los Santos–Chow physics-based resonant
//!   tunneling diode equation (paper eq. 4) with analytic equivalent
//!   conductance `Geq = J(V)/V` and its voltage derivative (paper eq. 6–9).
//! * [`rtt`] — a multi-resonance resonant tunneling transistor whose
//!   collector I-V reproduces the multi-peak staircase of Figure 1(a).
//! * [`nanowire`] — a carbon-nanotube/quantum-wire model with conductance
//!   quantized in units of `G0 = 2e²/h` (Figure 1(b)).
//! * [`mosfet`] — the level-1 square-law MOSFET of paper eq. (2) with the
//!   step-wise equivalent conductance of eq. (3).
//! * [`diode`] — a Shockley diode (used for baselines and parser coverage).
//! * [`sources`] — independent source waveforms (DC, PULSE, SIN, PWL and
//!   white-noise for the Euler–Maruyama engine).
//! * [`traits`] — the [`traits::NonlinearTwoTerminal`] abstraction every
//!   engine is written against.
//!
//! # Example
//!
//! The step-wise equivalent conductance stays positive through the RTD's
//! negative differential resistance region, which is the paper's key idea:
//!
//! ```
//! use nanosim_devices::rtd::Rtd;
//! use nanosim_devices::traits::NonlinearTwoTerminal;
//! use nanosim_numeric::FlopCounter;
//!
//! let rtd = Rtd::date2005();
//! let mut flops = FlopCounter::new();
//! // Inside the NDR region the differential conductance is negative ...
//! let v_ndr = 3.9;
//! assert!(rtd.differential_conductance(v_ndr, &mut flops) < 0.0);
//! // ... but the SWEC equivalent conductance is still positive.
//! assert!(rtd.equivalent_conductance(v_ndr, &mut flops) > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod constants;
pub mod diode;
pub mod error;
pub mod mosfet;
pub mod nanowire;
pub mod rtd;
pub mod rtt;
pub mod sources;
pub mod traits;

pub use diode::Diode;
pub use error::DeviceError;
pub use mosfet::{MosType, Mosfet};
pub use nanowire::Nanowire;
pub use rtd::Rtd;
pub use rtt::Rtt;
pub use sources::SourceWaveform;
pub use traits::NonlinearTwoTerminal;

/// Convenience alias for fallible device construction.
pub type Result<T> = std::result::Result<T, DeviceError>;
