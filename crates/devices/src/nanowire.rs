//! Quantum wire / carbon nanotube model with conductance quantization.
//!
//! The paper's Figure 1(b) shows the I-V characteristics of an individual
//! carbon nanotube: "the staircase characteristics of the conductance signal
//! confirms that the carbon nanotubes behave as quantum wires". Each 1D
//! subband that enters the transport window contributes one conductance
//! quantum `G0 = 2e²/h`; thermal smearing rounds the step edges.
//!
//! The model integrates the smeared conductance staircase analytically so
//! current and conductance are exactly consistent:
//!
//! ```text
//! I(V) = G0·n0·V + G0·w·Σ_k [ softplus((V - Vk)/w) - softplus((-V - Vk)/w) ]
//! G(V) = dI/dV = G0·n0 + G0·Σ_k [ σ((V - Vk)/w) + σ((-V - Vk)/w) ]
//! ```
//!
//! with `Vk = k·ΔV` the subband onsets, `σ` the logistic function, and `n0`
//! the number of channels already open at zero bias (2 for a metallic CNT's
//! two degenerate bands, but configurable).

use crate::constants::{ln_1p_exp, logistic, QUANTUM_CONDUCTANCE};
use crate::error::DeviceError;
use crate::traits::NonlinearTwoTerminal;
use crate::Result;
use nanosim_numeric::FlopCounter;

/// Parameters of the quantum-wire staircase model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NanowireParams {
    /// Conductance per channel (S). Defaults to `G0 = 2e²/h`.
    pub g_quantum: f64,
    /// Channels open at zero bias.
    pub base_channels: u32,
    /// Voltage spacing between successive subband onsets (V).
    pub step_voltage: f64,
    /// Number of additional subbands within the modeled range.
    pub num_steps: u32,
    /// Thermal smearing width of each step edge (V).
    pub smearing: f64,
}

impl NanowireParams {
    /// A metallic single-wall CNT: two base channels, subband steps every
    /// 0.5 V, 4 further subbands, 25 mV smearing — matches the shape of the
    /// paper's Figure 1(b).
    pub fn metallic_cnt() -> Self {
        NanowireParams {
            g_quantum: QUANTUM_CONDUCTANCE,
            base_channels: 2,
            step_voltage: 0.5,
            num_steps: 4,
            smearing: 0.025,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidParameter`] for non-positive
    /// `g_quantum`, `step_voltage` or `smearing`.
    pub fn validate(&self) -> Result<()> {
        let check = |name: &'static str, value: f64, ok: bool| {
            if ok && value.is_finite() {
                Ok(())
            } else {
                Err(DeviceError::InvalidParameter {
                    device: "nanowire",
                    parameter: name,
                    value,
                    requirement: "must be positive",
                })
            }
        };
        check("g_quantum", self.g_quantum, self.g_quantum > 0.0)?;
        check("step_voltage", self.step_voltage, self.step_voltage > 0.0)?;
        check("smearing", self.smearing, self.smearing > 0.0)
    }
}

impl Default for NanowireParams {
    fn default() -> Self {
        NanowireParams::metallic_cnt()
    }
}

/// A quantum wire / CNT two-terminal device.
///
/// # Example
/// ```
/// use nanosim_devices::nanowire::Nanowire;
/// use nanosim_devices::traits::NonlinearTwoTerminal;
/// use nanosim_numeric::FlopCounter;
///
/// let wire = Nanowire::metallic_cnt();
/// let mut flops = FlopCounter::new();
/// // Conductance climbs by ~one quantum per subband onset.
/// let g_low = wire.differential_conductance(0.1, &mut flops);
/// let g_high = wire.differential_conductance(2.3, &mut flops);
/// assert!(g_high > g_low * 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Nanowire {
    params: NanowireParams,
}

impl Nanowire {
    /// Creates a nanowire from validated parameters.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidParameter`] for out-of-range values.
    pub fn new(params: NanowireParams) -> Result<Self> {
        params.validate()?;
        Ok(Nanowire { params })
    }

    /// Metallic CNT defaults (paper Figure 1(b) shape).
    pub fn metallic_cnt() -> Self {
        Nanowire::new(NanowireParams::metallic_cnt()).expect("defaults are valid")
    }

    /// The model parameters.
    pub fn params(&self) -> &NanowireParams {
        &self.params
    }

    /// Number of (smeared) channels conducting at bias `v`.
    pub fn open_channels(&self, v: f64) -> f64 {
        let p = &self.params;
        let mut n = p.base_channels as f64;
        for k in 1..=p.num_steps {
            let vk = k as f64 * p.step_voltage;
            n += logistic((v - vk) / p.smearing) + logistic((-v - vk) / p.smearing);
        }
        n
    }
}

impl NonlinearTwoTerminal for Nanowire {
    fn current(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        let p = &self.params;
        let mut i = p.base_channels as f64 * v;
        flops.mul(1);
        for k in 1..=p.num_steps {
            let vk = k as f64 * p.step_voltage;
            // Odd-in-V integral of one smeared step pair.
            i +=
                p.smearing * (ln_1p_exp((v - vk) / p.smearing) - ln_1p_exp((-v - vk) / p.smearing));
            flops.func(2);
            flops.mul(2);
            flops.div(2);
            flops.add(4);
        }
        flops.mul(1);
        p.g_quantum * i
    }

    fn differential_conductance(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        let p = &self.params;
        flops.func(2 * p.num_steps as u64);
        flops.mul(p.num_steps as u64 * 2 + 1);
        flops.add(p.num_steps as u64 * 3);
        p.g_quantum * self.open_channels(v)
    }

    fn device_kind(&self) -> &'static str {
        "nanowire"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::approx_eq;

    fn flops() -> FlopCounter {
        FlopCounter::new()
    }

    #[test]
    fn zero_bias_zero_current() {
        let w = Nanowire::metallic_cnt();
        assert!(w.current(0.0, &mut flops()).abs() < 1e-18);
    }

    #[test]
    fn current_is_odd() {
        let w = Nanowire::metallic_cnt();
        for v in [0.2, 0.75, 1.3, 2.4] {
            let ip = w.current(v, &mut flops());
            let im = w.current(-v, &mut flops());
            assert!(approx_eq(ip, -im, 1e-12), "v={v}");
        }
    }

    #[test]
    fn conductance_is_staircase() {
        let w = Nanowire::metallic_cnt();
        let g0 = QUANTUM_CONDUCTANCE;
        // Plateau levels halfway between onsets: 2, 3, 4, 5 channels.
        for (v, channels) in [(0.25, 2.0), (0.75, 3.0), (1.25, 4.0), (1.75, 5.0)] {
            let g = w.differential_conductance(v, &mut flops());
            assert!(
                approx_eq(g, channels * g0, 1e-3),
                "v={v}: g={g}, expected {} G0",
                channels
            );
        }
    }

    #[test]
    fn conductance_monotone_nondecreasing_in_magnitude() {
        let w = Nanowire::metallic_cnt();
        let mut prev = 0.0;
        let mut v = 0.0;
        while v < 3.0 {
            let g = w.differential_conductance(v, &mut flops());
            assert!(g >= prev - 1e-9, "staircase dipped at v={v}");
            prev = g;
            v += 0.01;
        }
    }

    #[test]
    fn no_ndr_anywhere() {
        // Unlike the RTD, the quantum wire is monotone: gd >= 0 everywhere.
        let w = Nanowire::metallic_cnt();
        let mut v = -3.0;
        while v <= 3.0 {
            assert!(w.differential_conductance(v, &mut flops()) > 0.0);
            v += 0.05;
        }
    }

    #[test]
    fn geq_positive_and_below_gmax() {
        let w = Nanowire::metallic_cnt();
        let p = w.params();
        let gmax = p.g_quantum * (p.base_channels + p.num_steps) as f64 * 2.0;
        let mut v = -3.0;
        while v <= 3.0 {
            let g = w.equivalent_conductance(v, &mut flops());
            assert!(g > 0.0 && g < gmax, "v={v}, g={g}");
            v += 0.1;
        }
    }

    #[test]
    fn conductance_matches_current_derivative() {
        let w = Nanowire::metallic_cnt();
        let h = 1e-6;
        for v in [0.1, 0.5, 1.0, 1.9, 2.6] {
            let num = (w.current(v + h, &mut flops()) - w.current(v - h, &mut flops())) / (2.0 * h);
            let ana = w.differential_conductance(v, &mut flops());
            assert!(approx_eq(num, ana, 1e-5), "v={v}: {num} vs {ana}");
        }
    }

    #[test]
    fn open_channels_counts_base_at_zero() {
        let w = Nanowire::metallic_cnt();
        assert!(approx_eq(w.open_channels(0.0), 2.0, 1e-6));
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = NanowireParams {
            smearing: 0.0,
            ..NanowireParams::metallic_cnt()
        };
        assert!(Nanowire::new(bad).is_err());
        let bad = NanowireParams {
            step_voltage: -1.0,
            ..NanowireParams::metallic_cnt()
        };
        assert!(Nanowire::new(bad).is_err());
        let bad = NanowireParams {
            g_quantum: f64::INFINITY,
            ..NanowireParams::metallic_cnt()
        };
        assert!(Nanowire::new(bad).is_err());
    }

    #[test]
    fn flops_recorded() {
        let w = Nanowire::metallic_cnt();
        let mut f = flops();
        w.current(1.0, &mut f);
        assert!(f.funcs() >= 8, "2 softplus per step");
    }
}
