//! Resonant tunneling transistor (RTT) with multiple resonant peaks.
//!
//! Paper §2.1.1: "the different discrete energy levels of each material
//! within the transistor terminals act as barriers to current flow. Current
//! flows only when a modulated voltage aligns these energy levels. [...] The
//! resulting I-V characteristics exhibit multiple peaks with a staircase
//! contour" (Figure 1(a), `I_C` versus `V_CE`).
//!
//! The model sums one Schulman-style resonance term per discrete level and
//! adds the thermionic excess current; a logistic base-emitter coupling
//! modulates the resonant component so the device can be used as a
//! three-terminal switch (as in the RTD-D flip-flop's data input).

use crate::constants::{ln_1p_exp, logistic, thermal_voltage, ROOM_TEMPERATURE};
use crate::error::DeviceError;
use crate::traits::NonlinearTwoTerminal;
use crate::Result;
use nanosim_numeric::FlopCounter;
use std::f64::consts::FRAC_PI_2;

/// One resonant level of the RTT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resonance {
    /// Current scale of this resonance (A).
    pub amplitude: f64,
    /// Resonance center voltage parameter (V); the peak sits near
    /// `center/n1`.
    pub center: f64,
    /// Resonance linewidth (V).
    pub width: f64,
}

/// RTT model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RttParams {
    /// Energy-alignment offset shared by all resonances (V).
    pub b: f64,
    /// Voltage-division factor of the resonant levels.
    pub n1: f64,
    /// The discrete resonant levels (at least one).
    pub resonances: Vec<Resonance>,
    /// Excess (thermionic) current scale (A).
    pub h: f64,
    /// Ideality-like factor of the excess current.
    pub n2: f64,
    /// Temperature (K).
    pub temperature: f64,
    /// Base-emitter voltage at which the device turns half-on (V).
    pub vbe_on: f64,
    /// Logistic steepness of the gate coupling (V).
    pub vbe_slope: f64,
}

impl RttParams {
    /// A three-level RTT whose collector curve shows three peaks below 6 V,
    /// matching the multi-peak staircase of the paper's Figure 1(a).
    pub fn three_peak() -> Self {
        RttParams {
            b: 0.15,
            n1: 0.4,
            resonances: vec![
                Resonance {
                    amplitude: 8e-5,
                    center: 0.4,
                    width: 0.04,
                },
                Resonance {
                    amplitude: 6e-5,
                    center: 0.8,
                    width: 0.04,
                },
                Resonance {
                    amplitude: 5e-5,
                    center: 1.2,
                    width: 0.04,
                },
            ],
            h: 1e-8,
            n2: 0.05,
            temperature: ROOM_TEMPERATURE,
            vbe_on: 0.8,
            vbe_slope: 0.1,
        }
    }

    /// Validates the parameter ranges.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidParameter`] when no resonance is given
    /// or any scale parameter is out of range.
    pub fn validate(&self) -> Result<()> {
        if self.resonances.is_empty() {
            return Err(DeviceError::InvalidParameter {
                device: "rtt",
                parameter: "resonances",
                value: 0.0,
                requirement: "needs at least one resonant level",
            });
        }
        for r in &self.resonances {
            if !(r.amplitude > 0.0 && r.amplitude.is_finite()) {
                return Err(DeviceError::InvalidParameter {
                    device: "rtt",
                    parameter: "resonance.amplitude",
                    value: r.amplitude,
                    requirement: "must be positive",
                });
            }
            if !(r.width > 0.0 && r.width.is_finite()) {
                return Err(DeviceError::InvalidParameter {
                    device: "rtt",
                    parameter: "resonance.width",
                    value: r.width,
                    requirement: "must be positive",
                });
            }
        }
        if !(self.n1 > 0.0 && self.n1.is_finite()) {
            return Err(DeviceError::InvalidParameter {
                device: "rtt",
                parameter: "n1",
                value: self.n1,
                requirement: "must be positive",
            });
        }
        if !(self.vbe_slope > 0.0 && self.vbe_slope.is_finite()) {
            return Err(DeviceError::InvalidParameter {
                device: "rtt",
                parameter: "vbe_slope",
                value: self.vbe_slope,
                requirement: "must be positive",
            });
        }
        if !(self.temperature > 0.0) {
            return Err(DeviceError::InvalidParameter {
                device: "rtt",
                parameter: "temperature",
                value: self.temperature,
                requirement: "must be positive",
            });
        }
        Ok(())
    }
}

/// A resonant tunneling transistor evaluated at a fixed base-emitter bias.
///
/// The [`NonlinearTwoTerminal`] impl exposes the collector-emitter branch
/// `I_C(V_CE)` at the stored `V_BE`; engines set the gate bias through
/// [`Rtt::set_vbe`] when the base node voltage changes.
///
/// # Example
/// ```
/// use nanosim_devices::rtt::Rtt;
/// use nanosim_devices::traits::NonlinearTwoTerminal;
/// use nanosim_numeric::FlopCounter;
///
/// let rtt = Rtt::three_peak();
/// let mut flops = FlopCounter::new();
/// let peaks = rtt.peak_voltages();
/// assert!(peaks.len() >= 3, "multi-peak staircase (paper Figure 1(a))");
/// assert!(rtt.current(peaks[0], &mut flops) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rtt {
    params: RttParams,
    u: f64,
    vbe: f64,
}

impl Rtt {
    /// Creates an RTT from validated parameters, fully on (`V_BE` well above
    /// `vbe_on`).
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidParameter`] for out-of-range values.
    pub fn new(params: RttParams) -> Result<Self> {
        params.validate()?;
        let vbe = params.vbe_on + 10.0 * params.vbe_slope;
        Ok(Rtt {
            u: 1.0 / thermal_voltage(params.temperature),
            params,
            vbe,
        })
    }

    /// Three-peak default device (paper Figure 1(a) shape).
    pub fn three_peak() -> Self {
        Rtt::new(RttParams::three_peak()).expect("defaults valid")
    }

    /// The model parameters.
    pub fn params(&self) -> &RttParams {
        &self.params
    }

    /// Current base-emitter bias (V).
    pub fn vbe(&self) -> f64 {
        self.vbe
    }

    /// Sets the base-emitter bias used by subsequent collector evaluations.
    pub fn set_vbe(&mut self, vbe: f64) {
        self.vbe = vbe;
    }

    /// Gate modulation factor in `[0, 1]` at bias `vbe`.
    pub fn gate_factor(&self, vbe: f64) -> f64 {
        logistic((vbe - self.params.vbe_on) / self.params.vbe_slope)
    }

    /// Resonant component of the collector current at `vce` (before gate
    /// modulation).
    pub fn resonant_current(&self, vce: f64, flops: &mut FlopCounter) -> f64 {
        let p = &self.params;
        let mut total = 0.0;
        for r in &p.resonances {
            let arg_pos = self.u * (p.b - r.center + p.n1 * vce);
            let arg_neg = self.u * (p.b - r.center - p.n1 * vce);
            let log_ratio = ln_1p_exp(arg_pos) - ln_1p_exp(arg_neg);
            let bracket = FRAC_PI_2 + ((r.center - p.n1 * vce) / r.width).atan();
            total += r.amplitude * log_ratio * bracket;
            flops.func(3);
            flops.mul(9);
            flops.add(9);
            flops.div(1);
        }
        total
    }

    /// Approximate peak voltages of the collector I-V (grid scan of the
    /// differential conductance sign changes).
    pub fn peak_voltages(&self) -> Vec<f64> {
        let mut flops = FlopCounter::new();
        let v_max = 2.0
            * self
                .params
                .resonances
                .iter()
                .map(|r| r.center / self.params.n1)
                .fold(0.0f64, f64::max);
        let n = 3000;
        let dv = v_max / n as f64;
        let mut peaks = Vec::new();
        let mut prev = self.differential_conductance(dv * 0.5, &mut flops);
        for i in 1..n {
            let v = dv * (0.5 + i as f64);
            let cur = self.differential_conductance(v, &mut flops);
            if prev > 0.0 && cur <= 0.0 {
                peaks.push(v - 0.5 * dv);
            }
            prev = cur;
        }
        peaks
    }
}

impl NonlinearTwoTerminal for Rtt {
    fn current(&self, vce: f64, flops: &mut FlopCounter) -> f64 {
        let p = &self.params;
        let gate = self.gate_factor(self.vbe);
        flops.func(1);
        flops.mul(2);
        flops.add(2);
        let excess = p.h * ((self.u * p.n2 * vce).exp() - 1.0);
        flops.func(1);
        flops.mul(3);
        flops.add(1);
        gate * self.resonant_current(vce, flops) + excess
    }

    fn differential_conductance(&self, vce: f64, flops: &mut FlopCounter) -> f64 {
        // Analytic per-resonance derivative.
        let p = &self.params;
        let gate = self.gate_factor(self.vbe);
        let mut total = 0.0;
        for r in &p.resonances {
            let arg_pos = self.u * (p.b - r.center + p.n1 * vce);
            let arg_neg = self.u * (p.b - r.center - p.n1 * vce);
            let log_ratio = ln_1p_exp(arg_pos) - ln_1p_exp(arg_neg);
            let dlog = self.u * p.n1 * (logistic(arg_pos) + logistic(arg_neg));
            let x = (r.center - p.n1 * vce) / r.width;
            let bracket = FRAC_PI_2 + x.atan();
            let dbracket = -(p.n1 / r.width) / (1.0 + x * x);
            total += r.amplitude * (dlog * bracket + log_ratio * dbracket);
            flops.func(5);
            flops.mul(14);
            flops.add(11);
            flops.div(2);
        }
        let dexcess = p.h * self.u * p.n2 * (self.u * p.n2 * vce).exp();
        flops.func(2);
        flops.mul(6);
        flops.add(1);
        gate * total + dexcess
    }

    fn device_kind(&self) -> &'static str {
        "rtt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::approx_eq;

    fn flops() -> FlopCounter {
        FlopCounter::new()
    }

    #[test]
    fn zero_bias_zero_current() {
        let rtt = Rtt::three_peak();
        assert!(rtt.current(0.0, &mut flops()).abs() < 1e-18);
    }

    #[test]
    fn three_peaks_found() {
        let rtt = Rtt::three_peak();
        let peaks = rtt.peak_voltages();
        assert!(peaks.len() >= 3, "found {} peaks", peaks.len());
        // Peaks are ordered and distinct.
        for w in peaks.windows(2) {
            assert!(w[1] > w[0] + 0.1);
        }
    }

    #[test]
    fn staircase_has_ndr_between_peaks() {
        let rtt = Rtt::three_peak();
        let peaks = rtt.peak_voltages();
        let mid = 0.5 * (peaks[0] + peaks[1]);
        // Between peak 1 and peak 2 there is a valley: gd < 0 right after
        // peak 1 ...
        assert!(rtt.differential_conductance(peaks[0] + 0.05, &mut flops()) < 0.0);
        // ... but the SWEC conductance is positive there (key invariant).
        assert!(rtt.equivalent_conductance(peaks[0] + 0.05, &mut flops()) > 0.0);
        assert!(rtt.equivalent_conductance(mid, &mut flops()) > 0.0);
    }

    #[test]
    fn differential_conductance_matches_finite_difference() {
        let rtt = Rtt::three_peak();
        let h = 1e-7;
        for v in [0.5, 1.2, 2.0, 3.1, 4.4] {
            let num =
                (rtt.current(v + h, &mut flops()) - rtt.current(v - h, &mut flops())) / (2.0 * h);
            let ana = rtt.differential_conductance(v, &mut flops());
            assert!(approx_eq(num, ana, 1e-4), "v={v}: {num} vs {ana}");
        }
    }

    #[test]
    fn gate_turns_the_device_off() {
        let mut rtt = Rtt::three_peak();
        let peaks = rtt.peak_voltages();
        let v = peaks[0];
        let i_on = rtt.current(v, &mut flops());
        rtt.set_vbe(0.0);
        let i_off = rtt.current(v, &mut flops());
        assert!(
            i_off < i_on * 0.01,
            "gated off current {i_off} vs on {i_on}"
        );
        assert_eq!(rtt.vbe(), 0.0);
    }

    #[test]
    fn gate_factor_is_logistic() {
        let rtt = Rtt::three_peak();
        assert!(approx_eq(rtt.gate_factor(rtt.params().vbe_on), 0.5, 1e-12));
        assert!(rtt.gate_factor(5.0) > 0.99);
        assert!(rtt.gate_factor(-5.0) < 0.01);
    }

    #[test]
    fn geq_positive_across_sweep() {
        let rtt = Rtt::three_peak();
        let mut v = 0.05;
        while v < 6.0 {
            assert!(rtt.equivalent_conductance(v, &mut flops()) > 0.0, "v={v}");
            v += 0.05;
        }
    }

    #[test]
    fn empty_resonances_rejected() {
        let bad = RttParams {
            resonances: vec![],
            ..RttParams::three_peak()
        };
        assert!(Rtt::new(bad).is_err());
    }

    #[test]
    fn invalid_resonance_rejected() {
        let mut p = RttParams::three_peak();
        p.resonances[0].width = 0.0;
        assert!(Rtt::new(p).is_err());
        let mut p = RttParams::three_peak();
        p.resonances[1].amplitude = -1.0;
        assert!(Rtt::new(p).is_err());
    }

    #[test]
    fn flops_recorded() {
        let rtt = Rtt::three_peak();
        let mut f = flops();
        rtt.current(1.0, &mut f);
        assert!(f.funcs() >= 9, "3 resonances x 3 funcs plus excess");
    }
}
