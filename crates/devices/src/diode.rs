//! Shockley diode model.
//!
//! Not a nano-device, but every SPICE-class simulator carries one; it is
//! used here for parser coverage, Newton-baseline tests (a monotone device
//! NR handles easily, in contrast to the RTD) and hybrid workloads.

use crate::constants::{thermal_voltage, ROOM_TEMPERATURE};
use crate::error::DeviceError;
use crate::traits::NonlinearTwoTerminal;
use crate::Result;
use nanosim_numeric::FlopCounter;

/// Shockley diode parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiodeParams {
    /// Saturation current `I_S` (A).
    pub saturation_current: f64,
    /// Ideality factor `n`.
    pub ideality: f64,
    /// Temperature (K).
    pub temperature: f64,
}

impl DiodeParams {
    /// Small-signal silicon diode: `I_S = 1e-14 A`, `n = 1`, 300 K.
    pub fn silicon() -> Self {
        DiodeParams {
            saturation_current: 1e-14,
            ideality: 1.0,
            temperature: ROOM_TEMPERATURE,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidParameter`] for non-positive
    /// `saturation_current`, `ideality` or `temperature`.
    pub fn validate(&self) -> Result<()> {
        let check = |name: &'static str, value: f64, ok: bool| {
            if ok && value.is_finite() {
                Ok(())
            } else {
                Err(DeviceError::InvalidParameter {
                    device: "diode",
                    parameter: name,
                    value,
                    requirement: "must be positive",
                })
            }
        };
        check(
            "saturation_current",
            self.saturation_current,
            self.saturation_current > 0.0,
        )?;
        check("ideality", self.ideality, self.ideality > 0.0)?;
        check("temperature", self.temperature, self.temperature > 0.0)
    }
}

impl Default for DiodeParams {
    fn default() -> Self {
        DiodeParams::silicon()
    }
}

/// A Shockley diode: `I = I_S·(e^{V/(n·V_T)} - 1)`.
///
/// The exponential is linearized above `v_explode` (40 thermal voltages) to
/// keep Newton iterations finite — the standard SPICE "junction limiting".
///
/// # Example
/// ```
/// use nanosim_devices::diode::Diode;
/// use nanosim_devices::traits::NonlinearTwoTerminal;
/// use nanosim_numeric::FlopCounter;
///
/// let d = Diode::silicon();
/// let mut flops = FlopCounter::new();
/// assert!(d.current(0.7, &mut flops) > 1e-4);
/// assert!(d.current(-0.7, &mut flops) < 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Diode {
    params: DiodeParams,
    n_vt: f64,
    v_explode: f64,
}

impl Diode {
    /// Creates a diode from validated parameters.
    ///
    /// # Errors
    /// Returns [`DeviceError::InvalidParameter`] for out-of-range values.
    pub fn new(params: DiodeParams) -> Result<Self> {
        params.validate()?;
        let n_vt = params.ideality * thermal_voltage(params.temperature);
        Ok(Diode {
            params,
            n_vt,
            v_explode: 40.0 * n_vt,
        })
    }

    /// Silicon defaults.
    pub fn silicon() -> Self {
        Diode::new(DiodeParams::silicon()).expect("defaults valid")
    }

    /// The model parameters.
    pub fn params(&self) -> &DiodeParams {
        &self.params
    }

    /// `n·V_T` in volts.
    pub fn n_vt(&self) -> f64 {
        self.n_vt
    }
}

impl NonlinearTwoTerminal for Diode {
    fn current(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        let is = self.params.saturation_current;
        flops.div(1);
        flops.func(1);
        flops.add(1);
        flops.mul(1);
        if v <= self.v_explode {
            is * ((v / self.n_vt).exp() - 1.0)
        } else {
            // Linear continuation beyond the explosion voltage.
            let ie = is * ((self.v_explode / self.n_vt).exp() - 1.0);
            let ge = is / self.n_vt * (self.v_explode / self.n_vt).exp();
            flops.fma(1);
            ie + ge * (v - self.v_explode)
        }
    }

    fn differential_conductance(&self, v: f64, flops: &mut FlopCounter) -> f64 {
        let is = self.params.saturation_current;
        flops.div(2);
        flops.func(1);
        flops.mul(1);
        let v_eff = v.min(self.v_explode);
        is / self.n_vt * (v_eff / self.n_vt).exp()
    }

    fn device_kind(&self) -> &'static str {
        "diode"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanosim_numeric::approx_eq;

    fn flops() -> FlopCounter {
        FlopCounter::new()
    }

    #[test]
    fn zero_bias_zero_current() {
        let d = Diode::silicon();
        assert_eq!(d.current(0.0, &mut flops()), 0.0);
    }

    #[test]
    fn reverse_bias_saturates() {
        let d = Diode::silicon();
        let i = d.current(-5.0, &mut flops());
        assert!(approx_eq(i, -1e-14, 1e-6));
    }

    #[test]
    fn forward_bias_exponential() {
        let d = Diode::silicon();
        let i1 = d.current(0.6, &mut flops());
        let i2 = d.current(0.66, &mut flops());
        // 60 mV/decade at n=1, 300K: one decade of current.
        assert!(i2 / i1 > 8.0 && i2 / i1 < 12.0, "ratio {}", i2 / i1);
    }

    #[test]
    fn conductance_matches_finite_difference() {
        let d = Diode::silicon();
        let h = 1e-8;
        for v in [-1.0, 0.0, 0.3, 0.6] {
            let num = (d.current(v + h, &mut flops()) - d.current(v - h, &mut flops())) / (2.0 * h);
            let ana = d.differential_conductance(v, &mut flops());
            assert!(approx_eq(num, ana, 1e-4), "v={v}: {num} vs {ana}");
        }
    }

    #[test]
    fn current_continuous_at_explosion_voltage() {
        let d = Diode::silicon();
        let ve = 40.0 * d.n_vt();
        let below = d.current(ve - 1e-9, &mut flops());
        let above = d.current(ve + 1e-9, &mut flops());
        assert!(approx_eq(below, above, 1e-6));
        // No overflow far beyond.
        assert!(d.current(1000.0, &mut flops()).is_finite());
    }

    #[test]
    fn geq_positive_everywhere() {
        let d = Diode::silicon();
        for v in [-3.0, -0.5, 0.3, 0.7, 1.0] {
            assert!(d.equivalent_conductance(v, &mut flops()) > 0.0, "v={v}");
        }
    }

    #[test]
    fn monotone_no_ndr() {
        let d = Diode::silicon();
        let mut v = -2.0;
        while v < 1.0 {
            assert!(d.differential_conductance(v, &mut flops()) > 0.0);
            v += 0.05;
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let bad = DiodeParams {
            saturation_current: 0.0,
            ..DiodeParams::silicon()
        };
        assert!(Diode::new(bad).is_err());
        let bad = DiodeParams {
            ideality: -1.0,
            ..DiodeParams::silicon()
        };
        assert!(Diode::new(bad).is_err());
    }
}
