//! Device construction and evaluation errors.

use std::error::Error;
use std::fmt;

/// Errors raised when a device model is constructed with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A model parameter was out of its physical range.
    InvalidParameter {
        /// Device type ("rtd", "mosfet", ...).
        device: &'static str,
        /// Parameter name as in the datasheet/equation.
        parameter: &'static str,
        /// The offending value.
        value: f64,
        /// What the model requires.
        requirement: &'static str,
    },
    /// A waveform specification was inconsistent (e.g. PWL with unsorted
    /// time points).
    InvalidWaveform {
        /// Human-readable description.
        context: String,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter {
                device,
                parameter,
                value,
                requirement,
            } => write!(
                f,
                "invalid {device} parameter {parameter} = {value}: {requirement}"
            ),
            DeviceError::InvalidWaveform { context } => {
                write!(f, "invalid waveform: {context}")
            }
        }
    }
}

impl Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter() {
        let e = DeviceError::InvalidParameter {
            device: "rtd",
            parameter: "d",
            value: -1.0,
            requirement: "must be positive",
        };
        let s = e.to_string();
        assert!(s.contains("rtd"));
        assert!(s.contains('d'));
        assert!(s.contains("positive"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
    }
}
