//! Property-based tests for the device models.
//!
//! The invariants here are the physical facts the Nano-Sim engines rely on:
//! passivity (`sign(I) == sign(V)`), positivity of the step-wise equivalent
//! conductance, and consistency between analytic derivatives and finite
//! differences.

use nanosim_devices::diode::Diode;
use nanosim_devices::mosfet::{Mosfet, MosfetParams};
use nanosim_devices::nanowire::{Nanowire, NanowireParams};
use nanosim_devices::rtd::{Rtd, RtdParams};
use nanosim_devices::rtt::Rtt;
use nanosim_devices::sources::{PulseParams, SourceWaveform};
use nanosim_devices::traits::NonlinearTwoTerminal;
use nanosim_numeric::FlopCounter;
use proptest::prelude::*;

fn flops() -> FlopCounter {
    FlopCounter::new()
}

/// Random-but-physical RTD parameter sets.
fn rtd_params() -> impl Strategy<Value = RtdParams> {
    (
        1e-5f64..1e-3, // a
        0.05f64..0.5,  // b
        0.3f64..2.0,   // c
        0.03f64..0.5,  // d
        1e-9f64..1e-6, // h
        0.2f64..0.6,   // n1
        0.01f64..0.1,  // n2
    )
        .prop_map(|(a, b, c, d, h, n1, n2)| RtdParams {
            a,
            b,
            c,
            d,
            h,
            n1,
            n2,
            temperature: 300.0,
        })
}

proptest! {
    /// RTDs are passive: current has the sign of the voltage, so the SWEC
    /// conductance I/V is positive — the paper's core claim in §3.2.
    #[test]
    fn rtd_geq_always_positive(params in rtd_params(), v in -6.0f64..6.0) {
        let rtd = Rtd::new(params).unwrap();
        let g = rtd.equivalent_conductance(v, &mut flops());
        prop_assert!(g > 0.0, "Geq({v}) = {g} for {params:?}");
    }

    /// Analytic dI/dV of the Schulman model matches a finite difference.
    #[test]
    fn rtd_derivative_consistent(params in rtd_params(), v in -5.0f64..5.0) {
        let rtd = Rtd::new(params).unwrap();
        let h = 1e-7 * (1.0 + v.abs());
        let num = (rtd.current(v + h, &mut flops()) - rtd.current(v - h, &mut flops())) / (2.0 * h);
        let ana = rtd.differential_conductance(v, &mut flops());
        let scale = num.abs().max(ana.abs()).max(1e-12);
        prop_assert!((num - ana).abs() / scale < 1e-3, "v={v}: {num} vs {ana}");
    }

    /// dGeq/dV (paper eq. 7-8) is consistent with differentiating Geq.
    #[test]
    fn rtd_dgeq_consistent(params in rtd_params(), v in 0.2f64..5.0) {
        let rtd = Rtd::new(params).unwrap();
        let h = 1e-6;
        let num = (rtd.equivalent_conductance(v + h, &mut flops())
            - rtd.equivalent_conductance(v - h, &mut flops()))
            / (2.0 * h);
        let ana = rtd.d_equivalent_conductance_dv(v, &mut flops());
        let scale = num.abs().max(ana.abs()).max(1e-9);
        prop_assert!((num - ana).abs() / scale < 1e-3, "v={v}: {num} vs {ana}");
    }

    /// The resonant component is passive: it sinks current in the direction
    /// of the applied voltage at every bias (its magnitude is asymmetric in
    /// V — real RTDs are not symmetric devices — but its sign follows V).
    #[test]
    fn rtd_j1_passive(params in rtd_params(), v in 0.01f64..5.0) {
        let rtd = Rtd::new(params).unwrap();
        let p = rtd.current_j1(v, &mut flops());
        let m = rtd.current_j1(-v, &mut flops());
        prop_assert!(p > 0.0, "J1({v}) = {p}");
        prop_assert!(m < 0.0, "J1(-{v}) = {m}");
    }

    /// Nanowire conductance never decreases with |V| and never exceeds the
    /// fully-open channel count.
    #[test]
    fn nanowire_staircase_bounds(
        steps in 1u32..8,
        dv in 0.2f64..1.0,
        w in 0.005f64..0.1,
        v in -4.0f64..4.0
    ) {
        let wire = Nanowire::new(NanowireParams {
            base_channels: 1,
            step_voltage: dv,
            num_steps: steps,
            smearing: w,
            ..NanowireParams::metallic_cnt()
        })
        .unwrap();
        let g = wire.differential_conductance(v, &mut flops());
        let g0 = wire.params().g_quantum;
        prop_assert!(g >= g0 * 0.9);
        prop_assert!(g <= g0 * (1.0 + 2.0 * steps as f64) + 1e-12);
    }

    /// MOSFET: Geq equals Ids/Vds whenever Vds is nonzero (paper eq. 3).
    #[test]
    fn mosfet_geq_is_secant(vgs in -1.0f64..6.0, vds in 0.01f64..6.0) {
        let fet = Mosfet::new(MosfetParams::nmos_default()).unwrap();
        let i = fet.ids(vgs, vds, &mut flops());
        let g = fet.geq(vgs, vds, &mut flops());
        prop_assert!((g - i / vds).abs() < 1e-12 * (1.0 + g.abs()));
        prop_assert!(g >= 0.0);
    }

    /// MOSFET current is continuous in Vds (no jump at the region boundary).
    #[test]
    fn mosfet_current_continuous(vgs in 1.0f64..6.0, vds in 0.0f64..6.0) {
        let fet = Mosfet::new(MosfetParams::nmos_default()).unwrap();
        let h = 1e-7;
        let below = fet.ids(vgs, vds - h, &mut flops());
        let above = fet.ids(vgs, vds + h, &mut flops());
        prop_assert!((above - below).abs() < 1e-6);
    }

    /// Diode passivity and monotonicity (non-strict in deep reverse bias
    /// where the exponential underflows to exactly -Is).
    #[test]
    fn diode_monotone(v1 in -2.0f64..1.0, dv in 0.001f64..0.5) {
        let d = Diode::silicon();
        let i1 = d.current(v1, &mut flops());
        let i2 = d.current(v1 + dv, &mut flops());
        prop_assert!(i2 >= i1);
        if v1 > -0.3 {
            prop_assert!(i2 > i1, "strictly increasing near and above zero bias");
        }
        prop_assert!(d.equivalent_conductance(v1, &mut flops()) > 0.0);
    }

    /// RTT equivalent conductance stays positive over bias and gate sweeps.
    #[test]
    fn rtt_geq_positive(v in 0.05f64..6.0, vbe in -1.0f64..2.0) {
        let mut rtt = Rtt::three_peak();
        rtt.set_vbe(vbe);
        prop_assert!(rtt.equivalent_conductance(v, &mut flops()) > 0.0);
    }

    /// Pulse waveform values stay within [min(v1,v2), max(v1,v2)].
    #[test]
    fn pulse_bounded(
        v1 in -5.0f64..5.0,
        v2 in -5.0f64..5.0,
        t in 0.0f64..1e-6
    ) {
        let s = SourceWaveform::pulse(PulseParams {
            v1,
            v2,
            delay: 10e-9,
            rise: 1e-9,
            fall: 2e-9,
            width: 20e-9,
            period: 100e-9,
        })
        .unwrap();
        let lo = v1.min(v2) - 1e-12;
        let hi = v1.max(v2) + 1e-12;
        let val = s.value(t);
        prop_assert!(val >= lo && val <= hi, "value {val} outside [{lo}, {hi}]");
    }

    /// Waveform slew is the numerical derivative of value (away from
    /// breakpoints).
    #[test]
    fn pulse_slew_consistent(t in 0.0f64..1e-6) {
        let s = SourceWaveform::pulse(PulseParams {
            v1: 0.0,
            v2: 5.0,
            delay: 10e-9,
            rise: 4e-9,
            fall: 4e-9,
            width: 30e-9,
            period: 100e-9,
        })
        .unwrap();
        let h = 1e-13;
        let num = (s.value(t + h) - s.value(t - h)) / (2.0 * h);
        let ana = s.slew(t);
        // Allow mismatch only right at the corner points.
        if (num - ana).abs() > 1.0 {
            let tt = ((t - 10e-9).rem_euclid(100e-9)) / 1e-9;
            let near_corner = [0.0, 4.0, 34.0, 38.0, 100.0]
                .iter()
                .any(|&c| (tt - c).abs() < 0.01);
            prop_assert!(near_corner, "slew mismatch at t={t}: {num} vs {ana}");
        }
    }
}
