//! Figure 7 reproduction: DC I-V of (a) the RTD divider and (b) the
//! nanowire divider, captured by SWEC, with the MLA baseline overlaid for
//! the RTD (exactly the comparison the paper plots). Both engines run as
//! typed analyses of the same `Simulator` session.
//!
//! Run with: `cargo run --release --example dc_sweep`

use nanosim::prelude::*;

fn main() -> Result<(), SimError> {
    // (a) RTD divider, swept through the full NDR region.
    let mut sim = Simulator::new(nanosim::workloads::rtd_divider(50.0))?;
    let swec = sim.run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.02))?;
    let mla = sim.run(Analysis::mla_dc_sweep("V1", 0.0, 5.0, 0.02))?;

    let swec_iv = swec.curve("I(X1)").expect("recorded");
    let mla_iv = mla.curve("I(X1)").expect("recorded");
    println!("Figure 7(a): RTD I-V by SWEC");
    println!("{}", swec_iv.ascii_plot(12, 60));

    let rms = swec_iv.rms_difference(&mla_iv);
    let peak = mla_iv.peak().expect("peak").1;
    println!(
        "SWEC vs MLA agreement: rms difference {:.3e} A ({:.2}% of peak)\n",
        rms,
        100.0 * rms / peak
    );
    println!("SWEC cost: {}", swec.stats);
    println!("MLA  cost: {}", mla.stats);
    println!(
        "flop ratio (MLA/SWEC): {:.1}x\n",
        mla.stats.flops.total() as f64 / swec.stats.flops.total() as f64
    );

    // (b) Nanowire divider: the staircase quantum-wire curve.
    let mut nw_sim = Simulator::new(nanosim::workloads::nanowire_divider(100.0))?;
    let nw = nw_sim.run(Analysis::dc_sweep("V1", -2.5, 2.5, 0.02))?;
    let nw_iv = nw.curve("I(W1)").expect("recorded");
    println!("Figure 7(b): nanowire I-V by SWEC");
    println!("{}", nw_iv.ascii_plot(12, 60));
    println!(
        "conductance quantization: I(2.5 V)/I(0.6 V) = {:.2} (channel steps opening)",
        nw_iv.value_at(2.5) / nw_iv.value_at(0.6)
    );
    Ok(())
}
