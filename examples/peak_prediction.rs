//! §4.2's closing analogy, made concrete: "Following the Black-Scholes
//! approach, we can predict the peak performance within certain time
//! window. A close analogy to this problem is the stock price prediction."
//!
//! This example walks the full chain: closed-form Black–Scholes pricing on
//! GBM, the reflection-principle peak bound for Brownian motion, and the
//! Monte-Carlo peak estimate for the nanocircuit's OU response — showing
//! that all three are the same machinery at different levels of analytic
//! tractability.
//!
//! Run with: `cargo run --release --example peak_prediction`

use nanosim::prelude::*;
use nanosim::sde::gbm::{black_scholes_call, GeometricBrownianMotion};
use nanosim::sde::ou::OrnsteinUhlenbeck;
use nanosim::sde::peak::{
    brownian_expected_peak, brownian_peak_probability, monte_carlo_peak, ou_peak,
};
use nanosim::sde::wiener::WienerPath;
use nanosim_numeric::rng::Pcg64;

fn main() -> Result<(), SimError> {
    // --- Level 1: the stock-price analogy, fully analytic ---------------
    println!("1. Black-Scholes (the paper's stock-price analogy)");
    let (spot, strike, rate, vol, maturity) = (100.0, 105.0, 0.03, 0.25, 0.5);
    let price = black_scholes_call(spot, strike, rate, vol, maturity);
    println!("   call(S=100, K=105, r=3%, sigma=25%, T=0.5) = {price:.4}");
    // Monte-Carlo confirmation on exact GBM paths.
    let gbm = GeometricBrownianMotion::new(rate, vol);
    let mut rng = Pcg64::seed_from_u64(1);
    let mut payoff_sum = 0.0;
    let n_paths = 20_000;
    for _ in 0..n_paths {
        let p = WienerPath::generate(maturity, 1, &mut rng);
        let terminal = *gbm.exact_path(spot, &p).last().expect("nonempty");
        payoff_sum += (terminal - strike).max(0.0);
    }
    let mc = (-rate * maturity).exp() * payoff_sum / n_paths as f64;
    println!("   Monte-Carlo on exact GBM paths:               {mc:.4}");

    // --- Level 2: Brownian peak, reflection principle --------------------
    println!("\n2. Reflection principle: P(max W >= a) in a window");
    let (sigma, horizon, level) = (1.0, 1.0, 1.5);
    let analytic = brownian_peak_probability(0.0, sigma, horizon, level);
    let mc = monte_carlo_peak(
        || {
            let p = WienerPath::generate(horizon, 512, &mut rng);
            p.values().to_vec()
        },
        8000,
        Some(level),
    );
    println!("   analytic  P(max >= {level}) = {analytic:.4}");
    println!(
        "   monte-carlo             = {:.4} (mean peak {:.3}, analytic E[max] {:.3})",
        mc.exceedance.expect("level given"),
        mc.mean_peak,
        brownian_expected_peak(sigma, horizon)
    );

    // --- Level 3: the nanocircuit (OU response) -------------------------
    println!("\n3. Nanocircuit peak (the paper's Figure 10 question)");
    let mut sim = Simulator::new(nanosim::workloads::noisy_rc_node_fig10())?;
    let ensemble = sim.run(Analysis::em_ensemble(1e-9).options(EmOptions {
        dt: 2e-12,
        paths: 400,
        seed: 7,
        ..EmOptions::default()
    }))?;
    let summary = ensemble.peak_summary("v").expect("node exists");
    println!(
        "   circuit EM ensemble:  mean peak {:.3} V, p95 {:.3} V",
        summary.mean_peak, summary.p95_peak
    );
    // The same statistics from exact OU sampling (no circuit machinery).
    let ou = OrnsteinUhlenbeck::from_rc_node(1e-3, 1e-12, 0.85e-3, 2.2e-9);
    let est = ou_peak(&ou, 0.0, 1e-9, 500, 4000, Some(0.6), &mut rng);
    println!(
        "   exact OU sampling:    mean peak {:.3} V, p95 {:.3} V, P(>= 0.6 V) = {:.2}",
        est.mean_peak,
        est.p95,
        est.exceedance.expect("level given")
    );
    println!("\nsame question at every level: what is the distribution of the");
    println!("running maximum inside the window — stock price or node voltage.");
    Ok(())
}
