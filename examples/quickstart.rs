//! Quickstart: sweep the paper's RTD divider (Figure 7(a)) through the
//! `Simulator` session API and print the captured I-V curve, its
//! peak/valley, and the cost accounting that backs the paper's Table I.
//!
//! Run with: `cargo run --release --example quickstart`

use nanosim::prelude::*;

fn main() -> Result<(), SimError> {
    // The paper's DC workload: V1 --- 50 ohm --- RTD (Schulman, the exact
    // §5.2 parameter set) --- ground.
    let circuit = nanosim::workloads::rtd_divider(50.0);
    println!("circuit: {}", circuit.summary());

    let mut sim = Simulator::new(circuit)?;
    let sweep = sim.run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.02))?;

    let iv = sweep.curve("I(X1)").expect("device current is recorded");
    let (v_peak, i_peak) = iv.peak().expect("the RTD has a current peak");
    println!("\nRTD I-V captured by SWEC (current vs source voltage):");
    println!("{}", iv.ascii_plot(14, 64));
    println!("peak: {:.3} mA at V1 = {:.2} V", i_peak * 1e3, v_peak);

    // The mid node shows the NDR jump as the load line crosses the peak.
    let v_mid = sweep.at("mid", 5.0).expect("node voltage recorded");
    println!(
        "RTD terminal voltage at V1 = 5 V: {:.3} V (region: {:?})",
        v_mid,
        Rtd::date2005().region(v_mid)
    );

    // SWEC is non-iterative: about one linear solve per sweep point.
    println!("\ncost: {}", sweep.stats);
    println!(
        "solves per point: {:.2}",
        sweep.stats.linear_solves as f64 / sweep.points() as f64
    );

    // Scale-out is an execution plan, not a different engine — and the
    // sharded sweep is bit-identical to the serial one.
    let sharded = sim.run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.02).plan(ExecPlan::sharded(0)))?;
    assert_eq!(sweep.column("I(X1)"), sharded.column("I(X1)"));
    println!(
        "sharded over all cores: {:.3} ms (serial {:.3} ms), bit-identical",
        sharded.stats.elapsed.as_secs_f64() * 1e3,
        sweep.stats.elapsed.as_secs_f64() * 1e3
    );
    Ok(())
}
