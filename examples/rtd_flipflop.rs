//! Figure 9 reproduction: the RTD D-flip-flop (MOBILE-style clocked latch).
//! The data input switches at t = 300 ns while the clock is low; the output
//! follows at the next rising clock edge at t = 350 ns — the paper's
//! "captured the right behavior of the circuit".
//!
//! Run with: `cargo run --release --example rtd_flipflop`

use nanosim::prelude::*;

fn main() -> Result<(), SimError> {
    let circuit = nanosim::workloads::rtd_d_flip_flop();
    println!("circuit: {}", circuit.summary());

    let mut sim = Simulator::new(circuit)?;
    let result = sim.run(Analysis::transient(0.2e-9, 500e-9))?;
    let out = result.curve("out").expect("node exists");
    let clk = result.curve("clk").expect("node exists");
    let d = result.curve("d").expect("node exists");

    println!("\nclock (Figure 9(b)):");
    println!("{}", clk.ascii_plot(8, 64));
    println!("data and output (Figure 9(c)):");
    println!("{}", out.ascii_plot(10, 64));

    // Sample the latch level in the middle of each clock-high phase.
    println!("clock-high phase levels:");
    for k in 0..5 {
        let t_mid = (70.0 + 100.0 * k as f64) * 1e-9;
        println!(
            "  cycle {k}: t = {:5.0} ns  D = {:.1} V  Q = {:.2} V",
            t_mid * 1e9,
            d.value_at(t_mid),
            out.value_at(t_mid)
        );
    }

    let q_before = out.value_at(270e-9);
    let q_after = out.value_at(370e-9);
    println!(
        "\nD switches at 300 ns; Q moves from {:.2} V to {:.2} V at the 350 ns rising edge",
        q_before, q_after
    );
    assert!(
        q_after > q_before + 1.0,
        "the latch must visibly switch at the clock edge"
    );
    println!("cost: {}", result.stats);
    Ok(())
}
