//! Parse a SPICE-like netlist (with the paper's RTD model card) and run
//! every analysis directive it contains through one `Simulator` session —
//! every result is the same `Dataset` shape regardless of directive kind.
//!
//! Run with: `cargo run --release --example netlist_run`

use nanosim::prelude::*;

const DECK: &str = "\
* fet-rtd inverter deck (paper fig. 8a)
.model mrtd RTD (a=1e-4 b=2 c=1.5 d=0.3 n1=0.35 n2=0.0172 h=1.43e-8)
.model mn   NMOS (kp=1e-4 w=100 l=1 vto=1)
Vdd vdd 0 DC 5
Vin in  0 PULSE(0 5 5n 1n 1n 44n 100n)
YRTD1 vdd out mrtd
YRTD2 out 0   mrtd
M1 out in 0 mn
CL out 0 10f
Cin in 0 1f
.tran 0.2n 100n
.dc Vdd 0 5 0.05
.end
";

fn main() -> Result<(), SimError> {
    let deck = parse_netlist(DECK)?;
    println!(
        "parsed `{}`: {}",
        deck.circuit.title().unwrap_or("untitled"),
        deck.circuit.summary()
    );

    // The one-call deck runner executes every directive with SWEC and
    // returns one `Dataset` per directive.
    for (directive, result) in deck.analyses.iter().zip(run_deck(&deck)?) {
        match result.kind() {
            AnalysisKind::Tran => {
                let AnalysisDirective::Tran { tstep, tstop } = directive else {
                    unreachable!("directive/result order matches");
                };
                let out = result.curve("out").expect("node exists");
                println!(
                    "\n.tran {tstep:.1e} {tstop:.1e} -> {} points",
                    result.points()
                );
                println!("{}", out.ascii_plot(10, 60));
                println!(
                    "out rise time (0 -> 2.5 V levels): {:?} s",
                    out.rise_time(0.183, 2.5)
                );
            }
            AnalysisKind::Dc => {
                println!(
                    "\n.dc -> out({:.2} V final sweep value) = {:.3} V over {} points",
                    result.axis_values().last().expect("nonempty"),
                    result.value("out").expect("node exists"),
                    result.points()
                );
            }
            AnalysisKind::Op => {
                println!("\n.op ->");
                for name in result.names() {
                    println!("  {name:>10} = {:.6}", result.value(name).expect("listed"));
                }
            }
            other => unreachable!("netlist directives never produce {other}"),
        }
    }

    // Round-trip: write the circuit back out and re-parse it.
    let text = nanosim::circuit::write_netlist(&deck.circuit);
    let again = parse_netlist(&text)?;
    println!(
        "\nwriter round-trip: {} elements -> {} elements",
        deck.circuit.elements().len(),
        again.circuit.elements().len()
    );
    Ok(())
}
