//! Figure 10 reproduction: the Euler–Maruyama method on a nanoscale node
//! with parasitic RC driven by an uncertain (white-noise) input, compared
//! against the exact Ornstein–Uhlenbeck solution of the *same* Wiener path,
//! plus the peak ("performance") prediction of §4.2.
//!
//! The ensemble runs as an `Analysis::em_ensemble` of the session API; the
//! single-path comparison drives `EmEngine::run_with_paths` directly, since
//! supplying explicit Wiener paths is specialized engine territory.
//!
//! Run with: `cargo run --release --example noise_em`

use nanosim::core::em::{EmEngine, EmOptions};
use nanosim::prelude::*;
use nanosim::sde::ou::OrnsteinUhlenbeck;
use nanosim::sde::peak::brownian_expected_peak;
use nanosim::sde::wiener::WienerPath;
use nanosim_numeric::rng::Pcg64;

fn main() -> Result<(), SimError> {
    // The Figure 10 parameter point: tau = 1 ns, the node climbs toward
    // 0.85 V and reaches ~0.54 V inside the 1 ns window.
    let circuit = nanosim::workloads::noisy_rc_node_fig10();
    let (g, c, i_dc, i_noise) = (1e-3, 1e-12, 0.85e-3, 2.2e-9);
    let horizon = 1e-9;
    let em_opts = EmOptions {
        dt: 2e-12,
        paths: 500,
        seed: 2005,
        ..EmOptions::default()
    };

    // --- One path: EM vs the exact solution ---------------------------
    let engine = EmEngine::new(em_opts.clone());
    let mut rng = Pcg64::seed_from_u64(777);
    let path = WienerPath::generate(horizon, 500, &mut rng);
    let em_path = engine.run_with_paths(&circuit, &[path.clone()])?;
    let em_v = em_path.waveform("v").expect("node exists");

    let ou = OrnsteinUhlenbeck::from_rc_node(g, c, i_dc, i_noise);
    let reference = ou.pathwise_reference(0.0, &path, 4, &mut rng);
    let ref_wave = Waveform::from_samples(em_path.times().to_vec(), reference);

    println!("Figure 10 — EM (one realization) vs true solution, 0..1 ns:");
    println!("{}", em_v.ascii_plot(12, 64));
    println!(
        "pathwise rms difference EM vs exact: {:.4} V",
        em_v.rms_difference(&ref_wave)
    );

    // --- Ensemble: mean/std and the 0.6 V peak callout ----------------
    let mut sim = Simulator::new(circuit)?;
    let ensemble = sim.run(
        Analysis::em_ensemble(horizon)
            .options(em_opts)
            .plan(ExecPlan::sharded(0)),
    )?;
    let mean = ensemble.curve("v").expect("node exists");
    let peak = ensemble.peak_summary("v").expect("node exists");
    println!(
        "\nensemble of {} paths: mean(1 ns) = {:.3} V, std(1 ns) = {:.3} V",
        ensemble.paths(),
        mean.final_value(),
        ensemble.std_curve("v").expect("exists").final_value()
    );
    println!(
        "performance peak in 0..1 ns: mean {:.3} V, p95 {:.3} V, worst {:.3} V",
        peak.mean_peak, peak.p95_peak, peak.worst_peak
    );
    println!(
        "P(peak >= 0.6 V) = {:.2}",
        ensemble.exceedance("v", 0.6).expect("exists")
    );

    // Analytic cross-check: driftless-BM reflection bound for the noise
    // part alone (loose, since OU reverts to the mean).
    let sigma_v = i_noise / c;
    println!(
        "(driftless-BM expected excursion over the window: {:.3} V)",
        brownian_expected_peak(sigma_v, horizon)
    );
    println!("\ncost: {}", ensemble.stats);
    Ok(())
}
