//! Figure 8 reproduction: the FET-RTD inverter transient, simulated by the
//! SWEC and PWL analyses of one `Simulator` session, plus the SPICE3-like
//! plain Newton engine (used directly, since reporting its NDR failures is
//! the point of the comparison).
//!
//! Run with: `cargo run --release --example rtd_inverter`

use nanosim::core::nr::{NrEngine, NrOptions};
use nanosim::prelude::*;

fn main() -> Result<(), SimError> {
    let circuit = nanosim::workloads::fet_rtd_inverter();
    println!("circuit: {}", circuit.summary());
    let (tstep, tstop) = (0.2e-9, 100e-9);
    let mut sim = Simulator::new(circuit.clone())?;

    // --- SWEC: the paper's method -------------------------------------
    let swec = sim.run(Analysis::transient(tstep, tstop))?;
    let out = swec.curve("out").expect("node exists");
    println!("\nFigure 8(b) — SWEC output:");
    println!("{}", out.ascii_plot(12, 64));
    println!(
        "levels: input low -> out {:.2} V, input high -> out {:.2} V",
        out.value_at(2e-9),
        out.value_at(25e-9)
    );
    println!("SWEC: {}", swec.stats);

    // --- SPICE3-like Newton baseline -----------------------------------
    let nr = NrEngine::new(NrOptions::spice3()).run_transient(&circuit, tstep, tstop)?;
    println!(
        "\nFigure 8(c) — SPICE3-like NR: {} non-converged steps out of {}",
        nr.failures.len(),
        nr.result.stats.steps
    );
    if let Some((t, outcome)) = nr.failures.first() {
        println!("first failure at t = {:.2} ns: {:?}", t * 1e9, outcome);
    }
    let nr_out = nr.result.waveform("out").expect("node exists");
    println!(
        "NR-vs-SWEC rms difference: {:.3} V{}",
        nr_out.rms_difference(&out),
        if nr.failures.is_empty() {
            " (converged everywhere)"
        } else {
            " (untrustworthy where Newton failed)"
        }
    );

    // --- ACES-like PWL baseline ----------------------------------------
    let pwl = sim.run(Analysis::pwl_transient(tstep, tstop))?;
    let pwl_out = pwl.curve("out").expect("node exists");
    println!(
        "\nFigure 8(d) — PWL engine: rms difference vs SWEC {:.3} V",
        pwl_out.rms_difference(&out)
    );
    println!("PWL: {}", pwl.stats);
    Ok(())
}
