//! Hierarchical frontend demo: the Table I 10×10 RTD mesh written three
//! ways — hand-unrolled, as `SubcktDef` cells through `CircuitBuilder`,
//! and as `.subckt`/`X` deck text — all producing bit-identical sweeps.
//!
//! ```bash
//! cargo run --release --example subckt_mesh
//! ```

use nanosim::prelude::*;
use nanosim::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const N: usize = 10;

    // 1. The hand-unrolled mesh (one add_* call per element).
    let hand = workloads::rtd_mesh(N);

    // 2. The same mesh as one `cell` subcircuit instantiated N² times.
    let cells = workloads::rtd_mesh_cells(N);

    // 3. The same mesh as SPICE-like deck text: `.subckt cell` + X lines.
    let deck_text = workloads::rtd_mesh_deck(N);
    let parsed = parse_netlist(&deck_text)?;
    println!(
        "deck: {} lines, {} subckt definition(s), flattens to {}",
        deck_text.lines().count(),
        parsed.subckts.len(),
        parsed.circuit.summary()
    );

    // All three flatten to the same node/element structure...
    assert_eq!(hand.node_count(), cells.node_count());
    assert_eq!(hand.elements().len(), parsed.circuit.elements().len());

    // ...and produce bit-identical engine results.
    let sweep = |ckt: Circuit| -> Result<Dataset, nanosim::core::SimError> {
        Simulator::new(ckt)?.run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.05))
    };
    let a = sweep(hand)?;
    let b = sweep(cells)?;
    let c = sweep(parsed.circuit)?;
    let corner = "g0_0";
    assert_eq!(a.column(corner), b.column(corner));
    assert_eq!(b.column(corner), c.column(corner));
    println!(
        "corner-node sweep identical across all three builds ({} points)",
        a.points()
    );

    // Parameterized instantiation: override the cell's load per instance.
    let mut b = CircuitBuilder::new();
    let mut loaded = SubcktDef::new("loaded_cell", ["t"]);
    loaded
        .param("rload", 1e3)
        .rtd("YRTD1", "t", "0", Rtd::date2005())
        .resistor("Rl", "t", "0", "{rload}");
    b.define(loaded)?;
    let n1 = b.node("n1");
    let n2 = b.node("n2");
    b.circuit_mut()
        .add_voltage_source("V1", n1, Circuit::GROUND, SourceWaveform::dc(2.0))?;
    b.circuit_mut().add_resistor("Rw", n1, n2, 50.0)?;
    b.instantiate("X1", "loaded_cell", &[n1], &[])?;
    b.instantiate(
        "X2",
        "loaded_cell",
        &[n2],
        &[("rload", ParamValue::Lit(5e3))],
    )?;
    let mut sim = Simulator::new(b.finish())?;
    let op = sim.run(Analysis::op())?;
    println!(
        "override demo: v(n1) = {:.4} V, v(n2) = {:.4} V (X2 rload=5k)",
        op.value("n1").unwrap(),
        op.value("n2").unwrap()
    );
    Ok(())
}
