//! Session-API integration: sharded execution plans must be bit-identical
//! to serial runs on the paper's workloads, shard warm-starts must match
//! the serial sweep's continuation behavior, and the one-`Dataset` result
//! model must hold across analysis kinds.

use nanosim::core::em::{EmEngine, EmOptions};
use nanosim::core::sim::SWEEP_CHUNK;
use nanosim::core::swec::SwecDcSweep;
use nanosim::prelude::*;
use proptest::prelude::*;

/// Runs one SWEC sweep of the Table I RTD mesh through the session API
/// with the given plan.
fn mesh_sweep(n: usize, stop: f64, step: f64, plan: ExecPlan) -> Dataset {
    let mut sim = Simulator::new(nanosim::workloads::rtd_mesh(n)).expect("mesh assembles");
    sim.run(Analysis::dc_sweep("V1", 0.0, stop, step).plan(plan))
        .expect("sweep runs")
}

#[test]
fn sharded_sweep_bit_identical_on_table1_mesh() {
    // The Table I headline workload: the 10x10 RTD mesh (101 MNA vars),
    // swept through the devices' NDR territory. Every worker count must
    // produce the exact bits of the serial run.
    let serial = mesh_sweep(10, 3.0, 0.05, ExecPlan::Serial);
    assert_eq!(serial.points(), 61);
    assert!(
        serial.points() > SWEEP_CHUNK,
        "the sweep must span several shard chunks for this test to bite"
    );
    for workers in [1usize, 2, 4, 7] {
        let sharded = mesh_sweep(10, 3.0, 0.05, ExecPlan::sharded(workers));
        assert_eq!(sharded.points(), serial.points());
        for name in serial.names() {
            assert_eq!(
                serial.column(name),
                sharded.column(name),
                "column {name} differs at workers = {workers}"
            );
        }
        // Same work happened, just on more threads.
        assert_eq!(serial.stats.linear_solves, sharded.stats.linear_solves);
        assert_eq!(serial.stats.full_factors, sharded.stats.full_factors);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: on random sweep ranges of a smaller Table I mesh, every
    /// worker count in {1, 2, 4, 7} reproduces the serial sweep bit for
    /// bit — including ranges that cross the RTD peak.
    #[test]
    fn sharded_equals_serial_for_any_worker_count(
        widx in 0usize..4,
        stop in 1.0f64..4.0,
        step_idx in 0usize..3,
    ) {
        let workers = [1usize, 2, 4, 7][widx];
        let step = [0.05, 0.1, 0.15][step_idx];
        let serial = mesh_sweep(4, stop, step, ExecPlan::Serial);
        let sharded = mesh_sweep(4, stop, step, ExecPlan::sharded(workers));
        prop_assert_eq!(serial.points(), sharded.points());
        for name in serial.names() {
            prop_assert_eq!(serial.column(name), sharded.column(name));
        }
    }
}

#[test]
fn shard_warm_start_matches_serial_continuation_at_boundaries() {
    // Regression for the per-shard warm-start policy: each shard starts
    // from a self-consistent solve of the point before its range, so at
    // every chunk boundary the session sweep must continue the way the
    // legacy fully-serial engine (unbroken continuation chain) does. The
    // range stays below the mesh's bistable fold so the fixed point is
    // unique and the comparison is meaningful.
    let circuit = nanosim::workloads::rtd_mesh(10);
    let session = {
        let mut sim = Simulator::new(circuit.clone()).unwrap();
        sim.run(Analysis::dc_sweep("V1", 0.0, 2.0, 0.04)).unwrap()
    };
    let legacy = SwecDcSweep::new(SwecOptions::default())
        .run(&circuit, "V1", 0.0, 2.0, 0.04)
        .unwrap();
    assert_eq!(session.points(), legacy.points());
    assert!(session.points() > 3 * SWEEP_CHUNK, "several boundaries");

    // The first chunk is algorithmically identical to the legacy engine.
    let s_mid = session.column("g5_5").unwrap();
    let l_mid = legacy.column("g5_5").unwrap();
    assert_eq!(&s_mid[..SWEEP_CHUNK], &l_mid[..SWEEP_CHUNK]);

    // At and after every shard boundary, the warm-started continuation
    // tracks the serial chain to solver-tolerance accuracy.
    for name in ["g0_0", "g5_5", "g9_9", "I(V1)"] {
        let s = session.column(name).unwrap();
        let l = legacy.column(name).unwrap();
        let scale = l.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-12);
        for (k, (a, b)) in s.iter().zip(l.iter()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-6 * scale,
                "{name}[{k}] (chunk {}): session {a} vs legacy {b}",
                k / SWEEP_CHUNK
            );
        }
    }
}

#[test]
fn ndr_sweep_branch_selection_matches_serial_continuation() {
    // Regression for the chunk warm-start policy on bistable circuits: the
    // flagship Figure 7(a) sweep crosses the RTD's NDR/hysteresis region,
    // where a fixed point solved from zero can land on the wrong branch.
    // The forward continuation ramp must keep every chunk on the branch
    // the legacy serial chain selects — no jump discontinuities at chunk
    // boundaries.
    let circuit = nanosim::workloads::rtd_divider(50.0);
    let legacy = SwecDcSweep::new(SwecOptions::default())
        .run(&circuit, "V1", 0.0, 5.0, 0.02)
        .unwrap();
    let mut sim = Simulator::new(circuit).unwrap();
    let session = sim.run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.02)).unwrap();
    assert!(session.points() > 10 * SWEEP_CHUNK);

    let s_iv = session.curve("I(X1)").unwrap();
    let l_iv = legacy.curve("I(X1)").unwrap();
    let peak = l_iv.peak().unwrap().1;
    let rms = s_iv.rms_difference(&l_iv);
    assert!(rms < 0.01 * peak, "rms {rms:.3e} vs peak {peak:.3e}");
    // No branch jump anywhere: the RTD terminal voltage stays within a
    // small fraction of the 5 V range of the legacy curve at every point
    // (a wrong-branch solution differs by O(1) volts).
    let s_mid = session.column("mid").unwrap();
    let l_mid = legacy.column("mid").unwrap();
    for (k, (a, b)) in s_mid.iter().zip(l_mid.iter()).enumerate() {
        assert!(
            (a - b).abs() < 0.05,
            "branch jump at k={k} (chunk {}): session {a} vs legacy {b}",
            k / SWEEP_CHUNK
        );
    }
    // And sharding that bistable sweep stays bit-identical.
    let sharded = sim
        .run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.02).plan(ExecPlan::sharded(4)))
        .unwrap();
    assert_eq!(session.column("mid"), sharded.column("mid"));
}

#[test]
fn em_ensemble_plan_is_a_pure_wall_clock_knob() {
    // The session maps ExecPlan onto EmOptions::threads; results must be
    // bit-identical to the engine-level run at any worker count.
    let circuit = nanosim::workloads::noisy_rc_node_fig10();
    let opts = EmOptions {
        dt: 4e-12,
        paths: 64,
        seed: 2005,
        ..EmOptions::default()
    };
    let engine_ref = EmEngine::new(EmOptions {
        threads: 1,
        ..opts.clone()
    })
    .run(&circuit, 1e-9)
    .unwrap();

    let mut sim = Simulator::new(circuit).unwrap();
    for plan in [ExecPlan::Serial, ExecPlan::sharded(3), ExecPlan::sharded(0)] {
        let ds = sim
            .run(Analysis::em_ensemble(1e-9).options(opts.clone()).plan(plan))
            .unwrap();
        assert_eq!(ds.kind(), AnalysisKind::Em);
        assert_eq!(ds.paths(), 64);
        let mean = ds.curve("v").unwrap();
        let ref_mean = engine_ref.mean_waveform("v").unwrap();
        assert_eq!(mean.values(), ref_mean.values(), "plan {plan:?}");
        let sd = ds.std_curve("v").unwrap();
        let ref_sd = engine_ref.std_waveform("v").unwrap();
        assert_eq!(sd.values(), ref_sd.values());
        assert_eq!(
            ds.peak_summary("v").unwrap(),
            engine_ref.peak_summary("v").unwrap()
        );
    }
}

#[test]
fn transient_parameter_ensembles_are_order_deterministic() {
    // The ROADMAP's "parallel transient ensembles": sweep the load
    // capacitance of an RTD ramp across process-variation variants, once
    // serially and once over 4 workers — identical datasets in variant
    // order.
    let variants: Vec<Circuit> = [0.5e-13, 1e-13, 2e-13, 4e-13]
        .iter()
        .map(|&c| {
            let mut ckt = Circuit::new();
            let a = ckt.node("in");
            let b = ckt.node("mid");
            ckt.add_voltage_source(
                "V1",
                a,
                Circuit::GROUND,
                SourceWaveform::pwl(vec![(0.0, 0.0), (5e-9, 3.0), (10e-9, 3.0)]).unwrap(),
            )
            .unwrap();
            ckt.add_resistor("R1", a, b, 50.0).unwrap();
            ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
                .unwrap();
            ckt.add_capacitor("C1", b, Circuit::GROUND, c).unwrap();
            ckt
        })
        .collect();
    let analysis: nanosim::core::sim::Analysis = Analysis::transient(0.1e-9, 10e-9).into();
    let serial = run_ensemble(&variants, &analysis, ExecPlan::Serial).unwrap();
    let parallel = run_ensemble(&variants, &analysis, ExecPlan::sharded(4)).unwrap();
    assert_eq!(serial.len(), 4);
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.kind(), AnalysisKind::Tran);
        assert_eq!(s.points(), p.points());
        assert_eq!(s.column("mid"), p.column("mid"));
    }
    // The parameter actually matters: heavier load slews slower mid-ramp.
    let light = serial[0].at("mid", 2.4e-9).unwrap();
    let heavy = serial[3].at("mid", 2.4e-9).unwrap();
    assert!(heavy < light, "heavy {heavy} !< light {light}");
}

#[test]
fn dataset_model_is_uniform_across_kinds() {
    let mut sim = Simulator::new(nanosim::workloads::rtd_divider(50.0)).unwrap();
    let op = sim.run(Analysis::op()).unwrap();
    let dc = sim.run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.1)).unwrap();
    let tran = sim
        .run(Analysis::transient(0.5e-9, 5e-9))
        .expect("dc source transient is trivial");

    // Same accessors everywhere.
    for ds in [&op, &dc, &tran] {
        assert!(ds.names().iter().any(|n| n == "mid"));
        assert!(ds.value("mid").is_some());
        assert!(ds.peak("mid").is_some());
        assert!(ds.to_csv().lines().count() == ds.points() + 1);
    }
    assert_eq!(op.kind(), AnalysisKind::Op);
    assert_eq!(dc.kind(), AnalysisKind::Dc);
    assert_eq!(tran.kind(), AnalysisKind::Tran);

    // Kind mismatches are structured errors.
    let err = op.require(AnalysisKind::Dc).unwrap_err();
    assert!(matches!(err, SimError::AnalysisMismatch { .. }));
    assert!(dc.require(AnalysisKind::Dc).is_ok());

    // The sweep axis knows its source.
    match dc.axis() {
        Axis::Sweep { source, values } => {
            assert_eq!(source, "V1");
            assert_eq!(values.len(), dc.points());
        }
        other => panic!("expected sweep axis, got {other:?}"),
    }
}
