//! Golden-netlist corpus: every deck under `tests/decks/` must parse,
//! flatten, validate, survive a `write -> parse` round trip, and run its
//! first analysis through the session API. Expectations are annotated in
//! the decks themselves:
//!
//! ```text
//! * @expect nodes=<n> elements=<m> subckts=<k> analyses=<j>
//! * @op-check <column>=<value>        (op decks only, tol 1e-6)
//! ```
//!
//! A frontend regression therefore fails with the *name* of the deck that
//! broke, not an anonymous assertion.

use nanosim::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/decks")
}

fn corpus() -> Vec<(String, String)> {
    let mut decks: Vec<(String, String)> = std::fs::read_dir(corpus_dir())
        .expect("tests/decks exists")
        .filter_map(|e| {
            let path = e.ok()?.path();
            if path.extension().is_some_and(|x| x == "cir") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let text = std::fs::read_to_string(&path).expect("deck readable");
                Some((name, text))
            } else {
                None
            }
        })
        .collect();
    decks.sort();
    assert!(
        decks.len() >= 5,
        "corpus unexpectedly small: {} decks",
        decks.len()
    );
    decks
}

/// Parses `* @expect k=v ...` and `* @op-check col=value` annotations.
fn annotations(text: &str) -> (HashMap<String, usize>, Vec<(String, f64)>) {
    let mut expect = HashMap::new();
    let mut op_checks = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("* @expect ") {
            for pair in rest.split_whitespace() {
                let (k, v) = pair.split_once('=').expect("@expect k=v");
                expect.insert(k.to_string(), v.parse().expect("@expect usize"));
            }
        } else if let Some(rest) = line.strip_prefix("* @op-check ") {
            let (k, v) = rest.split_once('=').expect("@op-check col=value");
            op_checks.push((k.to_string(), v.parse().expect("@op-check f64")));
        }
    }
    (expect, op_checks)
}

#[test]
fn every_deck_parses_flattens_and_matches_expectations() {
    for (name, text) in corpus() {
        let deck = parse_netlist(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        deck.circuit
            .validate()
            .unwrap_or_else(|e| panic!("{name}: validation failed: {e}"));
        let (expect, _) = annotations(&text);
        assert!(!expect.is_empty(), "{name}: missing @expect annotation");
        let got = [
            ("nodes", deck.circuit.node_count()),
            ("elements", deck.circuit.elements().len()),
            ("subckts", deck.subckts.len()),
            ("analyses", deck.analyses.len()),
        ];
        for (key, actual) in got {
            if let Some(&want) = expect.get(key) {
                assert_eq!(actual, want, "{name}: {key} mismatch");
            }
        }
    }
}

#[test]
fn every_deck_roundtrips_through_the_writer() {
    for (name, text) in corpus() {
        let deck = parse_netlist(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let written = write_netlist(&deck.circuit);
        let again = parse_netlist(&written)
            .unwrap_or_else(|e| panic!("{name}: writer output failed to parse: {e}"));
        assert_eq!(
            deck.circuit.elements().len(),
            again.circuit.elements().len(),
            "{name}: element count changed through write -> parse"
        );
        assert_eq!(
            deck.circuit.node_count(),
            again.circuit.node_count(),
            "{name}: node count changed through write -> parse"
        );
        for (ea, eb) in deck.circuit.elements().iter().zip(again.circuit.elements()) {
            assert_eq!(ea.name(), eb.name(), "{name}: element name changed");
            assert_eq!(
                ea.kind().type_tag(),
                eb.kind().type_tag(),
                "{name}: element {} changed kind",
                ea.name()
            );
        }
    }
}

#[test]
fn every_deck_runs_its_first_analysis() {
    for (name, text) in corpus() {
        let deck = parse_netlist(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let directive = deck
            .analyses
            .first()
            .unwrap_or_else(|| panic!("{name}: corpus decks must request an analysis"));
        let analysis = Analysis::from_directive(directive, &SwecOptions::default());
        let mut sim =
            Simulator::new(deck.circuit).unwrap_or_else(|e| panic!("{name}: assembly failed: {e}"));
        let data = sim
            .run(analysis)
            .unwrap_or_else(|e| panic!("{name}: analysis failed: {e}"));
        assert!(data.points() > 0, "{name}: empty dataset");
        for v in data.names().iter().filter_map(|n| data.value(n)) {
            assert!(v.is_finite(), "{name}: non-finite result");
        }
        let (_, op_checks) = annotations(&text);
        for (col, want) in op_checks {
            let got = data
                .value(&col)
                .unwrap_or_else(|| panic!("{name}: @op-check column {col} missing"));
            assert!(
                (got - want).abs() < 1e-6,
                "{name}: op value {col} = {got}, expected {want}"
            );
        }
    }
}
