//! Golden-netlist corpus: every deck under `tests/decks/` must parse,
//! flatten, validate, survive a `write -> parse` round trip, and run its
//! first analysis through the session API. Expectations are annotated in
//! the decks themselves:
//!
//! ```text
//! * @expect nodes=<n> elements=<m> subckts=<k> analyses=<j>
//! * @op-check <column>=<value>        (op decks only, tol 1e-6)
//! * @expect-lint <code> [line:col]    (known-bad decks only)
//! ```
//!
//! Decks carrying an `@expect-lint` annotation are *known-bad*: the
//! preflight linter must reject them with exactly the annotated error
//! codes (at the annotated positions when given) and `Simulator::new`
//! must refuse them before any factorization. All other decks are golden
//! and must additionally lint clean.
//!
//! A frontend regression therefore fails with the *name* of the deck that
//! broke, not an anonymous assertion.

use nanosim::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/decks")
}

fn all_decks() -> Vec<(String, String)> {
    let mut decks: Vec<(String, String)> = std::fs::read_dir(corpus_dir())
        .expect("tests/decks exists")
        .filter_map(|e| {
            let path = e.ok()?.path();
            if path.extension().is_some_and(|x| x == "cir") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let text = std::fs::read_to_string(&path).expect("deck readable");
                Some((name, text))
            } else {
                None
            }
        })
        .collect();
    decks.sort();
    assert!(
        decks.len() >= 5,
        "corpus unexpectedly small: {} decks",
        decks.len()
    );
    decks
}

fn is_known_bad(text: &str) -> bool {
    text.lines()
        .any(|l| l.trim_start_matches(['*', ' ']).starts_with("@expect-lint"))
}

/// The golden decks: parse, validate, run, and lint clean.
fn corpus() -> Vec<(String, String)> {
    all_decks()
        .into_iter()
        .filter(|(_, text)| !is_known_bad(text))
        .collect()
}

/// The known-bad decks: rejected by preflight with annotated codes.
fn known_bad() -> Vec<(String, String)> {
    all_decks()
        .into_iter()
        .filter(|(_, text)| is_known_bad(text))
        .collect()
}

/// Parses `* @expect-lint <code> [line:col]` annotations.
fn lint_expectations(text: &str) -> Vec<(LintCode, Option<(usize, usize)>)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line
            .trim()
            .strip_prefix('*')
            .map(str::trim)
            .and_then(|t| t.strip_prefix("@expect-lint"))
        else {
            continue;
        };
        let mut fields = rest.split_whitespace();
        let code = LintCode::parse(fields.next().expect("@expect-lint needs a code"))
            .expect("@expect-lint names a known code");
        let at = fields.next().map(|pos| {
            let (l, c) = pos
                .split_once(':')
                .expect("@expect-lint position is line:col");
            (l.parse().unwrap(), c.parse().unwrap())
        });
        out.push((code, at));
    }
    out
}

/// Parses `* @expect k=v ...` and `* @op-check col=value` annotations.
fn annotations(text: &str) -> (HashMap<String, usize>, Vec<(String, f64)>) {
    let mut expect = HashMap::new();
    let mut op_checks = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("* @expect ") {
            for pair in rest.split_whitespace() {
                let (k, v) = pair.split_once('=').expect("@expect k=v");
                expect.insert(k.to_string(), v.parse().expect("@expect usize"));
            }
        } else if let Some(rest) = line.strip_prefix("* @op-check ") {
            let (k, v) = rest.split_once('=').expect("@op-check col=value");
            op_checks.push((k.to_string(), v.parse().expect("@op-check f64")));
        }
    }
    (expect, op_checks)
}

#[test]
fn every_deck_parses_flattens_and_matches_expectations() {
    for (name, text) in corpus() {
        let deck = parse_netlist(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        deck.circuit
            .validate()
            .unwrap_or_else(|e| panic!("{name}: validation failed: {e}"));
        let (expect, _) = annotations(&text);
        assert!(!expect.is_empty(), "{name}: missing @expect annotation");
        let got = [
            ("nodes", deck.circuit.node_count()),
            ("elements", deck.circuit.elements().len()),
            ("subckts", deck.subckts.len()),
            ("analyses", deck.analyses.len()),
        ];
        for (key, actual) in got {
            if let Some(&want) = expect.get(key) {
                assert_eq!(actual, want, "{name}: {key} mismatch");
            }
        }
    }
}

#[test]
fn every_deck_roundtrips_through_the_writer() {
    for (name, text) in corpus() {
        let deck = parse_netlist(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let written = write_netlist(&deck.circuit);
        let again = parse_netlist(&written)
            .unwrap_or_else(|e| panic!("{name}: writer output failed to parse: {e}"));
        assert_eq!(
            deck.circuit.elements().len(),
            again.circuit.elements().len(),
            "{name}: element count changed through write -> parse"
        );
        assert_eq!(
            deck.circuit.node_count(),
            again.circuit.node_count(),
            "{name}: node count changed through write -> parse"
        );
        for (ea, eb) in deck.circuit.elements().iter().zip(again.circuit.elements()) {
            assert_eq!(ea.name(), eb.name(), "{name}: element name changed");
            assert_eq!(
                ea.kind().type_tag(),
                eb.kind().type_tag(),
                "{name}: element {} changed kind",
                ea.name()
            );
        }
    }
}

#[test]
fn every_deck_runs_its_first_analysis() {
    for (name, text) in corpus() {
        let deck = parse_netlist(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let directive = deck
            .analyses
            .first()
            .unwrap_or_else(|| panic!("{name}: corpus decks must request an analysis"));
        let analysis = Analysis::from_directive(directive, &SwecOptions::default());
        let mut sim =
            Simulator::new(deck.circuit).unwrap_or_else(|e| panic!("{name}: assembly failed: {e}"));
        let data = sim
            .run(analysis)
            .unwrap_or_else(|e| panic!("{name}: analysis failed: {e}"));
        assert!(data.points() > 0, "{name}: empty dataset");
        for v in data.names().iter().filter_map(|n| data.value(n)) {
            assert!(v.is_finite(), "{name}: non-finite result");
        }
        let (_, op_checks) = annotations(&text);
        for (col, want) in op_checks {
            let got = data
                .value(&col)
                .unwrap_or_else(|| panic!("{name}: @op-check column {col} missing"));
            assert!(
                (got - want).abs() < 1e-6,
                "{name}: op value {col} = {got}, expected {want}"
            );
        }
    }
}

#[test]
fn every_golden_deck_lints_clean() {
    for (name, text) in corpus() {
        let report = lint_deck(&text);
        assert!(
            report.is_clean(),
            "{name}: golden deck is not lint-clean:\n{report}"
        );
    }
}

#[test]
fn known_bad_decks_are_rejected_with_the_annotated_codes() {
    let bad = known_bad();
    assert!(
        bad.len() >= 3,
        "expected at least 3 known-bad decks, found {}",
        bad.len()
    );
    for (name, text) in bad {
        let expected = lint_expectations(&text);
        assert!(!expected.is_empty(), "{name}: missing @expect-lint");
        let report = lint_deck(&text);
        let errors: Vec<&Diagnostic> = report.errors().collect();
        for (code, at) in &expected {
            let hits: Vec<_> = errors.iter().filter(|d| d.code == *code).collect();
            assert!(
                !hits.is_empty(),
                "{name}: expected error[{code}]:\n{report}"
            );
            if let Some((line, col)) = at {
                assert!(
                    hits.iter()
                        .any(|d| d.span.is_some_and(|s| (s.line, s.column) == (*line, *col))),
                    "{name}: error[{code}] not at {line}:{col}:\n{report}"
                );
            }
        }
        for d in &errors {
            assert!(
                expected.iter().any(|(code, _)| *code == d.code),
                "{name}: unexpected error: {d}"
            );
        }
    }
}

#[test]
fn known_bad_decks_are_refused_by_the_simulator_before_assembly() {
    for (name, text) in known_bad() {
        let deck = parse_netlist(&text).unwrap_or_else(|e| panic!("{name}: parse failed: {e}"));
        let err = Simulator::new(deck.circuit)
            .err()
            .unwrap_or_else(|| panic!("{name}: preflight accepted a known-bad deck"));
        let report = err
            .preflight_report()
            .unwrap_or_else(|| panic!("{name}: expected SimError::Preflight, got: {err}"));
        assert!(
            report.has_errors(),
            "{name}: preflight report has no errors"
        );
    }
}
