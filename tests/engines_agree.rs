//! Cross-crate integration: the four deterministic engines must agree on
//! circuits where all of them are trustworthy, and disagree in the
//! documented ways where they are not.

use nanosim::core::mla::MlaEngine;
use nanosim::core::pwl::PwlEngine;
use nanosim::core::swec::{SwecDcSweep, SwecTransient};
use nanosim::prelude::*;

fn rc_step() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("out");
    ckt.add_voltage_source(
        "V1",
        a,
        Circuit::GROUND,
        SourceWaveform::pwl(vec![(0.0, 0.0), (1e-12, 1.0), (1.0, 1.0)]).unwrap(),
    )
    .unwrap();
    ckt.add_resistor("R1", a, b, 1e3).unwrap();
    ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-12).unwrap();
    ckt
}

#[test]
fn all_engines_agree_on_linear_rc() {
    let ckt = rc_step();
    let (tstep, tstop) = (0.02e-9, 5e-9);
    let swec = SwecTransient::new(SwecOptions::default())
        .run(&ckt, tstep, tstop)
        .unwrap();
    let nr = NrEngine::new(NrOptions::default())
        .run_transient(&ckt, tstep, tstop)
        .unwrap();
    let pwl = PwlEngine::new(PwlOptions::default())
        .run_transient(&ckt, tstep, tstop)
        .unwrap();
    let s = swec.waveform("out").unwrap();
    let n = nr.result.waveform("out").unwrap();
    let p = pwl.waveform("out").unwrap();
    assert!(
        s.rms_difference(&n) < 5e-3,
        "swec vs nr: {}",
        s.rms_difference(&n)
    );
    assert!(
        s.rms_difference(&p) < 5e-3,
        "swec vs pwl: {}",
        s.rms_difference(&p)
    );
    assert!(nr.failures.is_empty());
}

#[test]
fn swec_and_mla_agree_on_rtd_dc_curve() {
    // Figure 7(a): both engines capture the same I-V including the NDR
    // branch; SWEC does it in ~1 solve/point, MLA in many.
    let ckt = nanosim::workloads::rtd_divider(50.0);
    let swec = SwecDcSweep::new(SwecOptions::default())
        .run(&ckt, "V1", 0.0, 5.0, 0.02)
        .unwrap();
    let mla = MlaEngine::new(MlaOptions::default())
        .run_dc_sweep(&ckt, "V1", 0.0, 5.0, 0.02)
        .unwrap();
    let a = swec.curve("I(X1)").unwrap();
    let b = mla.curve("I(X1)").unwrap();
    let peak = b.peak().unwrap().1;
    assert!(
        a.rms_difference(&b) < 0.03 * peak,
        "rms {} vs peak {peak}",
        a.rms_difference(&b)
    );
    // The Table I story in one assertion.
    assert!(
        mla.stats.flops.total() > 5 * swec.stats.flops.total(),
        "MLA {} vs SWEC {}",
        mla.stats.flops.total(),
        swec.stats.flops.total()
    );
}

#[test]
fn swec_succeeds_where_plain_nr_fails() {
    // Figure 8(c): the stress inverter breaks plain Newton on some steps;
    // SWEC completes and both engines agree before the first failure.
    let ckt = nanosim::workloads::fet_rtd_inverter_stress();
    let (tstep, tstop) = (0.5e-9, 30e-9);
    let nr = NrEngine::new(NrOptions::spice3())
        .run_transient(&ckt, tstep, tstop)
        .unwrap();
    assert!(
        !nr.failures.is_empty(),
        "the stress deck must break plain NR"
    );
    let swec = SwecTransient::new(SwecOptions::default())
        .run(&ckt, tstep, tstop)
        .unwrap();
    let out = swec.waveform("out").unwrap();
    assert!(out.values().iter().all(|v| v.is_finite()));
}

#[test]
fn pwl_conductance_sign_vs_swec() {
    // Figure 3 at circuit level: stamped PWL conductance goes negative in
    // NDR; SWEC's never does. Exercised through the public APIs.
    use nanosim::circuit::element::SharedDevice;
    use nanosim::core::pwl::PwlDeviceTable;
    use std::sync::Arc;
    let rtd = Rtd::date2005();
    let peak = rtd.peak().unwrap();
    let dev: SharedDevice = Arc::new(rtd);
    let table = PwlDeviceTable::tabulate(&dev, -1.0, 6.0, 300);
    let mut flops = FlopCounter::new();
    let mut saw_negative = false;
    let mut v = 0.1;
    while v < 6.0 {
        let g_pwl = table.segment_conductance(v);
        let g_swec = dev.equivalent_conductance(v, &mut flops);
        assert!(g_swec > 0.0, "SWEC Geq({v}) = {g_swec}");
        if g_pwl < 0.0 {
            saw_negative = true;
            assert!(v > peak.voltage, "negative slope only after the peak");
        }
        v += 0.05;
    }
    assert!(saw_negative, "the PWL table must expose the NDR region");
}

#[test]
fn netlist_deck_runs_end_to_end() {
    let deck = parse_netlist(
        "* integration deck\n\
         .model mrtd RTD (a=1e-4 b=2 c=1.5 d=0.3 n1=0.35 n2=0.0172 h=1.43e-8)\n\
         V1 in 0 PWL(0 0 5n 5 10n 5)\n\
         R1 in mid 50\n\
         YRTD1 mid 0 mrtd\n\
         C1 mid 0 0.1p\n\
         .tran 0.05n 10n\n\
         .end\n",
    )
    .unwrap();
    assert_eq!(deck.analyses.len(), 1);
    let AnalysisDirective::Tran { tstep, tstop } = deck.analyses[0] else {
        panic!("expected tran");
    };
    let r = SwecTransient::new(SwecOptions::default())
        .run(&deck.circuit, tstep, tstop)
        .unwrap();
    let mid = r.waveform("mid").unwrap();
    // Ramp to 5 V: the RTD ends up past its peak.
    assert!(mid.final_value() > 4.0);
    // And the deck's device is the same model as the builder's.
    let builder = nanosim::workloads::rtd_divider(50.0);
    let sweep_deck = SwecDcSweep::new(SwecOptions::default())
        .run(&deck.circuit, "V1", 0.0, 5.0, 0.05)
        .unwrap();
    let sweep_builder = SwecDcSweep::new(SwecOptions::default())
        .run(&builder, "V1", 0.0, 5.0, 0.05)
        .unwrap();
    let a = sweep_deck.curve("I(YRTD1)").unwrap();
    let b = sweep_builder.curve("I(X1)").unwrap();
    assert!(a.rms_difference(&b) < 1e-6);
}

#[test]
fn integration_methods_agree_on_smooth_problem() {
    let ckt = rc_step();
    let be = SwecTransient::new(SwecOptions::default())
        .run(&ckt, 0.05e-9, 5e-9)
        .unwrap();
    let tr = SwecTransient::new(SwecOptions {
        integration: IntegrationMethod::Trapezoidal,
        ..SwecOptions::default()
    })
    .run(&ckt, 0.05e-9, 5e-9)
    .unwrap();
    let a = be.waveform("out").unwrap();
    let b = tr.waveform("out").unwrap();
    assert!(a.rms_difference(&b) < 0.01);
}
