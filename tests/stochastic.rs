//! Cross-crate integration of the stochastic stack: circuit-level EM
//! against the closed-form Ornstein–Uhlenbeck facts from `nanosim-sde`.

use nanosim::core::em::EmEngine;
use nanosim::prelude::*;
use nanosim::sde::ou::OrnsteinUhlenbeck;
use nanosim::sde::wiener::WienerPath;
use nanosim_numeric::rng::Pcg64;

const G: f64 = 1e-3;
const C: f64 = 1e-12;

#[test]
fn em_ensemble_matches_ou_mean_and_variance() {
    let i_noise = 2e-9;
    let ckt = nanosim::workloads::noisy_rc_node(G, C, 0.0, i_noise);
    let engine = EmEngine::new(EmOptions {
        dt: 5e-12,
        paths: 500,
        seed: 99,
        ..EmOptions::default()
    });
    let horizon = 2e-9;
    let r = engine.run(&ckt, horizon).unwrap();
    let ou = OrnsteinUhlenbeck::from_rc_node(G, C, 0.0, i_noise);
    let sd = r.std_waveform("v").unwrap().final_value();
    let expected = ou.variance(horizon).sqrt();
    assert!(
        (sd - expected).abs() < 0.12 * expected,
        "sd {sd} vs {expected}"
    );
}

#[test]
fn em_with_dc_drive_tracks_deterministic_mean() {
    let ckt = nanosim::workloads::noisy_rc_node(G, C, 0.5e-3, 1e-9);
    let engine = EmEngine::new(EmOptions {
        dt: 5e-12,
        paths: 400,
        seed: 7,
        ..EmOptions::default()
    });
    let r = engine.run(&ckt, 3e-9).unwrap();
    let mean = r.mean_waveform("v").unwrap();
    // mu = i_dc/G = 0.5 V, tau = 1 ns: at 3 tau the mean is ~0.475 V.
    let expected = 0.5 * (1.0 - (-3.0f64).exp());
    assert!(
        (mean.final_value() - expected).abs() < 0.03,
        "{} vs {expected}",
        mean.final_value()
    );
}

#[test]
fn figure10_peak_lands_near_paper_value() {
    // The Figure 10 parameter point: "we observe a possible performance
    // peak about 0.6 V" in 0..1 ns.
    let ckt = nanosim::workloads::noisy_rc_node_fig10();
    let engine = EmEngine::new(EmOptions {
        dt: 2e-12,
        paths: 400,
        seed: 2005,
        ..EmOptions::default()
    });
    let r = engine.run(&ckt, 1e-9).unwrap();
    let peak = r.peak_summary("v").unwrap();
    assert!(
        peak.mean_peak > 0.45 && peak.mean_peak < 0.75,
        "mean 0..1 ns peak {} should be near 0.6 V",
        peak.mean_peak
    );
    let p = r.exceedance("v", 0.6).unwrap();
    assert!(p > 0.05 && p < 0.95, "P(peak >= 0.6) = {p}");
}

#[test]
fn pathwise_em_converges_to_exact_solution_with_dt() {
    // Strong pathwise agreement: the circuit EM on a fine path is closer to
    // the bridge-refined exact OU solution than on a coarse path.
    let i_noise = 2e-9;
    let ckt = nanosim::workloads::noisy_rc_node(G, C, 0.0, i_noise);
    let ou = OrnsteinUhlenbeck::from_rc_node(G, C, 0.0, i_noise);
    let mut rng = Pcg64::seed_from_u64(31);
    let horizon = 1e-9;
    let mut err = |steps: usize| -> f64 {
        let mut total = 0.0;
        for _ in 0..20 {
            let path = WienerPath::generate(horizon, steps, &mut rng);
            let engine = EmEngine::new(EmOptions::default());
            let em = engine.run_with_paths(&ckt, &[path.clone()]).unwrap();
            let reference = ou.pathwise_reference(0.0, &path, 4, &mut rng);
            let v = em.column("v").unwrap();
            let e: f64 = v
                .iter()
                .zip(reference.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            total += e;
        }
        total / 20.0
    };
    let coarse = err(64);
    let fine = err(512);
    assert!(
        fine < coarse,
        "pathwise error must shrink with dt: fine {fine} vs coarse {coarse}"
    );
}

#[test]
fn parallel_and_serial_ensembles_are_bit_identical() {
    // The parallel Monte-Carlo engine derives per-path RNGs in path order
    // and merges chunk statistics in chunk order, so the thread count must
    // not change a single bit of the output. 37 paths is deliberately not a
    // multiple of the chunk size.
    let ckt = nanosim::workloads::noisy_rc_node_fig10();
    let base = EmOptions {
        dt: 5e-12,
        paths: 37,
        seed: 0xD5EE_D001,
        ..EmOptions::default()
    };
    let serial = EmEngine::new(EmOptions {
        threads: 1,
        ..base.clone()
    })
    .run(&ckt, 1e-9)
    .unwrap();
    for threads in [2, 4, 8] {
        let parallel = EmEngine::new(EmOptions {
            threads,
            ..base.clone()
        })
        .run(&ckt, 1e-9)
        .unwrap();
        for name in serial.names() {
            let ms = serial.mean_waveform(name).unwrap();
            let mp = parallel.mean_waveform(name).unwrap();
            assert_eq!(
                ms.values(),
                mp.values(),
                "means differ at {threads} threads"
            );
            let ss = serial.std_waveform(name).unwrap();
            let sp = parallel.std_waveform(name).unwrap();
            assert_eq!(ss.values(), sp.values(), "stds differ at {threads} threads");
            assert_eq!(
                serial.peak_summary(name),
                parallel.peak_summary(name),
                "peaks differ at {threads} threads"
            );
        }
        assert_eq!(
            serial.sample_path().column("v").unwrap(),
            parallel.sample_path().column("v").unwrap(),
            "sample path differs at {threads} threads"
        );
    }
}

#[test]
fn reproducible_with_same_seed() {
    let ckt = nanosim::workloads::noisy_rc_node_fig10();
    let opts = EmOptions {
        dt: 5e-12,
        paths: 10,
        seed: 123,
        ..EmOptions::default()
    };
    let a = EmEngine::new(opts.clone()).run(&ckt, 1e-9).unwrap();
    let b = EmEngine::new(opts).run(&ckt, 1e-9).unwrap();
    assert_eq!(
        a.sample_path().column("v").unwrap(),
        b.sample_path().column("v").unwrap()
    );
    assert_eq!(a.peak_summary("v"), b.peak_summary("v"));
}
