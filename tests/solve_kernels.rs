//! Blocked triangular-solve kernel equivalence: the supernodal panel path
//! behind `SparseLu::solve_into` / `refactor` and the batched multi-RHS
//! `solve_many_into` must be **bit-identical** to the scalar reference
//! sweeps (`solve_into_scalar` / `refactor_scalar`) over random patterns,
//! random orderings and every right-hand-side count — and engine results
//! flowing through the kernels must stay bit-identical at every worker
//! count.
//!
//! `blocked_matches_scalar` is the CI kernel-drift gate: it fails the
//! build the moment the blocked path's floating-point behavior diverges
//! from the scalar reference by a single bit.

use nanosim::core::sim::{Analysis, ExecPlan, SimOptions, Simulator};
use nanosim::core::swec::SwecDcSweep;
use nanosim::workloads;
use nanosim_numeric::flops::FlopCounter;
use nanosim_numeric::sparse::{CsrMatrix, OrderingChoice, PivotStrategy, SparseLu};
use proptest::prelude::*;

/// Strategy: a random diagonally dominant n × n sparse system (guaranteed
/// nonsingular — degraded pivots are exercised separately), a value
/// perturbation for the refactor pass, and a right-hand-side block.
#[allow(clippy::type_complexity)]
fn dominant_system() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>, Vec<f64>, usize)> {
    (4usize..24, 1usize..6).prop_flat_map(|(n, k)| {
        let offdiag = proptest::collection::vec(((0..n), (0..n), -2.0f64..2.0), 0..(n * 3));
        let rhs = proptest::collection::vec(-10.0f64..10.0, n * k);
        (Just(n), offdiag, rhs, Just(k)).prop_map(|(n, off, rhs, k)| {
            let mut entries: Vec<(usize, usize, f64)> = Vec::new();
            let mut rowsum = vec![0.0f64; n];
            for &(r, c, v) in &off {
                if r != c {
                    entries.push((r, c, v));
                    rowsum[r] += v.abs();
                }
            }
            for (i, rs) in rowsum.iter().enumerate() {
                entries.push((i, i, rs + 1.0));
            }
            (n, entries, rhs, k)
        })
    })
}

const ORDERINGS: [OrderingChoice; 3] = [
    OrderingChoice::Natural,
    OrderingChoice::Rcm,
    OrderingChoice::Amd,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CI gate: blocked solve and refactor are bit-identical to the scalar
    /// reference path — solutions *and* flop accounting — over random
    /// patterns and every ordering.
    #[test]
    fn blocked_matches_scalar((n, entries, rhs, _k) in dominant_system()) {
        let a = CsrMatrix::from_triplets(n, n, &entries);
        let b = &rhs[..n];
        for choice in ORDERINGS {
            let mut lu = SparseLu::factor_ordered(
                &a, choice, PivotStrategy::default(), &mut FlopCounter::new(),
            ).unwrap();
            // These systems sit below the blocked-kernel size gate; force
            // the panel kernels on so the proptest exercises them.
            lu.set_blocked_kernels(true);
            let (mut xb, mut wb) = (Vec::new(), Vec::new());
            let (mut xs, mut ws) = (Vec::new(), Vec::new());
            let mut fb = FlopCounter::new();
            let mut fs = FlopCounter::new();
            lu.solve_into(b, &mut xb, &mut wb, &mut fb).unwrap();
            lu.solve_into_scalar(b, &mut xs, &mut ws, &mut fs).unwrap();
            prop_assert_eq!(&xb, &xs, "{:?}: fresh-factor solve bits", choice);
            prop_assert_eq!(fb, fs, "{:?}: solve flop accounting", choice);

            // Refactor with perturbed values (same pattern), both paths.
            let mut a2 = a.clone();
            for (i, v) in a2.values_mut().iter_mut().enumerate() {
                *v *= 1.0 + 0.01 * ((i % 7) as f64 - 3.0);
            }
            let mut scalar = lu.clone();
            let mut fb = FlopCounter::new();
            let mut fs = FlopCounter::new();
            lu.refactor(&a2, &mut fb).unwrap();
            scalar.refactor_scalar(&a2, &mut fs).unwrap();
            prop_assert_eq!(fb, fs, "{:?}: refactor flop accounting", choice);
            lu.solve_into(b, &mut xb, &mut wb, &mut FlopCounter::new()).unwrap();
            scalar
                .solve_into_scalar(b, &mut xs, &mut ws, &mut FlopCounter::new())
                .unwrap();
            prop_assert_eq!(&xb, &xs, "{:?}: post-refactor solve bits", choice);
        }
    }

    /// Batched multi-RHS solves are bit-identical to `k` independent
    /// single-RHS solves, column by column, flops included.
    #[test]
    fn multi_rhs_matches_singles((n, entries, rhs, k) in dominant_system()) {
        let a = CsrMatrix::from_triplets(n, n, &entries);
        for choice in ORDERINGS {
            let mut lu = SparseLu::factor_ordered(
                &a, choice, PivotStrategy::default(), &mut FlopCounter::new(),
            ).unwrap();
            lu.set_blocked_kernels(true);
            let mut fm = FlopCounter::new();
            let xm = lu.solve_many(&rhs[..n * k], k, &mut fm).unwrap();
            let mut fs = FlopCounter::new();
            for j in 0..k {
                let xj = lu.solve(&rhs[j * n..(j + 1) * n], &mut fs).unwrap();
                prop_assert_eq!(&xm[j * n..(j + 1) * n], &xj[..], "{:?} col {}", choice, j);
            }
            prop_assert_eq!(fm, fs, "{:?}: batched flop accounting", choice);
        }
    }
}

/// Sharded sweeps riding the blocked kernels (and the batched multi-RHS
/// chunk warm-start) stay bit-identical to serial at every worker count,
/// for every ordering.
#[test]
fn sharded_sweep_bit_identical_at_every_worker_count() {
    for ordering in ORDERINGS {
        let mk = || {
            Simulator::with_options(
                workloads::rtd_mesh_n(6),
                SimOptions {
                    ordering,
                    ..Default::default()
                },
            )
            .expect("assembles")
        };
        let request = || Analysis::dc_sweep("V1", 0.0, 3.0, 0.05);
        let serial = mk().run(request()).unwrap();
        for workers in [1usize, 2, 4, 7] {
            let sharded = mk()
                .run(request().plan(ExecPlan::sharded(workers)))
                .unwrap();
            for name in serial.names() {
                assert_eq!(
                    serial.column(name),
                    sharded.column(name),
                    "{ordering:?}: column {name} differs at workers = {workers}"
                );
            }
            assert_eq!(serial.stats.linear_solves, sharded.stats.linear_solves);
            assert_eq!(serial.stats.full_factors, sharded.stats.full_factors);
        }
    }
}

/// The EM ensemble's lockstep multi-RHS batching stays bit-identical at
/// every thread count (mean, spread and per-path maxima all flow through
/// the batched `C` solves).
#[test]
fn em_ensemble_bit_identical_at_every_worker_count() {
    use nanosim::core::em::{EmEngine, EmOptions};
    let circuit = workloads::noisy_rc_node_fig10();
    let run = |threads: usize| {
        EmEngine::new(EmOptions {
            dt: 5e-12,
            paths: 21, // deliberately not a multiple of PATH_CHUNK
            seed: 77,
            threads,
            ..EmOptions::default()
        })
        .run(&circuit, 1e-9)
        .expect("ensemble runs")
    };
    let serial = run(1);
    for threads in [2usize, 4, 7] {
        let parallel = run(threads);
        for name in serial.names() {
            let (a, b) = (
                serial.mean_waveform(name).unwrap(),
                parallel.mean_waveform(name).unwrap(),
            );
            assert_eq!(a.values(), b.values(), "mean at {threads} threads");
            let (a, b) = (
                serial.std_waveform(name).unwrap(),
                parallel.std_waveform(name).unwrap(),
            );
            assert_eq!(a.values(), b.values(), "std at {threads} threads");
            assert_eq!(
                serial.peak_summary(name).unwrap().worst_peak,
                parallel.peak_summary(name).unwrap().worst_peak,
                "peaks at {threads} threads"
            );
        }
    }
}

/// Iterative refinement extends a cached analysis's life through pivot
/// decay: marching a stiff transient-shaped matrix sequence (one fixed
/// sparsity pattern, a diagonal entry collapsing over twelve decades —
/// the shape of a conductance switching off against a fixed `C/h`)
/// through one `SparseLuSolver` must stay accurate at every step while
/// performing **no** additional full factorization — refinement steps,
/// counted in `LuStats`, absorb the degradation the old policy re-pivoted
/// for.
#[test]
fn stiff_sequence_refines_instead_of_repivoting() {
    use nanosim_numeric::solve::{LinearSolver, SparseLuSolver};
    use nanosim_numeric::sparse::TripletMatrix;

    let n = 12;
    let system = |g: f64| {
        // Chain conductance matrix whose head node carries only `g` to
        // ground: its (first-eliminated) pivot is `g` against a fixed
        // unit coupling, so the cached pivot's ratio marches through the
        // degradation threshold as `g` collapses.
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            let gi = if i == 0 { g } else { 2.5 };
            t.push(i, i, gi + 1e-9);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    };
    let b: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).sin()).collect();
    let mut solver = SparseLuSolver::new();
    let mut x = Vec::new();
    let mut flops = FlopCounter::new();
    for step in 0..60 {
        // 2.5 → 2.5e-12: sweeps straight through the 1e-6 pivot-decay
        // threshold that used to force a full re-pivot per step.
        let g = 2.5 * (10.0f64).powf(-(step as f64) * 0.2);
        let a = system(g);
        solver.solve_into(&a, &b, &mut x, &mut flops).unwrap();
        let ax = a.matvec(&x, &mut FlopCounter::new()).unwrap();
        for (i, (l, r)) in ax.iter().zip(b.iter()).enumerate() {
            assert!(
                (l - r).abs() <= 1e-8 * r.abs().max(1.0),
                "step {step} (g = {g:.2e}): residual[{i}] = {}",
                (l - r).abs()
            );
        }
    }
    let stats = solver.lu_stats();
    assert_eq!(
        stats.full_factors, 1,
        "refinement must keep the first analysis alive: {stats:?}"
    );
    assert_eq!(stats.refactors, 59);
    assert!(
        stats.refinement_steps > 0,
        "the degraded tail of the sweep must refine: {stats:?}"
    );
    println!(
        "stiff sequence: {} refactors, {} refinement steps, {} full factors",
        stats.refactors, stats.refinement_steps, stats.full_factors
    );
}

/// The batched chunk warm-start seeds are bit-identical to the per-chunk
/// non-iterative solves they replace, so the sharded sweep keeps the PR 2
/// warm-start contract: a sweep long enough to span many chunks matches
/// the *legacy serial engine* within the fixed-point tolerance everywhere
/// the serial continuation chain is well-posed (mesh workload, no
/// bistability).
#[test]
fn batched_warm_start_matches_legacy_continuation() {
    // Monotone pre-peak bias region: the serial continuation chain is
    // well-posed there, so chunked-with-batched-seeds and legacy agree to
    // the fixed-point tolerance (through the NDR region only the
    // branch-tracking contract holds, covered by tests/session.rs).
    let ckt = workloads::rtd_mesh_n(5);
    let mut sim = Simulator::new(ckt.clone()).unwrap();
    let ds = sim.run(Analysis::dc_sweep("V1", 0.0, 1.5, 0.01)).unwrap();
    let legacy = SwecDcSweep::new(Default::default())
        .run(&ckt, "V1", 0.0, 1.5, 0.01)
        .unwrap();
    assert!(ds.points() > 100, "spans many chunks");
    for name in legacy.names() {
        let (a, b) = (ds.column(name).unwrap(), legacy.column(name).unwrap());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            let scale = y.abs().max(1.0);
            assert!((x - y).abs() <= 5e-6 * scale, "{name}[{i}]: {x} vs {y}");
        }
    }
}
