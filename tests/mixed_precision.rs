//! Mixed-precision and batched-factorization acceptance gates.
//!
//! Three contracts, all CI-gated:
//! - the mixed-precision solver path (f32 panel sweeps + f64 iterative
//!   refinement) matches the f64 path to `1e-12` of solution scale over
//!   random patterns and every ordering, and never falls back on healthy
//!   mesh workloads;
//! - `BatchedLu` k-way factors are **bit-identical** to `k` independent
//!   f64 refactors of the same matrices, lane by lane;
//! - EM ensembles with per-path parameter spread pay at least 1.3× fewer
//!   factor flops per path through the interleaved batch than a shared
//!   solver re-refactoring at every path switch would.

use nanosim::core::em::{EmEngine, EmOptions};
use nanosim_circuit::Circuit;
use nanosim_devices::sources::SourceWaveform;
use nanosim_numeric::flops::FlopCounter;
use nanosim_numeric::solve::{LinearSolver, PrecisionMode, SparseLuSolver};
use nanosim_numeric::sparse::{BatchedLu, CsrMatrix, OrderingChoice, PivotStrategy, SparseLu};
use proptest::prelude::*;

const ORDERINGS: [OrderingChoice; 3] = [
    OrderingChoice::Natural,
    OrderingChoice::Rcm,
    OrderingChoice::Amd,
];

/// Strategy: a random diagonally dominant n × n sparse system (guaranteed
/// nonsingular), a batch width, and per-lane value jitters.
#[allow(clippy::type_complexity)]
fn dominant_system() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>, Vec<f64>, usize)> {
    (4usize..24, 2usize..6).prop_flat_map(|(n, k)| {
        let offdiag = proptest::collection::vec(((0..n), (0..n), -2.0f64..2.0), 0..(n * 3));
        let rhs = proptest::collection::vec(-10.0f64..10.0, n);
        (Just(n), offdiag, rhs, Just(k)).prop_map(|(n, off, rhs, k)| {
            let mut entries: Vec<(usize, usize, f64)> = Vec::new();
            let mut rowsum = vec![0.0f64; n];
            for &(r, c, v) in &off {
                if r != c {
                    entries.push((r, c, v));
                    rowsum[r] += v.abs();
                }
            }
            for (i, rs) in rowsum.iter().enumerate() {
                entries.push((i, i, rs + 1.0));
            }
            (n, entries, rhs, k)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mixed-precision solve + refinement matches the f64 solver to
    /// `1e-12` of solution scale over random patterns and every ordering.
    /// (Fallback to f64 is allowed here — random systems may be poorly
    /// scaled — because the fallback *is* the f64 path; the no-fallback
    /// guarantee on healthy decks is gated deterministically below.)
    #[test]
    fn mixed_solve_matches_f64((n, entries, rhs, _k) in dominant_system()) {
        let a = CsrMatrix::from_triplets(n, n, &entries);
        for choice in ORDERINGS {
            let mut f64_solver = SparseLuSolver::with_ordering(choice);
            let mut mixed = SparseLuSolver::with_ordering(choice);
            mixed.set_precision(PrecisionMode::Mixed);
            let mut flops = FlopCounter::new();
            let (mut xf, mut xm) = (Vec::new(), Vec::new());
            f64_solver.solve_into(&a, &rhs, &mut xf, &mut flops).unwrap();
            mixed.solve_into(&a, &rhs, &mut xm, &mut flops).unwrap();
            let scale = xf.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for (m, f) in xm.iter().zip(xf.iter()) {
                prop_assert!(
                    (m - f).abs() <= 1e-12 * scale,
                    "{:?}: mixed {} vs f64 {} (scale {})", choice, m, f, scale
                );
            }
            let stats = mixed.lu_stats();
            prop_assert!(stats.f32_panel_solves > 0, "{:?}: f32 path never ran", choice);
        }
    }

    /// `BatchedLu` k-way factors are bit-identical to `k` independent f64
    /// refactors of the same matrices — values, diagonal, and pivot
    /// health, lane by lane.
    #[test]
    fn batched_factors_bit_identical_to_independent((n, entries, _rhs, k) in dominant_system()) {
        let base = CsrMatrix::from_triplets(n, n, &entries);
        let lanes: Vec<CsrMatrix> = (0..k)
            .map(|r| {
                let mut m = base.clone();
                for (i, v) in m.values_mut().iter_mut().enumerate() {
                    *v *= 1.0 + 0.01 * (((i + r) % 7) as f64 - 3.0);
                }
                m
            })
            .collect();
        let lane_refs: Vec<&CsrMatrix> = lanes.iter().collect();
        for choice in ORDERINGS {
            let batch = BatchedLu::factor_ordered(
                &lane_refs, choice, PivotStrategy::default(), &mut FlopCounter::new(),
            ).unwrap();
            // Independent baseline: template factor of lane 0's matrix,
            // then a values-only refactor per lane — the exact scalar
            // work the batch interleaves.
            for (r, mat) in lanes.iter().enumerate() {
                let mut solo = SparseLu::factor_ordered(
                    &lanes[0], choice, PivotStrategy::default(), &mut FlopCounter::new(),
                ).unwrap();
                solo.refactor_tolerant(mat, &mut FlopCounter::new()).unwrap();
                let (bl, bu, bd) = batch.lane_factors(r);
                let (sl, su, sd) = solo.factor_values();
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(&bl), bits(sl), "{:?} lane {}: L values", choice, r);
                prop_assert_eq!(bits(&bu), bits(su), "{:?} lane {}: U values", choice, r);
                prop_assert_eq!(bits(&bd), bits(sd), "{:?} lane {}: U diagonal", choice, r);
            }
        }
    }
}

/// Healthy golden-mesh workloads must never trip the precision fallback:
/// the deterministic companion of the random-pattern accuracy proptest
/// (and the same gate the CI bench smoke enforces on the full mesh
/// family).
#[test]
fn mixed_precision_never_falls_back_on_healthy_mesh() {
    // 12x12 five-point resistive mesh with dominant diagonal — the same
    // structure as the Table I RTD mesh family.
    let n = 12usize;
    let dim = n * n;
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    for r in 0..n {
        for c in 0..n {
            let i = r * n + c;
            let mut diag = 4.0;
            let link = |entries: &mut Vec<(usize, usize, f64)>, j: usize| {
                entries.push((i, j, -1.0));
            };
            if c + 1 < n {
                link(&mut entries, i + 1);
            } else {
                diag += 0.8;
            }
            if c > 0 {
                link(&mut entries, i - 1);
            }
            if r + 1 < n {
                link(&mut entries, i + n);
            }
            if r > 0 {
                link(&mut entries, i - n);
            }
            entries.push((i, i, diag));
        }
    }
    let a = CsrMatrix::from_triplets(dim, dim, &entries);
    let b: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin()).collect();
    for choice in ORDERINGS {
        let mut mixed = SparseLuSolver::with_ordering(choice);
        mixed.set_precision(PrecisionMode::Mixed);
        let mut x = Vec::new();
        let mut flops = FlopCounter::new();
        for _ in 0..5 {
            mixed.solve_into(&a, &b, &mut x, &mut flops).unwrap();
        }
        let stats = mixed.lu_stats();
        assert_eq!(stats.precision_fallbacks, 0, "{choice:?}: fell back");
        // Each solve pays one initial f32 sweep plus one f32 sweep per
        // refinement iteration.
        assert!(stats.f32_panel_solves >= 5, "{choice:?}: f32 path skipped");
    }
}

/// EM ensembles with per-path parameter spread: the interleaved chunk
/// batch must pay at least 1.3× fewer factor flops per path than the
/// pre-batch alternative — a shared solver re-refactoring at every path
/// switch, i.e. `steps × R` per path.
#[test]
fn em_param_spread_factor_flops_beat_path_switch_refactoring() {
    // Two coupled RC nodes with a noise drive; the coupling capacitor
    // makes C non-diagonal so factoring does real elimination work.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_current_source(
        "In",
        Circuit::GROUND,
        a,
        SourceWaveform::white_noise(1e-3, 1e-9).unwrap(),
    )
    .unwrap();
    ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
    ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
    ckt.add_capacitor("C1", a, Circuit::GROUND, 1e-12).unwrap();
    ckt.add_capacitor("C2", b, Circuit::GROUND, 1e-12).unwrap();
    ckt.add_capacitor("Cc", a, b, 2e-13).unwrap();

    let dt = 1e-12;
    let horizon = 1e-10; // 100 steps
    let paths = 16usize; // 2 chunks of PATH_CHUNK = 8
    let engine = EmEngine::new(EmOptions {
        dt,
        paths,
        seed: 11,
        threads: 1,
        param_spread: 0.05,
        ..EmOptions::default()
    });
    let result = engine.run(&ckt, horizon).unwrap();
    let steps = (horizon / dt).round() as u64;
    assert_eq!(result.stats.batched_factors, 2);
    let per_path_batched = result.stats.factor_flops as f64 / paths as f64;

    // Naive baseline: the same C pattern (node caps + coupling, MNA
    // stamping), refactored once per path switch per step.
    let c_mat = CsrMatrix::from_triplets(
        2,
        2,
        &[
            (0, 0, 1e-12 + 2e-13),
            (1, 1, 1e-12 + 2e-13),
            (0, 1, -2e-13),
            (1, 0, -2e-13),
        ],
    );
    let mut lu = SparseLu::factor(&c_mat, &mut FlopCounter::new()).unwrap();
    let mut refac_flops = FlopCounter::new();
    lu.refactor(&c_mat, &mut refac_flops).unwrap();
    let per_path_naive = (steps * refac_flops.total()) as f64;

    let ratio = per_path_naive / per_path_batched;
    assert!(
        ratio >= 1.3,
        "batched {per_path_batched} vs per-switch {per_path_naive} flops/path ({ratio:.2}x)"
    );
}
