//! Integration tests of the preflight static analyzer.
//!
//! The contract under test: a deck that passes preflight never hands a
//! *structurally* singular matrix to the first factorization, injected
//! voltage-source loops and current-source islands are always caught
//! before assembly, `PreflightMode::WarnOnly` trades the early rejection
//! for a numeric failure later, and the analyzer itself never perturbs
//! results — golden workloads are bit-identical with preflight on or off.

use nanosim::prelude::*;
use proptest::prelude::*;

/// A random *connected* resistor network: spanning tree + chords, a DC
/// source at the root, and a shunt so every node has a DC path. All
/// values sit inside the linter's plausible ranges.
fn connected_network() -> impl Strategy<Value = Circuit> {
    (3usize..14).prop_flat_map(|n| {
        let parents = proptest::collection::vec(0usize..1_000_000, n - 1);
        let chords = proptest::collection::vec((0usize..1_000_000, 0usize..1_000_000), 0..n);
        let resistances = proptest::collection::vec(20.0f64..2e3, 2 * n);
        (Just(n), parents, chords, resistances).prop_map(|(n, parents, chords, res)| {
            let mut ckt = Circuit::new();
            let nodes: Vec<_> = (0..n).map(|k| ckt.node(&format!("n{k}"))).collect();
            ckt.add_voltage_source("V1", nodes[0], Circuit::GROUND, SourceWaveform::dc(1.0))
                .unwrap();
            let mut ri = 0usize;
            let mut r = || {
                let v = res[ri % res.len()];
                ri += 1;
                v
            };
            for k in 1..n {
                let parent = parents[k - 1] % k;
                ckt.add_resistor(&format!("Rt{k}"), nodes[parent], nodes[k], r())
                    .unwrap();
            }
            for (idx, &(a, b)) in chords.iter().enumerate() {
                let (a, b) = (a % n, b % n);
                if a != b {
                    ckt.add_resistor(&format!("Rc{idx}"), nodes[a], nodes[b], r())
                        .unwrap();
                }
            }
            ckt.add_resistor("Rg", nodes[n - 1], Circuit::GROUND, 500.0)
                .unwrap();
            ckt
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Clean preflight implies the first factorization is structurally
    /// sound: the operating point solves without a singular matrix.
    #[test]
    fn clean_preflight_means_first_factorization_succeeds(ckt in connected_network()) {
        let report = lint_circuit(&ckt);
        prop_assert!(!report.has_errors(), "{report}");
        let mut sim = Simulator::new(ckt).expect("preflight is clean");
        let data = sim.run(Analysis::op()).expect("OP solves");
        prop_assert!(data.points() > 0);
    }

    /// A second source pinning the same node always forms a V-loop, and
    /// preflight always refuses the circuit before assembly.
    #[test]
    fn injected_vsource_loop_is_always_caught(ckt in connected_network()) {
        let mut ckt = ckt;
        let top = ckt.find_node("n0").unwrap();
        ckt.add_voltage_source("Vdup", top, Circuit::GROUND, SourceWaveform::dc(2.0))
            .unwrap();
        let report = lint_circuit(&ckt);
        prop_assert!(
            report.codes().contains(&LintCode::VsourceLoop),
            "{report}"
        );
        let err = Simulator::new(ckt).expect_err("preflight rejects the loop");
        prop_assert!(err.preflight_report().is_some(), "unexpected error: {err}");
    }

    /// A node reachable only through a current source is always flagged as
    /// an I-cutset and refused.
    #[test]
    fn injected_isource_island_is_always_caught(ckt in connected_network()) {
        let mut ckt = ckt;
        let isl = ckt.node("island");
        ckt.add_current_source("Iisl", Circuit::GROUND, isl, SourceWaveform::dc(1e-3))
            .unwrap();
        let report = lint_circuit(&ckt);
        prop_assert!(
            report.codes().contains(&LintCode::IsourceCutset),
            "{report}"
        );
        let err = Simulator::new(ckt).expect_err("preflight rejects the island");
        prop_assert!(err.preflight_report().is_some(), "unexpected error: {err}");
    }
}

/// Two sources disagreeing about one node: the canonical V-loop.
fn vloop_circuit() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("in");
    ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
        .unwrap();
    ckt.add_voltage_source("V2", a, Circuit::GROUND, SourceWaveform::dc(2.0))
        .unwrap();
    ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
    ckt
}

/// WarnOnly keeps the session constructible (the report is still there to
/// read) and the predicted singularity then shows up numerically — the
/// static verdict and `min_recip_pivot` agree.
#[test]
fn warn_only_defers_the_vloop_to_a_numeric_failure() {
    let opts = SimOptions {
        preflight: PreflightMode::WarnOnly,
        ..SimOptions::default()
    };
    let mut sim = Simulator::with_options(vloop_circuit(), opts).expect("WarnOnly constructs");
    assert!(sim.preflight().has_errors(), "{}", sim.preflight());
    let err = sim
        .run(Analysis::op())
        .expect_err("OP must fail numerically");
    assert!(
        err.preflight_report().is_none(),
        "failure must be numeric, not preflight: {err}"
    );
}

#[test]
fn off_mode_skips_the_analysis_entirely() {
    let opts = SimOptions {
        preflight: PreflightMode::Off,
        ..SimOptions::default()
    };
    let sim = Simulator::with_options(vloop_circuit(), opts).expect("Off constructs");
    assert!(sim.preflight().is_clean());
}

#[test]
fn enforce_mode_rejects_with_a_readable_report() {
    let err = Simulator::new(vloop_circuit()).expect_err("rejected");
    let report = err.preflight_report().expect("SimError::Preflight");
    assert!(report.codes().contains(&LintCode::VsourceLoop));
    let msg = err.to_string();
    assert!(msg.contains("preflight"), "{msg}");
    assert!(msg.contains("vsource-loop"), "{msg}");
}

/// Preflight is pattern-only: golden results are bit-identical whether the
/// analyzer ran or not.
#[test]
fn preflight_never_perturbs_golden_results() {
    let run = |mode: PreflightMode| {
        let opts = SimOptions {
            preflight: mode,
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(nanosim::workloads::rtd_divider(50.0), opts).unwrap();
        sim.run(Analysis::dc_sweep("V1", 0.0, 2.5, 0.05)).unwrap()
    };
    let on = run(PreflightMode::Enforce);
    let off = run(PreflightMode::Off);
    assert_eq!(on.column("I(X1)"), off.column("I(X1)"));
    assert_eq!(on.column("V(mid)"), off.column("V(mid)"));
}

/// Sensed cutsets survive preflight as warnings, and the warning count is
/// stamped into the dataset's engine stats.
#[test]
fn preflight_warnings_are_stamped_into_engine_stats() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_current_source("I1", Circuit::GROUND, a, SourceWaveform::dc(1e-3))
        .unwrap();
    ckt.add_vccs("G1", a, Circuit::GROUND, b, Circuit::GROUND, 1e-3)
        .unwrap();
    ckt.add_vccs("G2", b, Circuit::GROUND, a, Circuit::GROUND, -1e-3)
        .unwrap();
    let mut sim = Simulator::new(ckt).expect("warnings do not block");
    assert!(sim.preflight().warning_count() >= 1, "{}", sim.preflight());
    let data = sim.run(Analysis::op()).expect("gyrator OP solves");
    assert!(data.stats.preflight_warnings >= 1, "stats: {}", data.stats);
}
