//! Fault-injection recovery: under a deterministic [`FaultPlan`] every
//! analysis must either complete — with the rescue counters showing the
//! recovery and results matching the unfaulted run — or fail with a
//! structured forensics error. Panics are never acceptable, and outcomes
//! must be identical at every worker count. Healthy golden workloads must
//! report `rescues == 0` (the CI gate for "the ladder is inactive on
//! healthy decks").

use nanosim::core::error::Forensics;
use nanosim::core::mla::{MlaEngine, MlaOptions};
use nanosim::prelude::*;
use proptest::prelude::*;

/// The Figure 7(a) divider biased at a fixed DC voltage (the stock
/// workload drives V1 at 0 V for sweeping).
fn biased_divider(bias: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let mid = ckt.node("mid");
    ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(bias))
        .unwrap();
    ckt.add_resistor("R1", vin, mid, 50.0).unwrap();
    ckt.add_rtd("X1", mid, Circuit::GROUND, Rtd::date2005())
        .unwrap();
    ckt
}

/// Ramped RTD + RC load: a transient with real dynamics on every node.
fn ramp_rtd_rc() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("in");
    let b = ckt.node("mid");
    ckt.add_voltage_source(
        "V1",
        a,
        Circuit::GROUND,
        SourceWaveform::pwl(vec![(0.0, 0.0), (5e-9, 3.0), (10e-9, 3.0)]).unwrap(),
    )
    .unwrap();
    ckt.add_resistor("R1", a, b, 50.0).unwrap();
    ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
        .unwrap();
    ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-13).unwrap();
    ckt
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

// ---------------------------------------------------------------------------
// CI gate: the ladder is inactive on healthy decks.
// ---------------------------------------------------------------------------

#[test]
fn healthy_golden_workloads_report_zero_rescues() {
    // DC sweep of the Figure 7(a) divider, serial and sharded.
    let mut sim = Simulator::new(nanosim::workloads::rtd_divider(50.0)).unwrap();
    for plan in [ExecPlan::Serial, ExecPlan::sharded(4)] {
        let dc = sim
            .run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.05).plan(plan))
            .unwrap();
        assert_eq!(dc.stats.rescues, 0, "plan {plan:?}");
        assert_eq!(dc.stats.rescue_rungs, 0, "plan {plan:?}");
        assert_eq!(dc.stats.health(), HealthVerdict::Healthy, "plan {plan:?}");
    }
    assert_eq!(sim.injected_faults(), 0);

    // The Table I mesh sweep.
    let mut sim = Simulator::new(nanosim::workloads::rtd_mesh(4)).unwrap();
    let dc = sim.run(Analysis::dc_sweep("V1", 0.0, 2.0, 0.05)).unwrap();
    assert_eq!(dc.stats.rescues, 0);
    assert_eq!(dc.stats.health(), HealthVerdict::Healthy);

    // A transient with real dynamics.
    let mut sim = Simulator::new(ramp_rtd_rc()).unwrap();
    let tr = sim.run(Analysis::transient(0.05e-9, 10e-9)).unwrap();
    assert_eq!(tr.stats.rescues, 0);
    assert_eq!(tr.stats.rescue_rungs, 0);
    assert_eq!(tr.stats.health(), HealthVerdict::Healthy);
    assert!(!tr.is_truncated());
}

// ---------------------------------------------------------------------------
// Transient recovery: a NaN poison mid-run is absorbed bit-identically.
// ---------------------------------------------------------------------------

#[test]
fn nan_poison_mid_transient_recovers_bit_identically() {
    let clean = Simulator::new(ramp_rtd_rc())
        .unwrap()
        .run(Analysis::transient(0.05e-9, 10e-9))
        .unwrap();

    let mut sim = Simulator::new(ramp_rtd_rc()).unwrap();
    // Call 25 lands mid-transient (the t=0 OP uses only a handful of
    // factor-solves); entry (1, 1) is the `mid` node diagonal.
    sim.arm_faults(FaultPlan::new().with_nan_entry(25, 1, 1));
    let faulted = sim.run(Analysis::transient(0.05e-9, 10e-9)).unwrap();

    assert_eq!(sim.injected_faults(), 1, "exactly one poison fired");
    assert!(faulted.stats.rescues >= 1, "the retry must be counted");
    assert!(faulted.stats.rescue_rungs >= 1);
    assert_eq!(faulted.stats.health(), HealthVerdict::Rescued);
    // The retried step re-stamps from clean values: the waveform is the
    // unfaulted one, bit for bit.
    assert_eq!(clean.points(), faulted.points());
    for name in clean.names() {
        assert_eq!(
            bits(clean.column(name).unwrap()),
            bits(faulted.column(name).unwrap()),
            "column {name}"
        );
    }
}

// ---------------------------------------------------------------------------
// Operating-point recovery through the ladder.
// ---------------------------------------------------------------------------

#[test]
fn op_nan_poison_is_rescued_by_the_ladder() {
    let clean = Simulator::new(biased_divider(0.5))
        .unwrap()
        .run(Analysis::op())
        .unwrap();

    let mut sim = Simulator::new(biased_divider(0.5)).unwrap();
    sim.arm_faults(FaultPlan::new().with_nan_entry(1, 1, 1));
    let rescued = sim.run(Analysis::op()).unwrap();

    assert_eq!(sim.injected_faults(), 1);
    assert!(rescued.stats.rescues >= 1);
    assert_eq!(rescued.stats.health(), HealthVerdict::Rescued);
    // The rescued OP is the same fixed point within solver tolerance.
    let a = clean.value("mid").unwrap();
    let b = rescued.value("mid").unwrap();
    assert!((a - b).abs() <= 1e-9, "clean {a} vs rescued {b}");
}

#[test]
fn op_singular_pivot_is_rescued_by_the_ladder() {
    let mut sim = Simulator::new(biased_divider(0.5)).unwrap();
    sim.arm_faults(FaultPlan::new().with_singular_pivot(0, 1));
    let rescued = sim.run(Analysis::op()).unwrap();
    assert!(rescued.stats.rescues >= 1);
    assert_eq!(rescued.stats.health(), HealthVerdict::Rescued);
    let v = rescued.value("mid").unwrap();
    assert!(v > 0.0 && v < 0.5, "divider physics, got {v}");
}

// ---------------------------------------------------------------------------
// Sweep faults: structured, worker-count-invariant outcomes.
// ---------------------------------------------------------------------------

/// Runs the divider sweep with `plan_faults` armed, at `workers`.
fn faulted_sweep(fault: FaultPlan, workers: usize) -> Result<Dataset, SimError> {
    let mut sim = Simulator::new(nanosim::workloads::rtd_divider(50.0)).unwrap();
    sim.arm_faults(fault);
    sim.run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.05).plan(ExecPlan::sharded(workers)))
}

#[test]
fn sweep_singular_pivot_fails_structured_and_worker_count_invariant() {
    // The pivot fault re-fires in the chunk's rescue retry (each chunk
    // clone replays the plan), so this sweep must fail — with the same
    // structured error at every worker count, naming the chunk or point.
    let mut messages = Vec::new();
    for workers in [1usize, 2, 4] {
        let plan = FaultPlan::new().with_singular_pivot(60, 1);
        match faulted_sweep(plan, workers) {
            Ok(ds) => {
                // If the fault call index fell outside any chunk's working
                // range the sweep may legitimately complete; it must then
                // be rescue-free and healthy.
                messages.push(format!("ok:{}", ds.points()));
            }
            Err(e) => {
                assert!(
                    matches!(e, SimError::Numeric(_) | SimError::NonConvergence { .. }),
                    "unexpected error shape: {e:?}"
                );
                messages.push(format!("err:{e}"));
            }
        }
    }
    assert_eq!(messages[0], messages[1], "workers 1 vs 2");
    assert_eq!(messages[0], messages[2], "workers 1 vs 4");
}

#[test]
fn sweep_conductance_collapse_never_panics() {
    // A 12-decade conductance collapse on the `mid` diagonal: either the
    // fixed-point iteration absorbs the one bad solve and the sweep
    // completes near the clean result, or the failure is structured.
    let clean = Simulator::new(nanosim::workloads::rtd_divider(50.0))
        .unwrap()
        .run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.05))
        .unwrap();
    for at in [5u64, 40, 120] {
        let plan = FaultPlan::new().with_entry_scale(at, 1, 1, 1e-12);
        match faulted_sweep(plan, 2) {
            Ok(ds) => {
                assert_eq!(ds.points(), clean.points());
                let a = clean.column("mid").unwrap();
                let b = ds.column("mid").unwrap();
                for (k, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                    assert!(
                        (x - y).abs() <= 1e-6,
                        "point {k} diverged: clean {x} vs faulted {y} (at={at})"
                    );
                }
            }
            Err(e) => {
                assert!(
                    matches!(e, SimError::Numeric(_) | SimError::NonConvergence { .. }),
                    "unexpected error shape: {e:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: a seeded random fault plan yields the SAME outcome at
    /// every worker count — bit-identical datasets on recovery, identical
    /// structured errors on failure. Never a panic.
    #[test]
    fn seeded_fault_plans_are_worker_count_invariant(seed in 0u64..64) {
        let outcomes: Vec<String> = [1usize, 2, 4]
            .iter()
            .map(|&workers| {
                let plan = FaultPlan::seeded(seed, 3, 80, 3);
                match faulted_sweep(plan, workers) {
                    Ok(ds) => {
                        let mut s = format!("ok:{}:", ds.points());
                        for name in ds.names() {
                            for b in bits(ds.column(name).unwrap()) {
                                s.push_str(&format!("{b:x},"));
                            }
                        }
                        s
                    }
                    Err(e) => {
                        prop_assert!(
                            matches!(
                                e,
                                SimError::Numeric(_) | SimError::NonConvergence { .. }
                            ),
                            "seed {}: unexpected error shape {:?}", seed, e
                        );
                        format!("err:{e}")
                    }
                }
            })
            .collect();
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
        prop_assert_eq!(&outcomes[0], &outcomes[2]);
    }
}

// ---------------------------------------------------------------------------
// Fig 7 bistable OP from cold start via the ladder, damping disabled.
// ---------------------------------------------------------------------------

#[test]
fn bistable_op_succeeds_from_cold_start_with_damping_disabled() {
    // The bistable cold-start OP: the Figure 7 RTD driven by a current
    // source biased between valley and peak — the operating point the
    // voltage sweep's hysteresis region is made of, and the configuration
    // where the undamped secant fixed point fails outright (singular
    // pivot on the first cold iterate). With every damping knob disabled
    // (`dc_relaxation = 1`, rescue damping = 1, so the damped-retry rung
    // is a plain retry), only the homotopy rungs (gmin / source /
    // pseudo-transient) can deliver the OP.
    let mut ckt = Circuit::new();
    let m = ckt.node("mid");
    ckt.add_current_source("I1", Circuit::GROUND, m, SourceWaveform::dc(1e-3))
        .unwrap();
    ckt.add_rtd("X1", m, Circuit::GROUND, Rtd::sharp_valley())
        .unwrap();
    ckt.add_resistor("Rsh", m, Circuit::GROUND, 1e6).unwrap();

    let undamped_rescue = RescueOptions {
        damping: 1.0,
        ..RescueOptions::default()
    };
    // Without the ladder the plain solve fails with a structured error.
    let mut sim = Simulator::new(ckt.clone()).unwrap();
    let plain = sim.run(Analysis::op().options(SwecOptions {
        dc_relaxation: 1.0,
        rescue: RescueOptions::disabled(),
        ..SwecOptions::default()
    }));
    assert!(
        matches!(plain, Err(SimError::Numeric(_))),
        "expected undamped cold start to fail, got {plain:?}"
    );

    let mut sim = Simulator::new(ckt).unwrap();
    let op = sim
        .run(Analysis::op().options(SwecOptions {
            dc_relaxation: 1.0,
            rescue: undamped_rescue,
            ..SwecOptions::default()
        }))
        .expect("ladder delivers the bistable OP");
    assert!(op.stats.rescues >= 1, "the plain solve must have failed");
    assert!(op.stats.rescue_rungs >= 2, "damped retry alone cannot help");
    assert_eq!(op.stats.health(), HealthVerdict::Rescued);
    // KCL at the solved point: source current splits between RTD and shunt.
    let v = op.value("mid").unwrap();
    assert!(v > 0.0 && v < 10.0, "physical bias, got {v}");
    let mut f = FlopCounter::new();
    let i = Rtd::sharp_valley().current(v, &mut f) + v / 1e6;
    assert!((i - 1e-3).abs() <= 1e-5, "KCL: {i} at v={v}");
}

// ---------------------------------------------------------------------------
// Satellite: MLA sweep failures name the failing point.
// ---------------------------------------------------------------------------

#[test]
fn mla_sweep_failure_pinpoints_point_and_value() {
    // A one-iteration budget: every point past the exact 0 V solution
    // fails to converge, so the sweep must fail and name the first one.
    let engine = MlaEngine::new(MlaOptions {
        max_iterations: 1,
        ..MlaOptions::default()
    });
    let err = engine
        .run_dc_sweep(&nanosim::workloads::rtd_divider(50.0), "V1", 0.0, 2.0, 0.5)
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("first at point"), "{msg}");
    let fx: &Forensics = err.forensics().expect("sweep failures carry forensics");
    let idx = fx.point_index.expect("failing point index");
    assert!(idx >= 1, "point 0 (0 V) is exact");
    let value = fx.sweep_value.expect("failing sweep value");
    assert!((value - 0.5 * idx as f64).abs() < 1e-12, "value {value}");
}

// ---------------------------------------------------------------------------
// Satellite: step underflow carries the last accepted state; allow_partial
// returns the accepted prefix instead.
// ---------------------------------------------------------------------------

/// Options that make the first real transient step impossible: any RTD
/// branch-voltage movement beyond 1e-12 V rejects the step, so `h` halves
/// down to `h_min` and underflows.
fn impossible_step_options() -> SwecOptions {
    SwecOptions {
        dv_max: 1e-12,
        h_min: 1e-12,
        ..SwecOptions::default()
    }
}

#[test]
fn step_underflow_reports_last_accepted_state() {
    let mut sim = Simulator::new(ramp_rtd_rc()).unwrap();
    let err = sim
        .run(Analysis::transient(0.05e-9, 10e-9).options(impossible_step_options()))
        .unwrap_err();
    assert!(matches!(err, SimError::StepSizeUnderflow { .. }), "{err:?}");
    let last = err.last_accepted().expect("underflow carries state");
    assert!(last.time >= 0.0 && last.time < 10e-9);
    assert!(!last.state.is_empty(), "state summary present");
    assert!(
        last.state.iter().any(|(name, _)| name == "mid"),
        "named node voltages: {:?}",
        last.state
    );
    // The Display surfaces it for triage.
    let msg = err.to_string();
    assert!(msg.contains("last accepted"), "{msg}");
}

#[test]
fn allow_partial_returns_accepted_prefix() {
    let mut sim = Simulator::new(ramp_rtd_rc()).unwrap();
    let ds = sim
        .run(
            Analysis::transient(0.05e-9, 10e-9)
                .options(impossible_step_options())
                .allow_partial(),
        )
        .expect("allow_partial converts underflow into a truncated dataset");
    assert!(ds.is_truncated());
    let at = ds.truncated_at().unwrap();
    assert!(at < 10e-9, "truncated before tstop, at {at}");
    assert!(ds.points() >= 1, "the t=0 OP is always accepted");
    // The prefix is a valid dataset: named columns, aligned lengths.
    assert!(ds.names().iter().any(|n| n == "mid"));
    assert_eq!(ds.column("mid").unwrap().len(), ds.points());
}
