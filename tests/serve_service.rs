//! Integration tests of the `nanosim-serve` service layer.
//!
//! The contracts under test: result-cache hits are **bit-identical** to
//! cold runs (including across `ExecPlan` worker counts — the key
//! deliberately excludes the plan because sharded engines are
//! bit-identical to serial); value-only deck changes never collide on
//! `DeckKey` but share a `TopologyKey`; a same-topology resubmit rides a
//! warm session and pays **zero** new full factorizations; the store
//! evicts by bytes without forgetting run metadata; batch fan-out shares
//! one pooled session across a whole parameter grid; and the JSON-lines
//! front-end answers junk and preflight-failing decks with structured
//! errors, never a panic.

use nanosim::core::Budget;
use nanosim::serve::{
    handle_line, BatchRequest, CacheDisposition, RunStatus, ServiceOptions, SimService,
    SubmitOptions,
};
use nanosim::workloads::{param_grid, rtd_mesh_param_deck};
use proptest::prelude::*;

/// Every column of both datasets, compared at the bit level.
fn assert_bit_identical(a: &nanosim::core::sim::Dataset, b: &nanosim::core::sim::Dataset) {
    assert_eq!(a.names(), b.names());
    assert_eq!(a.points(), b.points());
    for name in a.names() {
        let ca = a.column(name).expect("column exists");
        let cb = b.column(name).expect("column exists");
        let bits_a: Vec<u64> = ca.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = cb.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "column {name} differs");
    }
}

#[test]
fn result_cache_hit_is_bit_identical_across_worker_counts() {
    let deck = rtd_mesh_param_deck(4);

    // Cold serial run.
    let mut svc = SimService::new(ServiceOptions::default());
    let ids = svc.submit_opts(&deck, &[], Some(1)).unwrap();
    assert_eq!(ids.len(), 1);
    let cold = {
        let rec = svc.result(ids[0]).unwrap();
        assert_eq!(rec.cache, CacheDisposition::Cold);
        rec.result.as_ref().unwrap().dataset.clone()
    };

    // Same deck requested with a different worker count: the analysis key
    // excludes the plan, so this answers from the result cache — and must
    // be bit-identical anyway.
    let ids = svc.submit_opts(&deck, &[], Some(4)).unwrap();
    let rec = svc.result(ids[0]).unwrap();
    assert_eq!(rec.cache, CacheDisposition::ResultHit);
    assert_eq!(rec.full_factors, 0);
    assert_bit_identical(&cold, &rec.result.as_ref().unwrap().dataset);
    assert_eq!(svc.stats().result_hits, 1);

    // And a genuinely cold sharded run in a fresh service agrees bit for
    // bit, which is what makes the plan-free key sound.
    let mut sharded = SimService::new(ServiceOptions::default());
    let ids = sharded.submit_opts(&deck, &[], Some(4)).unwrap();
    let rec = sharded.result(ids[0]).unwrap();
    assert_eq!(rec.cache, CacheDisposition::Cold);
    assert_bit_identical(&cold, &rec.result.as_ref().unwrap().dataset);
}

#[test]
fn param_override_changes_deck_key_but_not_topology_key() {
    let deck = rtd_mesh_param_deck(3);
    let base = nanosim::circuit::parse_netlist(&deck).unwrap();
    let over =
        nanosim::circuit::parse_netlist_with_params(&deck, &[("rgrid".into(), 220.0)]).unwrap();
    assert_ne!(
        nanosim::serve::DeckKey::of(&base.circuit),
        nanosim::serve::DeckKey::of(&over.circuit),
        "value change must change the result-cache key"
    );
    assert_eq!(
        nanosim::serve::TopologyKey::of(&base.circuit),
        nanosim::serve::TopologyKey::of(&over.circuit),
        "value change must keep the session-pool key"
    );

    // End to end: the override's runs must not answer from the base
    // deck's result cache.
    let mut svc = SimService::new(ServiceOptions::default());
    let a = svc.submit(&deck).unwrap();
    let b = svc
        .submit_opts(&deck, &[("rgrid".into(), 220.0)], None)
        .unwrap();
    let rec_b = svc.result(b[0]).unwrap();
    assert_ne!(rec_b.cache, CacheDisposition::ResultHit);
    let rec_a = svc.result(a[0]).unwrap();
    let va = rec_a.result.as_ref().unwrap().dataset.clone();
    let vb = svc
        .result(b[0])
        .unwrap()
        .result
        .as_ref()
        .unwrap()
        .dataset
        .clone();
    assert_ne!(
        va.column("g0_0").unwrap(),
        vb.column("g0_0").unwrap(),
        "different resistances must produce different node voltages"
    );
}

#[test]
fn warm_session_resubmit_pays_zero_full_factors() {
    let deck = rtd_mesh_param_deck(4);
    let mut svc = SimService::new(ServiceOptions::default());
    let first = svc.submit(&deck).unwrap();
    let cold_full_factors = svc.stats().full_factors;
    assert!(cold_full_factors > 0, "cold run must factor at least once");
    assert_eq!(svc.status(first[0]).unwrap().cache, CacheDisposition::Cold);

    // New values, same pattern: the pooled session rebinds and only
    // refactors — ServeStats reports zero *new* full factors.
    let second = svc
        .submit_opts(&deck, &[("rgrid".into(), 150.0)], None)
        .unwrap();
    let rec = svc.status(second[0]).unwrap();
    assert_eq!(rec.cache, CacheDisposition::WarmSession);
    assert_eq!(rec.full_factors, 0, "warm session must not re-factor");
    assert!(rec.refactors > 0, "warm session refactors instead");
    assert_eq!(
        svc.stats().full_factors,
        cold_full_factors,
        "second same-topology submit reports 0 new full factors"
    );
    assert_eq!(svc.stats().session_warm, 1);
    assert_eq!(svc.sessions(), 1, "one pooled session serves both decks");
}

#[test]
fn store_evicts_payloads_by_bytes_but_keeps_run_metadata() {
    let opts = ServiceOptions {
        store_capacity_bytes: 1, // room for exactly one payload (min kept)
        ..ServiceOptions::default()
    };
    let mut svc = SimService::new(opts);
    let a = svc
        .submit("V1 in 0 DC 1\nR1 in out 100\nR2 out 0 100\n.op\n.end\n")
        .unwrap();
    let b = svc
        .submit("V1 in 0 DC 1\nR1 in out 100\nR2 out 0 220\n.op\n.end\n")
        .unwrap();

    // The first payload was evicted to admit the second.
    let rec = svc.status(a[0]).unwrap();
    assert!(rec.evicted, "status still answers for evicted runs");
    assert!(matches!(rec.status, RunStatus::Done));
    let err = svc.result(a[0]).expect_err("payload is gone");
    assert_eq!(err.kind(), "evicted");
    assert!(svc.result(b[0]).unwrap().result.is_some());
    assert!(svc.stats().store_evictions > 0);

    // Explicit eviction still works and is idempotent.
    assert!(svc.evict(b[0]).unwrap());
    assert!(!svc.evict(b[0]).unwrap());
}

#[test]
fn batch_grid_shares_one_pooled_session() {
    let deck = rtd_mesh_param_deck(3);
    let grid = param_grid(&[("rgrid".into(), vec![50.0, 100.0, 150.0])]);
    let mut svc = SimService::new(ServiceOptions::default());
    let ids = svc
        .batch(&BatchRequest {
            deck,
            grid,
            workers: None,
        })
        .unwrap();
    assert_eq!(ids.len(), 3, "one run per grid point");
    for id in &ids {
        let rec = svc.status(*id).unwrap();
        assert!(matches!(rec.status, RunStatus::Done), "run {id:?} failed");
    }
    assert_eq!(svc.stats().session_cold, 1, "only the first point is cold");
    assert_eq!(svc.stats().session_warm, 2, "the rest rebind the session");
    assert_eq!(svc.sessions(), 1);
    assert_eq!(svc.stats().batches, 1);
}

#[test]
fn preflight_failing_deck_yields_structured_failed_run() {
    // R2/R3 form a two-node island with no DC path to ground: parses fine,
    // fails preflight at session construction.
    let deck = "V1 a 0 DC 1\nR1 a 0 100\nR2 x y 100\nR3 y x 100\n.op\n.end\n";
    let mut svc = SimService::new(ServiceOptions::default());
    let ids = svc.submit(deck).unwrap();
    let rec = svc.status(ids[0]).unwrap();
    let RunStatus::Failed { error } = &rec.status else {
        panic!("expected a failed run, got {:?}", rec.status);
    };
    assert!(
        error.preflight_report().is_some(),
        "failure must carry the lint report, got: {error}"
    );

    // Through the JSON-lines front-end the same deck is a structured
    // "failed" run summary, not a transport error.
    let mut svc = SimService::new(ServiceOptions::default());
    let line = format!(
        "{{\"cmd\":\"submit\",\"deck\":{}}}",
        nanosim::serve::Json::Str(deck.to_string()).render()
    );
    let response = handle_line(&mut svc, &line);
    assert!(response.contains("\"ok\":true"), "{response}");
    assert!(response.contains("\"status\":\"failed\""), "{response}");
    assert!(response.contains("\"preflight\""), "{response}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random junk lines — arbitrary ASCII, often unbalanced JSON — must
    /// always produce a structured error response and leave the service
    /// usable.
    #[test]
    fn junk_lines_get_structured_errors(bytes in proptest::collection::vec(0u32..128, 0..60)) {
        let line: String = bytes
            .iter()
            .filter_map(|&b| char::from_u32(b))
            .collect();
        let mut svc = SimService::new(ServiceOptions::default());
        let response = handle_line(&mut svc, &line);
        let parsed = nanosim::serve::json::parse(&response)
            .expect("response is always valid JSON");
        prop_assert!(
            parsed.get("ok").is_some(),
            "response lacks ok field: {response}"
        );
        // The service survives: a well-formed submit still works.
        let good = "{\"cmd\":\"submit\",\"deck\":\"V1 a 0 DC 1\\nR1 a 0 100\\n.op\\n.end\\n\"}";
        let after = handle_line(&mut svc, good);
        prop_assert!(after.contains("\"ok\":true"), "{after}");
    }
}

#[test]
fn admission_limits_shed_with_structured_overloaded_responses() {
    const OP_DECK: &str = "V1 a 0 DC 1\nR1 a 0 100\n.op\n.end\n";

    // Deck-size limit.
    let mut svc = SimService::new(ServiceOptions {
        max_deck_bytes: 16,
        ..ServiceOptions::default()
    });
    let err = svc.submit(OP_DECK).unwrap_err();
    assert_eq!(err.kind(), "overloaded");
    assert_eq!(svc.runs(), 0, "a shed request registers nothing");
    assert_eq!(svc.stats().shed, 1);

    // Element-count limit.
    let mut svc = SimService::new(ServiceOptions {
        max_deck_elements: 1,
        ..ServiceOptions::default()
    });
    let err = svc.submit(OP_DECK).unwrap_err();
    assert_eq!(err.kind(), "overloaded");
    assert_eq!(svc.stats().shed, 1);

    // Pending-run limit: a held run occupies the queue.
    let mut svc = SimService::new(ServiceOptions {
        max_pending_runs: 1,
        ..ServiceOptions::default()
    });
    let held = svc
        .submit_with(
            OP_DECK,
            &SubmitOptions {
                hold: true,
                ..SubmitOptions::default()
            },
        )
        .unwrap();
    assert_eq!(held.len(), 1);
    let err = svc.submit(OP_DECK).unwrap_err();
    assert_eq!(err.kind(), "overloaded");
    assert_eq!(svc.stats().shed, 1);
    // Draining the queue restores admission.
    assert!(svc.cancel(held[0]).unwrap());
    svc.submit(OP_DECK).unwrap();

    // The protocol renders sheds with a top-level back-off code.
    let mut svc = SimService::new(ServiceOptions {
        max_deck_bytes: 16,
        ..ServiceOptions::default()
    });
    let r = handle_line(
        &mut svc,
        "{\"cmd\":\"submit\",\"deck\":\"V1 a 0 DC 1\\nR1 a 0 100\\n.op\\n.end\\n\"}",
    );
    assert!(
        r.contains("\"ok\":false") && r.contains("\"code\":\"overloaded\""),
        "{r}"
    );
}

#[test]
fn hold_run_and_cancel_lifecycle() {
    const OP_DECK: &str = "V1 a 0 DC 1\nR1 a 0 100\n.op\n.end\n";
    let mut svc = SimService::default();
    let opts = SubmitOptions {
        hold: true,
        ..SubmitOptions::default()
    };

    // Held runs stay queued until explicitly started…
    let ids = svc.submit_with(OP_DECK, &opts).unwrap();
    assert_eq!(svc.status(ids[0]).unwrap().status.tag(), "queued");
    svc.run_queued(ids[0]).unwrap();
    assert_eq!(svc.status(ids[0]).unwrap().status.tag(), "done");
    // …and a second start is a structured protocol error.
    assert!(svc.run_queued(ids[0]).is_err());

    // Cancelled held runs never execute.
    let ids = svc.submit_with(OP_DECK, &opts).unwrap();
    assert!(svc.cancel(ids[0]).unwrap());
    assert_eq!(svc.status(ids[0]).unwrap().status.tag(), "cancelled");
    assert!(svc.run_queued(ids[0]).is_err());
    assert!(!svc.cancel(ids[0]).unwrap(), "cancel is not re-entrant");
    assert_eq!(svc.stats().cancelled, 1);

    // Cancelling a finished run is a no-op, unknown ids are structured.
    let done = svc.submit(OP_DECK).unwrap();
    assert!(!svc.cancel(done[0]).unwrap());
    assert!(svc.cancel(nanosim::serve::RunId(999)).is_err());
}

#[test]
fn budget_limited_runs_count_stats_and_never_poison_the_result_cache() {
    const TRAN_DECK: &str = "V1 in 0 DC 1\nR1 in out 1000\nC1 out 0 1e-6\n.tran 1e-6 1e-4\n.end\n";
    let mut svc = SimService::default();
    let capped = SubmitOptions {
        budget: Some(Budget::unlimited().with_max_transient_steps(2)),
        ..SubmitOptions::default()
    };

    // Without allow_partial the run fails and is counted.
    let ids = svc.submit_with(TRAN_DECK, &capped).unwrap();
    assert_eq!(svc.status(ids[0]).unwrap().status.tag(), "failed");
    assert_eq!(svc.stats().budget_exceeded, 1);
    assert_eq!(svc.stats().deadline_timeouts, 0);

    // With allow_partial the accepted prefix is salvaged…
    let partial = SubmitOptions {
        allow_partial: true,
        ..capped.clone()
    };
    let ids = svc.submit_with(TRAN_DECK, &partial).unwrap();
    let rec = svc.result(ids[0]).unwrap();
    assert_eq!(rec.status.tag(), "done");
    let truncated_points = rec.result.as_ref().unwrap().dataset.points();
    assert!(rec.result.as_ref().unwrap().dataset.is_truncated());

    // …but never seeds the result cache: a later unlimited submit of the
    // same deck re-runs the engine and gets the full waveform.
    let misses_before = svc.stats().result_misses;
    let ids = svc.submit(TRAN_DECK).unwrap();
    {
        let rec = svc.result(ids[0]).unwrap();
        let full = &rec.result.as_ref().unwrap().dataset;
        assert!(!full.is_truncated());
        assert!(full.points() > truncated_points);
    }
    assert_eq!(svc.stats().result_misses, misses_before + 1);

    // A zero timeout trips the deadline deterministically at the first
    // checkpoint and is counted as a timeout.
    let timed_out = SubmitOptions {
        timeout: Some(std::time::Duration::ZERO),
        ..SubmitOptions::default()
    };
    let ids = svc
        .submit_with("V1 z 0 DC 1\nR1 z 0 77\n.op\n.end\n", &timed_out)
        .unwrap();
    assert_eq!(svc.status(ids[0]).unwrap().status.tag(), "failed");
    assert_eq!(svc.stats().budget_exceeded, 2);
    assert_eq!(svc.stats().deadline_timeouts, 1);
}
