//! Hierarchical-frontend integration: the Table I 10×10 mesh written as a
//! `.subckt cell` + 100 `X` instances must produce **bit-identical**
//! DC-sweep and transient `Dataset`s to the hand-unrolled mesh, controlled
//! sources must match hand-computed MNA solutions through the session API,
//! and flattening must be deterministic across construction paths
//! (builder vs parsed deck text).

use nanosim::prelude::*;
use nanosim::workloads;

/// Asserts two circuits are structurally identical up to element *names*
/// (same node names in the same id order, same element kinds/values/nodes
/// in the same order).
fn assert_same_structure(a: &Circuit, b: &Circuit) {
    assert_eq!(a.node_count(), b.node_count(), "node count");
    for ((ia, na), (ib, nb)) in a.nodes().iter().zip(b.nodes().iter()) {
        assert_eq!(ia, ib);
        assert_eq!(
            na.to_ascii_lowercase(),
            nb.to_ascii_lowercase(),
            "node order"
        );
    }
    assert_eq!(a.elements().len(), b.elements().len(), "element count");
    for (ea, eb) in a.elements().iter().zip(b.elements()) {
        assert_eq!(ea.nodes(), eb.nodes(), "{} vs {}", ea.name(), eb.name());
        assert_eq!(
            ea.kind().type_tag(),
            eb.kind().type_tag(),
            "{} vs {}",
            ea.name(),
            eb.name()
        );
    }
}

/// Bit-exact comparison of the shared columns of two datasets. `map`
/// translates a column name of `a` into the corresponding name in `b`
/// (identity for node voltages and independent-source branch currents).
fn assert_columns_bit_identical(a: &Dataset, b: &Dataset, map: impl Fn(&str) -> String) {
    assert_eq!(a.axis_values(), b.axis_values(), "axis differs");
    assert_eq!(a.names().len(), b.names().len(), "column count differs");
    for name in a.names() {
        let mapped = map(name);
        let ca = a.column(name).expect("column exists");
        let cb = b
            .column(&mapped)
            .unwrap_or_else(|| panic!("column {mapped} missing in b"));
        assert_eq!(ca, cb, "column {name} -> {mapped} not bit-identical");
    }
}

/// Maps hand-mesh column names onto the hierarchical mesh's mangled names:
/// the RTD `X<r>_<c>` lives inside instance `X<r>_<c>` as `YRTD1`.
fn mesh_name_map(name: &str) -> String {
    match name.strip_prefix("I(X") {
        Some(rest) => format!("I(YRTD1.X{}", rest),
        None => name.to_string(),
    }
}

const MESH_N: usize = 10;

#[test]
fn mesh_as_subckt_cells_matches_hand_mesh_structurally() {
    let hand = workloads::rtd_mesh(MESH_N);
    let cells = workloads::rtd_mesh_cells(MESH_N);
    assert_same_structure(&hand, &cells);
    // 100 instances -> 100 RTD elements named through the cell.
    assert!(cells.element("YRTD1.X0_0").is_some());
    assert!(cells.element("YRTD1.X9_9").is_some());
}

#[test]
fn mesh_deck_text_parses_to_the_same_circuit() {
    let deck = workloads::rtd_mesh_deck(MESH_N);
    // The headline artifact: one .subckt + 100 X instance lines.
    assert!(deck.lines().filter(|l| l.starts_with('X')).count() == 100);
    let parsed = parse_netlist(&deck).expect("mesh deck parses");
    assert_eq!(parsed.subckts.len(), 1);
    let built = workloads::rtd_mesh_cells(MESH_N);
    assert_same_structure(&built, &parsed.circuit);
    // Names agree exactly between the two hierarchical paths.
    for (ea, eb) in built.elements().iter().zip(parsed.circuit.elements()) {
        assert_eq!(ea.name(), eb.name());
    }
}

#[test]
fn mesh_dc_sweep_bit_identical_to_hand_mesh() {
    let mut hand = Simulator::new(workloads::rtd_mesh(MESH_N)).expect("hand mesh");
    let mut cells = Simulator::new(workloads::rtd_mesh_cells(MESH_N)).expect("cell mesh");
    let a = hand
        .run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.05))
        .expect("hand sweep");
    let b = cells
        .run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.05))
        .expect("cell sweep");
    assert_columns_bit_identical(&a, &b, mesh_name_map);
}

#[test]
fn mesh_dc_sweep_bit_identical_from_deck_text() {
    let parsed = parse_netlist(&workloads::rtd_mesh_deck(MESH_N)).expect("deck parses");
    let mut hand = Simulator::new(workloads::rtd_mesh(MESH_N)).expect("hand mesh");
    let mut deck = Simulator::new(parsed.circuit).expect("deck mesh");
    let a = hand
        .run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.05))
        .expect("hand sweep");
    let b = deck
        .run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.05))
        .expect("deck sweep");
    assert_columns_bit_identical(&a, &b, mesh_name_map);
}

#[test]
fn mesh_transient_bit_identical_to_hand_mesh() {
    let mut hand = Simulator::new(workloads::rtd_mesh(MESH_N)).expect("hand mesh");
    let mut cells = Simulator::new(workloads::rtd_mesh_cells(MESH_N)).expect("cell mesh");
    let a = hand
        .run(Analysis::transient(0.05e-9, 1e-9))
        .expect("hand transient");
    let b = cells
        .run(Analysis::transient(0.05e-9, 1e-9))
        .expect("cell transient");
    // Transient columns are MNA variables only — node names and I(V1) are
    // identical between the two builds, so the datasets match fully.
    assert_columns_bit_identical(&a, &b, |n| n.to_string());
}

/// The Figure 8(a) FET-RTD inverter as a subcircuit: same node and element
/// order as `workloads::fet_rtd_inverter`, so a transient through its NDR
/// switching trajectory is bit-identical.
fn fet_rtd_inverter_subckt() -> Circuit {
    let hand = workloads::fet_rtd_inverter();
    let mut b = CircuitBuilder::new();
    let mut inv = SubcktDef::new("inv", ["vdd", "out", "in"]);
    let (fet, cl, cin) = match (
        hand.element("M1").unwrap().kind(),
        hand.element("CL").unwrap().kind(),
        hand.element("Cin").unwrap().kind(),
    ) {
        (
            nanosim::circuit::ElementKind::Mosfet { model },
            nanosim::circuit::ElementKind::Capacitor {
                capacitance: cl, ..
            },
            nanosim::circuit::ElementKind::Capacitor {
                capacitance: cin, ..
            },
        ) => (model.clone(), *cl, *cin),
        _ => panic!("unexpected inverter structure"),
    };
    inv.param("cl", cl)
        .rtd("X1", "vdd", "out", Rtd::date2005())
        .rtd("X2", "out", "0", Rtd::date2005())
        .mosfet("M1", "out", "in", "0", fet)
        .capacitor("CL", "out", "0", "{cl}")
        .capacitor("Cin", "in", "0", cin);
    b.define(inv).expect("fresh definition");
    let vdd = b.node("vdd");
    let out = b.node("out");
    let vin = b.node("in");
    let (wf_vdd, wf_vin) = match (
        hand.element("Vdd").unwrap().kind(),
        hand.element("Vin").unwrap().kind(),
    ) {
        (
            nanosim::circuit::ElementKind::VoltageSource { waveform: a },
            nanosim::circuit::ElementKind::VoltageSource { waveform: b },
        ) => (a.clone(), b.clone()),
        _ => panic!("unexpected inverter sources"),
    };
    b.circuit_mut()
        .add_voltage_source("Vdd", vdd, Circuit::GROUND, wf_vdd)
        .unwrap();
    b.circuit_mut()
        .add_voltage_source("Vin", vin, Circuit::GROUND, wf_vin)
        .unwrap();
    b.instantiate("Xc", "inv", &[vdd, out, vin], &[])
        .expect("inverter instantiates");
    b.finish()
}

#[test]
fn inverter_subckt_transient_bit_identical() {
    let hier = fet_rtd_inverter_subckt();
    assert_same_structure(&workloads::fet_rtd_inverter(), &hier);
    let mut hand = Simulator::new(workloads::fet_rtd_inverter()).expect("hand inverter");
    let mut sub = Simulator::new(hier).expect("subckt inverter");
    let a = hand
        .run(Analysis::transient(0.1e-9, 20e-9))
        .expect("hand transient");
    let b = sub
        .run(Analysis::transient(0.1e-9, 20e-9))
        .expect("subckt transient");
    assert_columns_bit_identical(&a, &b, |n| n.to_string());
}

#[test]
fn controlled_source_op_matches_hand_mna_through_session() {
    // Hand-computable values (see crates/circuit/src/mna.rs unit tests):
    // v(e) = 2 V, v(g) = -2 V, v(f) = +2 V, v(h) = -0.5 V.
    let deck = parse_netlist(
        ".title controlled source op\n\
         V1 in 0 DC 1\n\
         R1 in 0 1k\n\
         E1 e 0 in 0 2.0\n\
         RE e 0 1k\n\
         G1 g 0 in 0 1m\n\
         RG g 0 2k\n\
         F1 f 0 V1 2\n\
         RF f 0 1k\n\
         H1 h 0 V1 500\n\
         RH h 0 1k\n\
         .op\n",
    )
    .expect("deck parses");
    let mut sim = Simulator::new(deck.circuit).expect("assembles");
    let op = sim.run(Analysis::op()).expect("op solves");
    let v = |name: &str| op.value(name).expect("node exists");
    assert!((v("e") - 2.0).abs() < 1e-9, "VCVS: v(e) = {}", v("e"));
    assert!((v("g") + 2.0).abs() < 1e-9, "VCCS: v(g) = {}", v("g"));
    assert!((v("f") - 2.0).abs() < 1e-9, "CCCS: v(f) = {}", v("f"));
    assert!((v("h") + 0.5).abs() < 1e-9, "CCVS: v(h) = {}", v("h"));
    // Branch currents are exposed for E and H sources.
    assert!((op.value("I(E1)").expect("E branch") + 2e-3).abs() < 1e-12);
    // KCL at `h`: v(h)/RH + i_H = 0 with v(h) = -0.5 V -> i_H = +0.5 mA.
    assert!((op.value("I(H1)").expect("H branch") - 0.5e-3).abs() < 1e-12);
}

#[test]
fn controlled_sources_work_in_dc_sweep_and_transient() {
    // An amplifier made of a VCVS (gain 3) buffering the divider midpoint.
    let deck = parse_netlist(
        ".title vcvs amplifier\n\
         V1 in 0 DC 0\n\
         R1 in mid 1k\n\
         R2 mid 0 1k\n\
         E1 out 0 mid 0 3\n\
         RL out 0 1k\n\
         CL out 0 1p\n",
    )
    .expect("deck parses");
    let mut sim = Simulator::new(deck.circuit).expect("assembles");
    let sweep = sim
        .run(Analysis::dc_sweep("V1", 0.0, 2.0, 0.5))
        .expect("sweep solves");
    let out = sweep.column("out").expect("out column");
    for (i, &v) in out.iter().enumerate() {
        let vin = 0.5 * i as f64;
        assert!(
            (v - 1.5 * vin).abs() < 1e-9,
            "vcvs sweep point {i}: {v} vs {}",
            1.5 * vin
        );
    }
    let tran = sim
        .run(Analysis::transient(0.05e-9, 2e-9))
        .expect("transient solves");
    // DC drive at 0 V: output must settle at 0.
    let last = *tran.column("out").unwrap().last().unwrap();
    assert!(last.abs() < 1e-9, "transient settles at {last}");
}

#[test]
fn sweeping_a_dependent_source_is_rejected() {
    let deck = parse_netlist(
        ".title bad sweep target\n\
         V1 in 0 DC 1\n\
         R1 in 0 1k\n\
         E1 out 0 in 0 2\n\
         RL out 0 1k\n",
    )
    .expect("deck parses");
    let mut sim = Simulator::new(deck.circuit).expect("assembles");
    let err = sim
        .run(Analysis::dc_sweep("E1", 0.0, 1.0, 0.1))
        .expect_err("dependent source cannot be swept");
    let msg = err.to_string();
    assert!(msg.contains("E1") && msg.contains("independent"), "{msg}");
}

#[test]
fn instance_overrides_propagate_to_engines() {
    // Two instances of the same divider cell with different R overrides
    // produce different midpoints under the same excitation.
    let deck = parse_netlist(
        ".title param overrides\n\
         .subckt div top mid rtop=1k rbot=1k\n\
         Ra top mid {rtop}\n\
         Rb mid 0 {rbot}\n\
         .ends\n\
         V1 a 0 DC 2\n\
         X1 a m1 div\n\
         X2 a m2 div rbot=3k\n\
         .op\n",
    )
    .expect("deck parses");
    let mut sim = Simulator::new(deck.circuit).expect("assembles");
    let op = sim.run(Analysis::op()).expect("op solves");
    assert!((op.value("m1").unwrap() - 1.0).abs() < 1e-9);
    assert!((op.value("m2").unwrap() - 1.5).abs() < 1e-9);
}

#[test]
fn parameterized_waveforms_resolve_per_instance_end_to_end() {
    // One clock-driver subckt, two timing corners: {per}/{vhi} inside
    // PULSE(..) resolve against each instance's parameter scope, and the
    // resulting transients are bit-identical to hand-built circuits with
    // the resolved waveforms.
    let deck = parse_netlist(
        ".title parameterized clock drivers\n\
         .subckt clkdrv out per=20n vhi=5\n\
         Vck out 0 PULSE(0 {vhi} 1n 1n 1n 4n {per})\n\
         .ends\n\
         X1 fast clkdrv per=8n vhi=2\n\
         Rf fast f2 1k\n\
         Cf f2 0 1p\n\
         .tran 0.1n 20n\n",
    )
    .expect("deck parses");
    let mut sim = Simulator::new(deck.circuit).expect("assembles");
    let ds = sim
        .run(Analysis::transient(0.1e-9, 20e-9))
        .expect("transient runs");

    // Hand-built reference with the resolved pulse.
    let mut ckt = Circuit::new();
    let fast = ckt.node("fast");
    let f2 = ckt.node("f2");
    ckt.add_voltage_source(
        "Vck.X1",
        fast,
        Circuit::GROUND,
        SourceWaveform::pulse(PulseParams {
            v1: 0.0,
            v2: 2.0,
            delay: 1e-9,
            rise: 1e-9,
            fall: 1e-9,
            width: 4e-9,
            period: 8e-9,
        })
        .expect("valid pulse"),
    )
    .expect("fresh");
    ckt.add_resistor("Rf", fast, f2, 1e3).expect("fresh");
    ckt.add_capacitor("Cf", f2, Circuit::GROUND, 1e-12)
        .expect("fresh");
    let mut ref_sim = Simulator::new(ckt).expect("assembles");
    let ref_ds = ref_sim
        .run(Analysis::transient(0.1e-9, 20e-9))
        .expect("transient runs");
    assert_eq!(ds.axis_values(), ref_ds.axis_values(), "time axes differ");
    assert_eq!(
        ds.column("f2").unwrap(),
        ref_ds.column("f2").unwrap(),
        "parameterized waveform transient not bit-identical"
    );
    // The pulse actually switches: the RC node swings between corners.
    let f2v = ds.column("f2").unwrap();
    let max = f2v.iter().cloned().fold(f64::MIN, f64::max);
    let min_late = f2v[f2v.len() / 2..]
        .iter()
        .cloned()
        .fold(f64::MAX, f64::min);
    assert!(max > 1.5, "pulse never charged the node: max {max}");
    assert!(min_late < 0.5, "pulse never discharged: min {min_late}");
}
