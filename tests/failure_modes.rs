//! Failure-injection integration tests: pathological circuits must produce
//! descriptive errors, never panics or silent garbage.

use nanosim::core::em::EmEngine;
use nanosim::core::pwl::PwlEngine;
use nanosim::core::swec::{SwecDcSweep, SwecTransient};
use nanosim::prelude::*;

#[test]
fn conflicting_voltage_sources_are_singular_not_panic() {
    // Two ideal sources forcing different voltages on the same node: the
    // MNA matrix is singular and the engine must say so.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
        .unwrap();
    ckt.add_voltage_source("V2", a, Circuit::GROUND, SourceWaveform::dc(2.0))
        .unwrap();
    ckt.add_resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
    let err = SwecDcSweep::new(SwecOptions::default())
        .solve_op(&ckt)
        .unwrap_err();
    assert!(
        matches!(err, SimError::Numeric(_)),
        "expected a numeric (singular) error, got {err:?}"
    );
}

#[test]
fn floating_node_rejected_before_any_solve() {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let orphan1 = ckt.node("x");
    let orphan2 = ckt.node("y");
    ckt.add_voltage_source("V1", a, Circuit::GROUND, SourceWaveform::dc(1.0))
        .unwrap();
    ckt.add_resistor("R0", a, Circuit::GROUND, 10.0).unwrap();
    ckt.add_resistor("R1", orphan1, orphan2, 1e3).unwrap();
    let err = SwecTransient::new(SwecOptions::default())
        .run(&ckt, 1e-12, 1e-9)
        .unwrap_err();
    assert!(matches!(err, SimError::Circuit(_)), "got {err:?}");
    assert!(err.to_string().contains("path to ground"), "{err}");
}

#[test]
fn empty_circuit_rejected_everywhere() {
    let ckt = Circuit::new();
    assert!(SwecDcSweep::new(SwecOptions::default())
        .solve_op(&ckt)
        .is_err());
    assert!(SwecTransient::new(SwecOptions::default())
        .run(&ckt, 1e-12, 1e-9)
        .is_err());
    assert!(NrEngine::new(NrOptions::default())
        .run_transient(&ckt, 1e-12, 1e-9)
        .is_err());
    assert!(EmEngine::new(EmOptions::default()).run(&ckt, 1e-9).is_err());
}

#[test]
fn unknown_sweep_source_named_in_error() {
    let ckt = nanosim::workloads::rtd_divider(50.0);
    for msg in [
        SwecDcSweep::new(SwecOptions::default())
            .run(&ckt, "Vmissing", 0.0, 1.0, 0.1)
            .unwrap_err()
            .to_string(),
        NrEngine::new(NrOptions::default())
            .run_dc_sweep(&ckt, "Vmissing", 0.0, 1.0, 0.1)
            .unwrap_err()
            .to_string(),
        PwlEngine::new(PwlOptions::default())
            .run_dc_sweep(&ckt, "Vmissing", 0.0, 1.0, 0.1)
            .unwrap_err()
            .to_string(),
    ] {
        assert!(msg.contains("Vmissing"), "{msg}");
    }
}

#[test]
fn parse_errors_carry_line_numbers() {
    let text = "V1 a 0 1\nR1 a 0 1k\nC1 a 0 frog\n";
    let err = parse_netlist(text).unwrap_err();
    assert!(err.to_string().contains("line 3"), "{err}");
}

#[test]
fn em_engine_refuses_what_it_cannot_integrate() {
    // Inductor -> branch variable -> not a state-space circuit.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    ckt.add_current_source("I1", Circuit::GROUND, a, SourceWaveform::dc(1e-3))
        .unwrap();
    ckt.add_inductor("L1", a, Circuit::GROUND, 1e-9).unwrap();
    ckt.add_capacitor("C1", a, Circuit::GROUND, 1e-12).unwrap();
    let err = EmEngine::new(EmOptions::default())
        .run(&ckt, 1e-9)
        .unwrap_err();
    assert!(matches!(err, SimError::UnsupportedCircuit { .. }));
    assert!(
        err.to_string().contains("Norton"),
        "actionable message: {err}"
    );
}

#[test]
fn transient_of_pure_resistive_circuit_works() {
    // No capacitors at all: the "C" matrix is empty but backward Euler
    // still solves the algebraic system at every step.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_voltage_source(
        "V1",
        a,
        Circuit::GROUND,
        SourceWaveform::pwl(vec![(0.0, 0.0), (1e-9, 1.0), (2e-9, 1.0)]).unwrap(),
    )
    .unwrap();
    ckt.add_resistor("R1", a, b, 1e3).unwrap();
    ckt.add_resistor("R2", b, Circuit::GROUND, 1e3).unwrap();
    let r = SwecTransient::new(SwecOptions::default())
        .run(&ckt, 0.05e-9, 2e-9)
        .unwrap();
    let out = r.waveform("b").unwrap();
    assert!((out.final_value() - 0.5).abs() < 1e-9);
}

#[test]
fn zero_volt_source_is_fine_for_swec() {
    // V = 0 exactly: every RTD sees 0 V, Geq uses the analytic dI/dV(0)
    // limit; nothing divides by zero.
    let ckt = nanosim::workloads::rtd_divider(50.0);
    let x = SwecDcSweep::new(SwecOptions::default())
        .solve_op(&ckt)
        .unwrap();
    assert!(x.iter().all(|v| v.is_finite()));
    assert!(x[1].abs() < 1e-9, "mid node at 0 V");
}

#[test]
fn near_instant_source_step_survives() {
    // A source step of 5 V in 1 fs: the source-forced node jumps exactly
    // (no dv_max rejection — its solution is not a linearization), the RC
    // output follows its 10 ps time constant, and the run completes.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("out");
    ckt.add_voltage_source(
        "V1",
        a,
        Circuit::GROUND,
        SourceWaveform::pwl(vec![(0.0, 0.0), (1e-15, 5.0), (1.0, 5.0)]).unwrap(),
    )
    .unwrap();
    ckt.add_resistor("R1", a, b, 100.0).unwrap();
    ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-13).unwrap();
    let r = SwecTransient::new(SwecOptions::default())
        .run(&ckt, 0.05e-9, 2e-9)
        .unwrap();
    let out = r.waveform("out").unwrap();
    assert!(out.values().iter().all(|v| v.is_finite()));
    assert!((out.final_value() - 5.0).abs() < 0.01);
    // ~63% at one time constant after the edge.
    let at_tau = out.value_at(1e-15 + 1e-11);
    assert!(
        (at_tau - 5.0 * (1.0 - (-1.0f64).exp())).abs() < 0.5,
        "{at_tau}"
    );
}

#[test]
fn dv_max_guard_bounds_rtd_branch_voltage_steps() {
    // The guard's real job: the RTD's branch voltage may never move more
    // than dv_max between accepted points, even under a fast ramp.
    let mut ckt = Circuit::new();
    let a = ckt.node("in");
    let b = ckt.node("mid");
    ckt.add_voltage_source(
        "V1",
        a,
        Circuit::GROUND,
        SourceWaveform::pwl(vec![(0.0, 0.0), (0.5e-9, 5.0), (5e-9, 5.0)]).unwrap(),
    )
    .unwrap();
    ckt.add_resistor("R1", a, b, 50.0).unwrap();
    ckt.add_rtd("X1", b, Circuit::GROUND, Rtd::date2005())
        .unwrap();
    ckt.add_capacitor("C1", b, Circuit::GROUND, 1e-13).unwrap();
    let opts = SwecOptions::default();
    let dv_max = opts.dv_max;
    let r = SwecTransient::new(opts).run(&ckt, 0.05e-9, 5e-9).unwrap();
    let mid = r.waveform("mid").unwrap();
    for w in mid.values().windows(2) {
        assert!(
            (w[1] - w[0]).abs() <= dv_max + 1e-9,
            "RTD voltage jumped {}",
            (w[1] - w[0]).abs()
        );
    }
}
