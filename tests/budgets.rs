//! Run-budget determinism across the session API: a budget-killed sharded
//! run must fail with the *same* structured error at every worker count, a
//! salvaged partial result must be bit-identical everywhere (and a bit-exact
//! prefix of the unbudgeted run), and budget-disabled runs must be
//! bit-identical to runs with no budget machinery engaged at all.

use nanosim::core::em::EmOptions;
use nanosim::prelude::*;
use proptest::prelude::*;

/// Runs the Table I 4x4 RTD mesh sweep under a per-solve iteration cap.
fn budgeted_sweep(limit: u64, workers: usize, partial: bool) -> Result<Dataset, SimError> {
    let mut sim = Simulator::new(nanosim::workloads::rtd_mesh(4)).expect("mesh assembles");
    sim.set_budget(Budget::unlimited().with_max_newton_iterations(limit));
    let mut req = Analysis::dc_sweep("V1", 0.0, 3.0, 0.05).plan(ExecPlan::sharded(workers));
    if partial {
        req = req.allow_partial();
    }
    sim.run(req)
}

/// Everything that must be worker-count-invariant about a failure: the
/// rendered message (checkpoint context included), the structured stop, and
/// the forensics sweep position.
fn fingerprint(e: &SimError) -> (String, Option<BudgetStop>, Option<usize>, Option<f64>) {
    let fx = e.forensics();
    (
        e.to_string(),
        e.budget_stop(),
        fx.and_then(|f| f.point_index),
        fx.and_then(|f| f.sweep_value),
    )
}

/// Smallest iteration cap that kills the sweep *after* the first chunk, so
/// partial salvage has a prefix to keep. Scanned, not hard-coded, so the
/// test survives solver-tolerance tuning.
fn mid_sweep_killing_limit() -> u64 {
    for limit in 1..200 {
        match budgeted_sweep(limit, 1, true) {
            Ok(ds) if ds.is_truncated() => return limit,
            _ => {}
        }
    }
    panic!("no iteration cap yields a truncated partial sweep");
}

#[test]
fn budget_killed_sharded_sweep_fails_identically_at_every_worker_count() {
    // A cap of 1 fixed-point iteration dies in the first chunk's warm
    // start: no salvage, structured error only.
    let serial = budgeted_sweep(1, 1, false).expect_err("cap of 1 must kill the sweep");
    assert!(
        matches!(
            serial.budget_stop(),
            Some(BudgetStop::NewtonIterations { limit: 1 })
        ),
        "unexpected error: {serial}"
    );
    for workers in [2usize, 4] {
        let e = budgeted_sweep(1, workers, false).expect_err("same budget, same death");
        assert_eq!(
            fingerprint(&e),
            fingerprint(&serial),
            "error diverged at workers = {workers}"
        );
    }
}

#[test]
fn salvaged_partial_sweep_is_identical_everywhere_and_a_prefix_of_the_full_run() {
    let limit = mid_sweep_killing_limit();
    let serial = budgeted_sweep(limit, 1, true).expect("limit was chosen to salvage");
    assert!(serial.is_truncated());
    let kept = serial.points();
    assert!(kept > 0, "salvage must keep at least one chunk");

    let full = budgeted_sweep(u64::MAX, 1, false).expect("unlimited cap runs to completion");
    assert!(kept < full.points(), "the budget must actually bite");

    // The salvaged prefix is bit-identical to the unbudgeted sweep.
    assert_eq!(&full.axis_values()[..kept], serial.axis_values());
    for name in serial.names() {
        assert_eq!(
            &full.column(name).unwrap()[..kept],
            serial.column(name).unwrap(),
            "column {name} is not a bit-exact prefix"
        );
    }

    // And every worker count reproduces the same truncated dataset.
    for workers in [2usize, 4] {
        let sharded = budgeted_sweep(limit, workers, true).expect("salvage is plan-invariant");
        assert!(sharded.is_truncated());
        assert_eq!(sharded.truncated_at(), serial.truncated_at());
        assert_eq!(sharded.points(), kept, "workers = {workers}");
        for name in serial.names() {
            assert_eq!(
                serial.column(name),
                sharded.column(name),
                "column {name} differs at workers = {workers}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: whatever a random iteration cap does to the sweep —
    /// complete it, truncate it, or kill it — the outcome is bit-identical
    /// at workers 1, 2 and 4.
    #[test]
    fn budget_outcome_is_worker_invariant(limit in 1u64..60, pidx in 0usize..2) {
        let partial = pidx == 1;
        let reference = budgeted_sweep(limit, 1, partial);
        for workers in [2usize, 4] {
            let got = budgeted_sweep(limit, workers, partial);
            match (&reference, &got) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.points(), b.points());
                    prop_assert_eq!(a.truncated_at(), b.truncated_at());
                    for name in a.names() {
                        prop_assert_eq!(a.column(name), b.column(name));
                    }
                }
                (Err(a), Err(b)) => prop_assert_eq!(fingerprint(a), fingerprint(b)),
                _ => prop_assert!(
                    false,
                    "outcome kind diverged at workers = {}: {:?} vs {:?}",
                    workers,
                    reference.as_ref().map(|_| "ok").map_err(ToString::to_string),
                    got.as_ref().map(|_| "ok").map_err(ToString::to_string)
                ),
            }
        }
    }
}

#[test]
fn transient_step_budget_salvages_a_bit_exact_prefix() {
    let run = |budget: Budget, partial: bool| -> Result<Dataset, SimError> {
        let mut sim =
            Simulator::new(nanosim::workloads::rtd_divider(50.0)).expect("divider assembles");
        sim.set_budget(budget);
        let mut req = Analysis::transient(0.5e-9, 5e-9);
        if partial {
            req = req.allow_partial();
        }
        sim.run(req)
    };
    let full = run(Budget::unlimited(), false).expect("unbudgeted transient completes");

    let capped = Budget::unlimited().with_max_transient_steps(3);
    let e = run(capped, false).expect_err("3-step cap without allow_partial fails");
    assert!(matches!(
        e.budget_stop(),
        Some(BudgetStop::TransientSteps { limit: 3 })
    ));

    let partial = run(capped, true).expect("allow_partial salvages the prefix");
    assert!(partial.is_truncated());
    assert_eq!(partial.points(), 4, "initial point + 3 accepted steps");
    assert_eq!(
        &full.axis_values()[..partial.points()],
        partial.axis_values()
    );
    for name in partial.names() {
        assert_eq!(
            &full.column(name).unwrap()[..partial.points()],
            partial.column(name).unwrap()
        );
    }
}

#[test]
fn em_ensemble_byte_budget_fails_identically_at_every_plan() {
    // The EM engine charges its full projected result size before fanning
    // out, so a byte cap kills the ensemble with the same structured error
    // no matter how many workers would have run.
    let run = |plan: ExecPlan| -> Result<Dataset, SimError> {
        let mut sim = Simulator::new(nanosim::workloads::noisy_rc_node_fig10())
            .expect("fig10 node assembles");
        sim.set_budget(Budget::unlimited().with_max_result_bytes(64));
        sim.run(
            Analysis::em_ensemble(1e-9)
                .options(EmOptions {
                    dt: 4e-12,
                    paths: 8,
                    seed: 2005,
                    ..EmOptions::default()
                })
                .plan(plan),
        )
    };
    let serial = run(ExecPlan::Serial).expect_err("64 bytes cannot hold an ensemble");
    assert!(matches!(
        serial.budget_stop(),
        Some(BudgetStop::ResultBytes { limit: 64 })
    ));
    for plan in [ExecPlan::sharded(2), ExecPlan::sharded(4)] {
        let e = run(plan).expect_err("same budget, same death");
        assert_eq!(fingerprint(&e), fingerprint(&serial), "plan {plan:?}");
    }
}

#[test]
fn pre_cancelled_token_kills_every_plan_with_the_same_error() {
    for workers in [1usize, 2, 4] {
        let mut sim = Simulator::new(nanosim::workloads::rtd_mesh(4)).expect("mesh assembles");
        let token = CancelToken::new();
        token.cancel();
        sim.set_cancel_token(token);
        let e = sim
            .run(Analysis::dc_sweep("V1", 0.0, 3.0, 0.05).plan(ExecPlan::sharded(workers)))
            .expect_err("cancelled before start");
        assert_eq!(e.budget_stop(), Some(BudgetStop::Cancelled));
        assert_eq!(
            e.to_string(),
            "budget exceeded: cancelled at analysis start",
            "workers = {workers}"
        );
    }
}

#[test]
fn unlimited_budget_is_bit_identical_to_no_budget() {
    // The contract the serve layer relies on: threading an explicit
    // unlimited budget through every engine changes nothing.
    let baseline = {
        let mut sim = Simulator::new(nanosim::workloads::rtd_mesh(4)).unwrap();
        sim.run(Analysis::dc_sweep("V1", 0.0, 3.0, 0.05)).unwrap()
    };
    let threaded = {
        let mut sim = Simulator::new(nanosim::workloads::rtd_mesh(4)).unwrap();
        sim.set_budget(Budget::unlimited());
        sim.set_cancel_token(CancelToken::new());
        sim.run(Analysis::dc_sweep("V1", 0.0, 3.0, 0.05)).unwrap()
    };
    assert_eq!(baseline.points(), threaded.points());
    for name in baseline.names() {
        assert_eq!(baseline.column(name), threaded.column(name));
    }
    assert_eq!(baseline.stats.linear_solves, threaded.stats.linear_solves);
}
