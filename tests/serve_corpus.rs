//! Golden-corpus test for the JSON-lines service protocol.
//!
//! Replays `tests/serve/requests.jsonl` through [`handle_line`] and
//! compares the volatile-masked responses against
//! `tests/serve/expected.jsonl` line for line — the same contract the CI
//! `nanosim-serve --corpus tests/serve` step enforces through the binary.
//! Regenerate the expectations after an intentional protocol change with
//! `cargo run -p nanosim-bench --bin nanosim-serve -- --record tests/serve`.

use nanosim::serve::{handle_line, mask_volatile, ServiceOptions, SimService};
use std::path::Path;

#[test]
fn golden_corpus_responses_are_stable() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/serve");
    let requests = std::fs::read_to_string(dir.join("requests.jsonl")).unwrap();
    let expected = std::fs::read_to_string(dir.join("expected.jsonl")).unwrap();

    let mut svc = SimService::new(ServiceOptions::default());
    let got: Vec<String> = requests
        .lines()
        .map(|line| mask_volatile(&handle_line(&mut svc, line)))
        .collect();
    let want: Vec<&str> = expected.lines().collect();
    assert_eq!(got.len(), want.len(), "response count changed");
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(
            g,
            w,
            "response {} diverged (regenerate with nanosim-serve --record if intentional)",
            i + 1
        );
    }
}

#[test]
fn masking_is_idempotent_and_total() {
    // Every expected line is already masked: re-masking is a fixpoint.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/serve");
    let expected = std::fs::read_to_string(dir.join("expected.jsonl")).unwrap();
    for line in expected.lines() {
        assert_eq!(mask_volatile(line), line);
        for key in nanosim::serve::proto::VOLATILE_KEYS {
            assert!(
                !line.contains(&format!("\"{key}\":{{")) && !line.contains(&format!("\"{key}\":[")),
                "unmasked volatile `{key}` in corpus: {line}"
            );
        }
    }
}
