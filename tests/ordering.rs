//! Fill-reducing-ordering integration: AMD must cut LU fill on the Table I
//! meshes, every ordering must reproduce the natural-order physics, the
//! default (`Auto`) pipeline must stay bit-identical on small systems, and
//! ordered runs must be deterministic across repeats and worker counts.
//!
//! `fill_regression_amd_vs_natural_mesh10` is the CI fill-regression gate:
//! it fails the build if AMD ever produces *more* fill than natural order
//! on the Table I 10×10 mesh.

use nanosim::prelude::*;
use nanosim::workloads;

/// Runs one op through a session pinned to `ordering` and returns its
/// engine statistics.
fn op_stats(circuit: Circuit, ordering: OrderingChoice) -> EngineStats {
    let mut sim = Simulator::with_options(
        circuit,
        SimOptions {
            ordering,
            ..Default::default()
        },
    )
    .expect("assembles");
    let ds = sim.run(Analysis::op()).expect("op solves");
    ds.stats.clone()
}

/// `|a - b| <= tol * max(1, |b|)` element-wise over two columns.
fn assert_columns_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        let scale = y.abs().max(1.0);
        assert!(
            (x - y).abs() <= tol * scale,
            "{what}[{i}]: {x} vs {y} (rel {})",
            (x - y).abs() / scale
        );
    }
}

#[test]
fn fill_regression_amd_vs_natural_mesh10() {
    // CI gate: AMD may never produce more LU fill than natural order on
    // the Table I 10×10 mesh.
    let natural = op_stats(workloads::rtd_mesh_n(10), OrderingChoice::Natural);
    let amd = op_stats(workloads::rtd_mesh_n(10), OrderingChoice::Amd);
    assert!(natural.nnz_lu > 0 && amd.nnz_lu > 0, "telemetry missing");
    assert!(
        amd.nnz_lu <= natural.nnz_lu,
        "fill regression: nnz_lu(amd) = {} > nnz_lu(natural) = {}",
        amd.nnz_lu,
        natural.nnz_lu
    );
    println!(
        "mesh10: nnz_lu natural {} vs amd {} ({:+.1}%)",
        natural.nnz_lu,
        amd.nnz_lu,
        100.0 * (amd.nnz_lu as f64 - natural.nnz_lu as f64) / natural.nnz_lu as f64
    );
}

#[test]
fn amd_strictly_reduces_fill_on_mesh20() {
    // Acceptance: on the 20×20 mesh AMD must *strictly* beat natural order.
    let natural = op_stats(workloads::rtd_mesh_n(20), OrderingChoice::Natural);
    let amd = op_stats(workloads::rtd_mesh_n(20), OrderingChoice::Amd);
    assert!(
        amd.nnz_lu < natural.nnz_lu,
        "nnz_lu(amd) = {} !< nnz_lu(natural) = {}",
        amd.nnz_lu,
        natural.nnz_lu
    );
    assert!(amd.fill_ratio < natural.fill_ratio);
    assert!(amd.fill_ratio >= 1.0, "L+U cannot be sparser than A");
    println!(
        "mesh20: nnz_lu natural {} (fill {:.2}x) vs amd {} (fill {:.2}x) — {:.1}% less fill",
        natural.nnz_lu,
        natural.fill_ratio,
        amd.nnz_lu,
        amd.fill_ratio,
        100.0 * (natural.nnz_lu - amd.nnz_lu) as f64 / natural.nnz_lu as f64
    );
}

#[test]
fn fill_regression_amd_vs_rcm_mesh40() {
    // CI gate for AMD supervariable detection (mass elimination): with
    // indistinguishable nodes merged and eliminated together, AMD must
    // beat RCM on both fill and factorization flops on the 40×40 mesh —
    // the flop gap the pre-supervariable implementation left open.
    let rcm = op_stats(workloads::rtd_mesh_n(40), OrderingChoice::Rcm);
    let amd = op_stats(workloads::rtd_mesh_n(40), OrderingChoice::Amd);
    assert!(
        amd.nnz_lu < rcm.nnz_lu,
        "fill regression: nnz_lu(amd) = {} !< nnz_lu(rcm) = {}",
        amd.nnz_lu,
        rcm.nnz_lu
    );
    assert!(
        amd.factor_flops < rcm.factor_flops,
        "flop regression: factor_flops(amd) = {} !< factor_flops(rcm) = {}",
        amd.factor_flops,
        rcm.factor_flops
    );
    // Supervariable-driven orders feed the blocked kernels: the factor
    // must actually carry supernodes.
    assert!(amd.supernodes > 0, "{amd}");
    println!(
        "mesh40: nnz_lu rcm {} vs amd {} ({:+.1}%), factor flops rcm {} vs amd {} ({:+.1}%), \
         {} supernodes over {} cols",
        rcm.nnz_lu,
        amd.nnz_lu,
        100.0 * (amd.nnz_lu as f64 - rcm.nnz_lu as f64) / rcm.nnz_lu as f64,
        rcm.factor_flops,
        amd.factor_flops,
        100.0 * (amd.factor_flops as f64 - rcm.factor_flops as f64) / rcm.factor_flops as f64,
        amd.supernodes,
        amd.supernode_cols,
    );
}

#[test]
fn fig7_dc_sweep_matches_natural_under_any_ordering() {
    // Fig 7(a) workload: the RTD divider swept through its NDR region.
    let sweep = |ordering| {
        let mut sim = Simulator::with_options(
            workloads::rtd_divider(50.0),
            SimOptions {
                ordering,
                ..Default::default()
            },
        )
        .expect("assembles");
        sim.run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.05))
            .expect("sweep runs")
    };
    let natural = sweep(OrderingChoice::Natural);
    for ordering in [
        OrderingChoice::Rcm,
        OrderingChoice::Amd,
        OrderingChoice::Auto,
    ] {
        let ds = sweep(ordering);
        assert_eq!(ds.axis_values(), natural.axis_values());
        for col in ["mid", "I(X1)"] {
            assert_columns_close(
                ds.column(col).unwrap(),
                natural.column(col).unwrap(),
                1e-9,
                &format!("{ordering:?}/{col}"),
            );
        }
    }
}

#[test]
fn fig8_transient_matches_natural_under_any_ordering() {
    // Fig 8(a) workload: the FET-RTD inverter transient.
    let tran = |ordering| {
        let mut sim = Simulator::with_options(
            workloads::fet_rtd_inverter(),
            SimOptions {
                ordering,
                ..Default::default()
            },
        )
        .expect("assembles");
        sim.run(Analysis::transient(0.5e-9, 20e-9))
            .expect("transient runs")
    };
    let natural = tran(OrderingChoice::Natural);
    for ordering in [
        OrderingChoice::Rcm,
        OrderingChoice::Amd,
        OrderingChoice::Auto,
    ] {
        let ds = tran(ordering);
        if ds.axis_values() == natural.axis_values() {
            // Same adaptive step sequence: compare sample by sample.
            assert_columns_close(
                ds.column("out").unwrap(),
                natural.column("out").unwrap(),
                1e-9,
                &format!("{ordering:?}/out"),
            );
        } else {
            // Permuted-arithmetic roundoff may legally flip a marginal
            // accept/reject decision and change the step sequence; the
            // *waveform* must still agree wherever both runs sampled.
            for (&t, &v_nat) in natural
                .axis_values()
                .iter()
                .zip(natural.column("out").unwrap())
            {
                let v = ds.at("out", t).unwrap();
                assert!(
                    (v - v_nat).abs() <= 1e-6 * v_nat.abs().max(1.0),
                    "{ordering:?}/out at t = {t}: {v} vs {v_nat}"
                );
            }
        }
    }
}

#[test]
fn mesh20_sweep_matches_natural_under_amd() {
    // The workload where fill actually differs: ordered solves must still
    // track natural-order physics point by point.
    let sweep = |ordering| {
        let mut sim = Simulator::with_options(
            workloads::rtd_mesh_n(20),
            SimOptions {
                ordering,
                ..Default::default()
            },
        )
        .expect("assembles");
        sim.run(Analysis::dc_sweep("V1", 0.0, 1.0, 0.1))
            .expect("sweep runs")
    };
    let natural = sweep(OrderingChoice::Natural);
    let amd = sweep(OrderingChoice::Amd);
    for col in ["g0_0", "g9_9", "g19_19", "I(V1)"] {
        assert_columns_close(
            amd.column(col).unwrap(),
            natural.column(col).unwrap(),
            1e-9,
            col,
        );
    }
}

#[test]
fn default_auto_is_bit_identical_to_natural_below_threshold() {
    // The Table I 10×10 mesh (102 unknowns) sits below the auto-AMD
    // threshold: a default session must resolve to natural order and stay
    // bit-identical to an explicitly pinned natural session (which is in
    // turn the exact pre-ordering pipeline).
    const { assert!(10 * 10 + 2 < OrderingChoice::AUTO_AMD_THRESHOLD) };
    let mut auto_sim = Simulator::new(workloads::rtd_mesh_n(10)).expect("assembles");
    let mut nat_sim = Simulator::with_options(
        workloads::rtd_mesh_n(10),
        SimOptions {
            ordering: OrderingChoice::Natural,
            ..Default::default()
        },
    )
    .expect("assembles");
    let a = auto_sim
        .run(Analysis::dc_sweep("V1", 0.0, 2.0, 0.1))
        .expect("sweep");
    let n = nat_sim
        .run(Analysis::dc_sweep("V1", 0.0, 2.0, 0.1))
        .expect("sweep");
    for name in a.names() {
        assert_eq!(
            a.column(name).unwrap(),
            n.column(name).unwrap(),
            "column {name} not bit-identical under default ordering"
        );
    }
    assert_eq!(auto_sim.ordering_name(), "natural");
}

#[test]
fn auto_resolves_to_amd_above_threshold() {
    let mut sim = Simulator::new(workloads::rtd_mesh_n(20)).expect("assembles");
    assert_eq!(sim.ordering_name(), "auto", "cold session reports choice");
    sim.run(Analysis::op()).expect("op solves");
    assert_eq!(sim.ordering_name(), "amd");
}

#[test]
fn ordered_sharded_sweep_bit_identical_across_worker_counts() {
    // Ordering is a pure function of the pattern, so sharded sweeps under
    // AMD keep the bit-identical-at-any-worker-count contract.
    let run = |workers: usize| {
        let mut sim = Simulator::with_options(
            workloads::rtd_mesh_n(12),
            SimOptions {
                ordering: OrderingChoice::Amd,
                ..Default::default()
            },
        )
        .expect("assembles");
        let analysis = Analysis::dc_sweep("V1", 0.0, 2.0, 0.05);
        let analysis = if workers == 0 {
            analysis
        } else {
            analysis.plan(ExecPlan::sharded(workers))
        };
        sim.run(analysis).expect("sweep runs")
    };
    let serial = run(0);
    for workers in [1, 2, 4, 7] {
        let sharded = run(workers);
        for name in serial.names() {
            assert_eq!(
                serial.column(name).unwrap(),
                sharded.column(name).unwrap(),
                "workers={workers}, column {name}"
            );
        }
    }
    // And repeated runs are bit-deterministic.
    let again = run(0);
    assert_eq!(serial.column("g0_0"), again.column("g0_0"));
}

#[test]
fn telemetry_flows_through_datasets() {
    let mut sim = Simulator::with_options(
        workloads::rtd_mesh_n(10),
        SimOptions {
            ordering: OrderingChoice::Amd,
            ..Default::default()
        },
    )
    .expect("assembles");
    let sweep = sim
        .run(Analysis::dc_sweep("V1", 0.0, 1.0, 0.1))
        .expect("sweep runs");
    assert!(sweep.stats.nnz_lu > 0);
    assert!(sweep.stats.fill_ratio >= 1.0);
    assert!(sweep.stats.factor_flops > 0, "warm-up factor flops counted");
    assert!(
        sweep.stats.refactor_flops > 0,
        "per-point refactor flops counted"
    );
    assert!(
        sweep.stats.refactors > sweep.stats.full_factors,
        "sweep is refactor-dominated: {}",
        sweep.stats
    );
    // The Display form surfaces the new counters.
    let text = sweep.stats.to_string();
    assert!(text.contains("lu nnz"), "{text}");
    assert!(text.contains("fill"), "{text}");
}
