//! # Nano-Sim
//!
//! A step-wise equivalent conductance (SWEC) based statistical circuit
//! simulator for nanotechnology devices — a from-scratch Rust reproduction
//! of *"Nano-Sim: A Step Wise Equivalent Conductance based Statistical
//! Simulator for Nanotechnology Circuit Design"* (Sukhwani, Padmanabhan,
//! Wang — DATE 2005).
//!
//! Nano-devices such as resonant tunneling diodes and carbon nanotubes have
//! *non-monotonic* I-V curves whose negative differential resistance (NDR)
//! breaks Newton–Raphson simulators. Nano-Sim's two ideas:
//!
//! 1. **SWEC** — replace each nonlinear device at every time point by the
//!    *positive* secant conductance `Geq = I(V)/V`, making each step one
//!    linear solve with no Newton iteration and no NDR failure;
//! 2. **Euler–Maruyama** — model uncertain inputs as Wiener processes and
//!    integrate the resulting stochastic state equation directly,
//!    predicting transient peaks instead of only averages.
//!
//! The public surface is the **session API**: open a
//! [`Simulator`](crate::core::sim::Simulator) on a circuit, run typed
//! [`Analysis`](crate::core::sim::Analysis) requests through it, and read
//! every result through the one [`Dataset`](crate::core::sim::Dataset)
//! model. Scale-out (sharded DC sweeps, parallel ensembles) is an
//! [`ExecPlan`](crate::core::sim::ExecPlan), not a different engine — and
//! sharded runs are bit-identical to serial ones.
//!
//! This facade crate re-exports the workspace and provides the
//! [`workloads`] used by the paper's experiments (RTD dividers, the FET-RTD
//! inverter of Figure 8, the RTD D-flip-flop of Figure 9, the noisy node of
//! Figure 10, and scalable RTD meshes for Table I).
//!
//! ## Quickstart
//!
//! ```
//! use nanosim::prelude::*;
//!
//! # fn main() -> Result<(), nanosim::core::SimError> {
//! // Sweep the paper's RTD divider (Figure 7(a)) and find the peak.
//! let circuit = nanosim::workloads::rtd_divider(50.0);
//! let mut sim = Simulator::new(circuit)?;
//! let sweep = sim.run(Analysis::dc_sweep("V1", 0.0, 5.0, 0.05))?;
//! let (v_peak, i_peak) = sweep.peak("I(X1)").expect("RTD has a peak");
//! assert!(v_peak > 2.0 && v_peak < 4.5);
//! assert!(i_peak > 1e-3);
//!
//! // The same sweep sharded over 4 workers: faster, bit-identical.
//! let sharded = sim.run(
//!     Analysis::dc_sweep("V1", 0.0, 5.0, 0.05).plan(ExecPlan::sharded(4)),
//! )?;
//! assert_eq!(sweep.column("I(X1)"), sharded.column("I(X1)"));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub use nanosim_circuit as circuit;
pub use nanosim_core as core;
pub use nanosim_devices as devices;
pub use nanosim_numeric as numeric;
pub use nanosim_sde as sde;
pub use nanosim_serve as serve;

pub mod workloads;

/// Commonly used types, importable in one line.
pub mod prelude {
    pub use nanosim_circuit::{
        lint_circuit, lint_deck, Diagnostic, LintCode, LintReport, Severity,
    };
    pub use nanosim_circuit::{
        parse_netlist, write_netlist, AnalysisDirective, Circuit, CircuitBuilder, ParamValue,
        SubcktDef, SubcktLib,
    };
    pub use nanosim_circuit::{CircuitError, MnaSystem};
    pub use nanosim_core::analysis::{run_deck, run_deck_with};
    pub use nanosim_core::em::EmOptions;
    pub use nanosim_core::mla::MlaOptions;
    pub use nanosim_core::nr::{FailurePolicy, NrEngine, NrOptions};
    pub use nanosim_core::pwl::PwlOptions;
    pub use nanosim_core::sim::{
        run_ensemble, Analysis, AnalysisKind, Axis, Dataset, ExecPlan, PreflightMode, SimOptions,
        Simulator,
    };
    pub use nanosim_core::swec::{DcMode, IntegrationMethod, SwecOptions};
    pub use nanosim_core::OrderingChoice;
    pub use nanosim_core::{Budget, BudgetStop, CancelToken, SimError};
    pub use nanosim_core::{DcSweepResult, EngineStats, TransientResult, Waveform};
    pub use nanosim_core::{HealthVerdict, RescueOptions, RescueRung, RescueTrace};
    pub use nanosim_devices::mosfet::{MosType, Mosfet, MosfetParams};
    pub use nanosim_devices::nanowire::{Nanowire, NanowireParams};
    pub use nanosim_devices::rtd::{Rtd, RtdParams, RtdRegion};
    pub use nanosim_devices::rtt::Rtt;
    pub use nanosim_devices::sources::{PulseParams, SinParams, SourceWaveform};
    pub use nanosim_devices::NonlinearTwoTerminal;
    pub use nanosim_numeric::fault::{Fault, FaultPlan};
    pub use nanosim_numeric::FlopCounter;

    // The engine types predating the session API (`SwecDcSweep`,
    // `SwecTransient`, `EmEngine`, `MlaEngine`, `PwlEngine`) were
    // deprecated here for one release and are now gone from the prelude.
    // They remain available under `nanosim::core::{swec, em, mla, pwl}`
    // for engine-level comparisons and failure forensics; new code should
    // go through `Simulator::run(Analysis::...)`.
}
