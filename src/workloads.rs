//! The circuits behind every experiment in the paper.
//!
//! | Builder | Paper artifact |
//! |---------|----------------|
//! | [`rtd_divider`] | Figure 7(a) DC workload, Table I row |
//! | [`nanowire_divider`] | Figure 7(b) DC workload, Table I row |
//! | [`fet_rtd_inverter`] | Figure 8(a) transient workload |
//! | [`rtd_d_flip_flop`] | Figure 9(a) clocked-latch workload |
//! | [`noisy_rc_node`] | Figure 10 stochastic workload |
//! | [`rtd_chain`], [`rtd_mesh`] | Table I scaling rows |
//!
//! Every builder returns a validated [`Circuit`]; source/element names are
//! stable so analyses can reference them (`"V1"`, `"Vin"`, `"Vclk"`,
//! `"out"`, ...).

use nanosim_circuit::Circuit;
use nanosim_devices::mosfet::{MosType, Mosfet, MosfetParams};
use nanosim_devices::nanowire::Nanowire;
use nanosim_devices::rtd::Rtd;
use nanosim_devices::sources::{PulseParams, SourceWaveform};

/// Figure 7(a): a voltage source driving an RTD through a series resistor
/// ("the circuit consisted of a series combination of a resistor and an RTD
/// across a voltage source"). Sweep `V1`; the RTD current is `I(X1)` and
/// the RTD voltage is node `mid`.
pub fn rtd_divider(series_ohms: f64) -> Circuit {
    let mut ckt = Circuit::new();
    ckt.set_title("rtd voltage divider (paper fig. 7a)");
    let vin = ckt.node("in");
    let mid = ckt.node("mid");
    ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(0.0))
        .expect("fresh names");
    ckt.add_resistor("R1", vin, mid, series_ohms)
        .expect("positive resistance");
    ckt.add_rtd("X1", mid, Circuit::GROUND, Rtd::date2005())
        .expect("fresh names");
    ckt
}

/// Figure 7(b): the same divider with a quantum wire / CNT in place of the
/// RTD ("a range of voltages were applied to the series combination of a
/// nanowire and a resistor"). Sweep `V1`; the wire current is `I(W1)`.
pub fn nanowire_divider(series_ohms: f64) -> Circuit {
    let mut ckt = Circuit::new();
    ckt.set_title("nanowire voltage divider (paper fig. 7b)");
    let vin = ckt.node("in");
    let mid = ckt.node("mid");
    ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(0.0))
        .expect("fresh names");
    ckt.add_resistor("R1", vin, mid, series_ohms)
        .expect("positive resistance");
    ckt.add_nanowire("W1", mid, Circuit::GROUND, Nanowire::metallic_cnt())
        .expect("fresh names");
    ckt
}

/// The wide NMOS used as the inverter pull-down and the flip-flop data
/// switch — strong enough to out-drive an RTD branch.
fn switch_fet() -> Mosfet {
    Mosfet::new(MosfetParams {
        mos_type: MosType::Nmos,
        k: 1e-4,
        w: 100.0,
        l: 1.0,
        vth: 1.0,
        lambda: 0.0,
    })
    .expect("valid parameters")
}

/// Figure 8(a): the FET-RTD inverter. Two series RTDs between `vdd` (5 V)
/// and ground form the load; the output is "the junction of two RTDs"
/// (node `out`), and the input FET in parallel with the lower RTD pulls it
/// down. `Vin` pulses 0 → 5 V (paper §5.2).
///
/// With `Vin` low the RTD pair divides 5 V symmetrically (`out` ≈ 2.5 V);
/// with `Vin` high the FET wins and `out` drops — an inverter whose upper
/// RTD is pushed through its NDR region at every edge, which is what breaks
/// SPICE3 in Figure 8(c).
pub fn fet_rtd_inverter() -> Circuit {
    let mut ckt = Circuit::new();
    ckt.set_title("fet-rtd inverter (paper fig. 8a)");
    let vdd = ckt.node("vdd");
    let out = ckt.node("out");
    let vin = ckt.node("in");
    ckt.add_voltage_source("Vdd", vdd, Circuit::GROUND, SourceWaveform::dc(5.0))
        .expect("fresh names");
    ckt.add_voltage_source(
        "Vin",
        vin,
        Circuit::GROUND,
        SourceWaveform::pulse(PulseParams {
            v1: 0.0,
            v2: 5.0,
            delay: 5e-9,
            rise: 1e-9,
            fall: 1e-9,
            width: 44e-9,
            period: 100e-9,
        })
        .expect("valid pulse"),
    )
    .expect("fresh names");
    ckt.add_rtd("X1", vdd, out, Rtd::date2005())
        .expect("fresh names");
    ckt.add_rtd("X2", out, Circuit::GROUND, Rtd::date2005())
        .expect("fresh names");
    ckt.add_mosfet("M1", out, vin, Circuit::GROUND, switch_fet())
        .expect("fresh names");
    ckt.add_capacitor("CL", out, Circuit::GROUND, 10e-15)
        .expect("fresh names");
    // Small input-side parasitic keeps the source node well-behaved.
    ckt.add_capacitor("Cin", vin, Circuit::GROUND, 1e-15)
        .expect("fresh names");
    ckt
}

/// The Figure 8(c) stress variant of the inverter: narrow-resonance RTDs
/// (`Rtd::sharp_valley`, NDR window ≈ 0.1 V) at `Vdd = 4 V`, which parks
/// the divider in its bistable region. Plain Newton–Raphson fails on steps
/// of this deck (reported via `NrTransientResult::failures`) while SWEC
/// completes — the paper's "SPICE3 fails to converge to the correct
/// solution".
pub fn fet_rtd_inverter_stress() -> Circuit {
    let mut ckt = Circuit::new();
    ckt.set_title("fet-rtd inverter, NDR stress variant (paper fig. 8c)");
    let vdd = ckt.node("vdd");
    let out = ckt.node("out");
    let vin = ckt.node("in");
    ckt.add_voltage_source("Vdd", vdd, Circuit::GROUND, SourceWaveform::dc(4.0))
        .expect("fresh names");
    ckt.add_voltage_source(
        "Vin",
        vin,
        Circuit::GROUND,
        SourceWaveform::pulse(PulseParams {
            v1: 0.0,
            v2: 5.0,
            delay: 5e-9,
            rise: 1e-9,
            fall: 1e-9,
            width: 44e-9,
            period: 100e-9,
        })
        .expect("valid pulse"),
    )
    .expect("fresh names");
    ckt.add_rtd("X1", vdd, out, Rtd::sharp_valley())
        .expect("fresh names");
    ckt.add_rtd("X2", out, Circuit::GROUND, Rtd::sharp_valley())
        .expect("fresh names");
    ckt.add_mosfet("M1", out, vin, Circuit::GROUND, switch_fet())
        .expect("fresh names");
    ckt.add_capacitor("CL", out, Circuit::GROUND, 10e-15)
        .expect("fresh names");
    ckt.add_capacitor("Cin", vin, Circuit::GROUND, 1e-15)
        .expect("fresh names");
    ckt
}

/// Figure 9(a): the RTD D-flip-flop — a MOBILE-style clocked latch
/// (Mazumder et al., paper ref. \[6\]). Two series RTDs are biased by the
/// clock; the data FET in parallel with the *load* RTD steers which RTD
/// switches into its high-voltage state on the rising clock edge, latching
/// `D` onto `out` until the clock falls.
///
/// Default timing matches Figure 9: 100 ns clock period (rising edges at
/// 50, 150, 250, **350** ns...), data switching at **300 ns** — the output
/// follows at the 350 ns edge.
pub fn rtd_d_flip_flop() -> Circuit {
    let mut ckt = Circuit::new();
    ckt.set_title("rtd d flip-flop (paper fig. 9a)");
    let clk = ckt.node("clk");
    let out = ckt.node("out");
    let d = ckt.node("d");
    ckt.add_voltage_source(
        "Vclk",
        clk,
        Circuit::GROUND,
        SourceWaveform::pulse(PulseParams {
            v1: 0.0,
            v2: 6.5,
            delay: 50e-9,
            rise: 5e-9,
            fall: 5e-9,
            width: 40e-9,
            period: 100e-9,
        })
        .expect("valid pulse"),
    )
    .expect("fresh names");
    ckt.add_voltage_source(
        "Vd",
        d,
        Circuit::GROUND,
        SourceWaveform::pwl(vec![(0.0, 0.0), (300e-9, 0.0), (302e-9, 5.0), (1e-3, 5.0)])
            .expect("valid pwl"),
    )
    .expect("fresh names");
    // Load RTD (clk -> out) with the data FET in parallel.
    ckt.add_rtd("Xload", clk, out, Rtd::date2005())
        .expect("fresh names");
    ckt.add_mosfet("Md", clk, d, out, switch_fet())
        .expect("fresh names");
    // Driver RTD (out -> gnd).
    ckt.add_rtd("Xdrv", out, Circuit::GROUND, Rtd::date2005())
        .expect("fresh names");
    ckt.add_capacitor("CL", out, Circuit::GROUND, 10e-15)
        .expect("fresh names");
    ckt.add_capacitor("Cd", d, Circuit::GROUND, 1e-15)
        .expect("fresh names");
    ckt
}

/// Figure 10: a nanoscale node with parasitic RC driven by an uncertain
/// (white-noise) current — the Ornstein–Uhlenbeck workload of §5.3.
///
/// `g` siemens to ground, `c` farads to ground, DC drive `i_dc` and noise
/// intensity `i_noise` (A·√s). The node is named `v`.
///
/// # Panics
/// Panics if `g`, `c` are not positive or `i_noise` is negative.
pub fn noisy_rc_node(g: f64, c: f64, i_dc: f64, i_noise: f64) -> Circuit {
    let mut ckt = Circuit::new();
    ckt.set_title("noisy rc node (paper fig. 10)");
    let v = ckt.node("v");
    ckt.add_current_source(
        "In",
        Circuit::GROUND,
        v,
        SourceWaveform::white_noise(i_dc, i_noise).expect("non-negative intensity"),
    )
    .expect("fresh names");
    ckt.add_resistor("R1", v, Circuit::GROUND, 1.0 / g)
        .expect("positive resistance");
    ckt.add_capacitor("C1", v, Circuit::GROUND, c)
        .expect("positive capacitance");
    ckt
}

/// The paper's Figure 10 parameter point: τ = 1 ns (g = 1 mS, c = 1 pF),
/// 0.85 V asymptotic operating point (the node reaches ≈ 0.54 V within the
/// 1 ns window) and noise sized so the 0–1 ns running maximum lands near
/// the paper's "possible performance peak about 0.6 V".
pub fn noisy_rc_node_fig10() -> Circuit {
    noisy_rc_node(1e-3, 1e-12, 0.85e-3, 2.2e-9)
}

/// Table I scaling workload: a chain of `n` R-RTD sections
/// (`in -R- m1 -R- m2 ...` with an RTD to ground at every tap). Node names
/// are `m1..mn`; devices are `X1..Xn`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn rtd_chain(n: usize) -> Circuit {
    assert!(n > 0, "chain needs at least one section");
    let mut ckt = Circuit::new();
    ckt.set_title(format!("rtd chain x{n} (table I)"));
    let vin = ckt.node("in");
    ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(0.0))
        .expect("fresh names");
    let mut prev = vin;
    for k in 1..=n {
        let node = ckt.node(&format!("m{k}"));
        ckt.add_resistor(&format!("R{k}"), prev, node, 50.0)
            .expect("fresh names");
        ckt.add_rtd(&format!("X{k}"), node, Circuit::GROUND, Rtd::date2005())
            .expect("fresh names");
        prev = node;
    }
    ckt
}

/// Table I scaling workload: an `n x n` resistor mesh with an RTD to ground
/// at every grid node and the source at the corner. Grid nodes are named
/// `g<r>_<c>`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn rtd_mesh(n: usize) -> Circuit {
    assert!(n > 0, "mesh needs at least one node");
    let mut ckt = Circuit::new();
    ckt.set_title(format!("rtd mesh {n}x{n} (table I)"));
    let vin = ckt.node("in");
    ckt.add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(0.0))
        .expect("fresh names");
    // Corner feed.
    let first = ckt.node("g0_0");
    ckt.add_resistor("Rin", vin, first, 50.0).expect("fresh");
    for r in 0..n {
        for c in 0..n {
            let here = ckt.node(&format!("g{r}_{c}"));
            ckt.add_rtd(&format!("X{r}_{c}"), here, Circuit::GROUND, Rtd::date2005())
                .expect("fresh names");
            if c + 1 < n {
                let right = ckt.node(&format!("g{r}_{}", c + 1));
                ckt.add_resistor(&format!("Rh{r}_{c}"), here, right, 100.0)
                    .expect("fresh names");
            }
            if r + 1 < n {
                let down = ckt.node(&format!("g{}_{c}", r + 1));
                ckt.add_resistor(&format!("Rv{r}_{c}"), here, down, 100.0)
                    .expect("fresh names");
            }
        }
    }
    ckt
}

/// The ordering-bench entry point for arbitrary `n × n` meshes: the
/// Table I topology of [`rtd_mesh`] at any size, under the name the
/// fill-reducing-ordering benches sweep (`N ∈ {10, 20, 40}` in
/// `benches/ordering.rs`). The MNA system has `n² + 2` unknowns
/// (`n²` grid nodes, the feed node, one source branch current), so
/// `n = 10` stays below [`crate::prelude::OrderingChoice`]'s auto-AMD
/// threshold while `n ≥ 12` crosses it.
///
/// Equivalent hierarchical variants: [`rtd_mesh_cells`] (builder +
/// `.subckt`) and [`rtd_mesh_n_deck`] / [`rtd_mesh_deck`] (deck text) —
/// all produce the same flat topology, so ordering comparisons carry over.
///
/// # Panics
/// Panics if `n == 0`.
pub fn rtd_mesh_n(n: usize) -> Circuit {
    rtd_mesh(n)
}

/// The `.subckt` deck variant of [`rtd_mesh_n`] (same text as
/// [`rtd_mesh_deck`]): parse it to exercise the hierarchy frontend on the
/// exact meshes the ordering benches sweep.
///
/// # Panics
/// Panics if `n == 0`.
pub fn rtd_mesh_n_deck(n: usize) -> String {
    rtd_mesh_deck(n)
}

/// The Table I mesh expressed hierarchically: one `.subckt cell` holding
/// the repeated nano-cell (the RTD to ground), instantiated `n²` times,
/// with the grid resistors wired at top level.
///
/// Produces the **same flat circuit topology, node order and element
/// order** as [`rtd_mesh`] — only names differ by the deterministic
/// mangling (`X<r>_<c>` instances, `YRTD1.X<r>_<c>` devices) — so engine
/// results are bit-identical to the hand-unrolled mesh (locked by
/// `tests/hierarchy.rs`).
///
/// # Panics
/// Panics if `n == 0`.
pub fn rtd_mesh_cells(n: usize) -> Circuit {
    assert!(n > 0, "mesh needs at least one node");
    let mut b = nanosim_circuit::CircuitBuilder::new();
    b.set_title(format!("rtd mesh {n}x{n} as subckt cells (table I)"));
    let mut cell = nanosim_circuit::SubcktDef::new("cell", ["t"]);
    cell.rtd("YRTD1", "t", "0", Rtd::date2005());
    b.define(cell).expect("fresh definition");
    let vin = b.node("in");
    b.circuit_mut()
        .add_voltage_source("V1", vin, Circuit::GROUND, SourceWaveform::dc(0.0))
        .expect("fresh names");
    let first = b.node("g0_0");
    b.circuit_mut()
        .add_resistor("Rin", vin, first, 50.0)
        .expect("fresh");
    for r in 0..n {
        for c in 0..n {
            let here = b.node(&format!("g{r}_{c}"));
            b.instantiate(&format!("X{r}_{c}"), "cell", &[here], &[])
                .expect("cell instantiates");
            if c + 1 < n {
                let right = b.node(&format!("g{r}_{}", c + 1));
                b.circuit_mut()
                    .add_resistor(&format!("Rh{r}_{c}"), here, right, 100.0)
                    .expect("fresh names");
            }
            if r + 1 < n {
                let down = b.node(&format!("g{}_{c}", r + 1));
                b.circuit_mut()
                    .add_resistor(&format!("Rv{r}_{c}"), here, down, 100.0)
                    .expect("fresh names");
            }
        }
    }
    b.finish()
}

/// The Table I mesh as SPICE-like deck text: `.subckt cell` plus `n²`
/// `X` instance lines (the headline hierarchical-frontend demo; parsing
/// it reproduces [`rtd_mesh_cells`] exactly).
pub fn rtd_mesh_deck(n: usize) -> String {
    assert!(n > 0, "mesh needs at least one node");
    let mut deck = String::new();
    deck.push_str(&format!(
        ".title rtd mesh {n}x{n} as subckt cells (table I)\n"
    ));
    deck.push_str(".subckt cell t\nYRTD1 t 0\n.ends cell\n");
    deck.push_str("V1 in 0 DC 0\nRin in g0_0 50\n");
    for r in 0..n {
        for c in 0..n {
            deck.push_str(&format!("X{r}_{c} g{r}_{c} cell\n"));
            if c + 1 < n {
                deck.push_str(&format!("Rh{r}_{c} g{r}_{c} g{r}_{} 100\n", c + 1));
            }
            if r + 1 < n {
                deck.push_str(&format!("Rv{r}_{c} g{r}_{c} g{}_{c} 100\n", r + 1));
            }
        }
    }
    deck.push_str(".end\n");
    deck
}

/// Parameterized variant of [`rtd_mesh_deck`]: the grid and feed
/// resistances come from `.param rgrid`/`rfeed` globals referenced via
/// `{name}`, and the deck carries a `.dc` sweep directive so it can be
/// submitted to the service layer as-is. Override the parameters through
/// [`nanosim_circuit::parse_netlist_with_params`] (or a service
/// `BatchRequest`) to fan one topology into a whole resistance study —
/// every grid point shares the same sparsity pattern, so pooled sessions
/// stay warm across the sweep.
///
/// # Panics
/// Panics if `n == 0`.
pub fn rtd_mesh_param_deck(n: usize) -> String {
    assert!(n > 0, "mesh needs at least one node");
    let mut deck = String::new();
    deck.push_str(&format!(
        ".title rtd mesh {n}x{n} parameter study (table I)\n"
    ));
    deck.push_str(".param rgrid=100 rfeed=50\n");
    deck.push_str(".subckt cell t\nYRTD1 t 0\n.ends cell\n");
    deck.push_str("V1 in 0 DC 0\nRin in g0_0 {rfeed}\n");
    for r in 0..n {
        for c in 0..n {
            deck.push_str(&format!("X{r}_{c} g{r}_{c} cell\n"));
            if c + 1 < n {
                deck.push_str(&format!("Rh{r}_{c} g{r}_{c} g{r}_{} {{rgrid}}\n", c + 1));
            }
            if r + 1 < n {
                deck.push_str(&format!("Rv{r}_{c} g{r}_{c} g{}_{c} {{rgrid}}\n", r + 1));
            }
        }
    }
    deck.push_str(".dc V1 0 3 0.5\n.end\n");
    deck
}

/// Cartesian parameter grid over named axes, first axis slowest — the
/// batch front-end's fan-out order. Returns one `(name, value)` override
/// list per grid point; feed each to
/// [`nanosim_circuit::parse_netlist_with_params`] or a service
/// `BatchRequest`'s `grid`.
///
/// ```
/// let grid = nanosim::workloads::param_grid(&[
///     ("rgrid".into(), vec![50.0, 100.0]),
///     ("rfeed".into(), vec![25.0]),
/// ]);
/// assert_eq!(grid.len(), 2);
/// assert_eq!(grid[0], vec![("rgrid".into(), 50.0), ("rfeed".into(), 25.0)]);
/// ```
pub fn param_grid(axes: &[(String, Vec<f64>)]) -> Vec<Vec<(String, f64)>> {
    nanosim_serve::expand_axes(axes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_validate() {
        for (name, ckt) in [
            ("rtd_divider", rtd_divider(50.0)),
            ("nanowire_divider", nanowire_divider(100.0)),
            ("fet_rtd_inverter", fet_rtd_inverter()),
            ("rtd_d_flip_flop", rtd_d_flip_flop()),
            ("noisy_rc_node", noisy_rc_node_fig10()),
            ("rtd_chain", rtd_chain(4)),
            ("rtd_mesh", rtd_mesh(3)),
        ] {
            assert!(ckt.validate().is_ok(), "{name} failed validation");
        }
    }

    #[test]
    fn chain_and_mesh_scale() {
        assert_eq!(rtd_chain(1).elements().len(), 3);
        assert_eq!(rtd_chain(5).elements().len(), 11);
        // Mesh n x n: 1 source + 1 feed resistor + n^2 RTDs + 2n(n-1) wires.
        let n = 3;
        let expected = 2 + n * n + 2 * n * (n - 1);
        assert_eq!(rtd_mesh(n).elements().len(), expected);
    }

    #[test]
    fn stable_names_for_analyses() {
        let ckt = fet_rtd_inverter();
        assert!(ckt.element("Vin").is_some());
        assert!(ckt.element("X1").is_some());
        assert!(ckt.find_node("out").is_some());
        let ckt = rtd_d_flip_flop();
        assert!(ckt.element("Vclk").is_some());
        assert!(ckt.element("Vd").is_some());
        assert!(ckt.find_node("out").is_some());
    }

    #[test]
    #[should_panic(expected = "at least one section")]
    fn chain_rejects_zero() {
        rtd_chain(0);
    }

    #[test]
    fn param_deck_matches_mesh_topology_and_honors_overrides() {
        let n = 3;
        let base = nanosim_circuit::parse_netlist(&rtd_mesh_param_deck(n)).unwrap();
        let plain = nanosim_circuit::parse_netlist(&rtd_mesh_deck(n)).unwrap();
        assert_eq!(
            nanosim_circuit::topology_fingerprint(&base.circuit),
            nanosim_circuit::topology_fingerprint(&plain.circuit),
            "parameterized mesh must share the plain mesh's pattern"
        );
        assert_eq!(base.analyses.len(), 1, "deck carries its .dc directive");
        let over = nanosim_circuit::parse_netlist_with_params(
            &rtd_mesh_param_deck(n),
            &[("rgrid".into(), 220.0)],
        )
        .unwrap();
        assert_eq!(over.params["rgrid"], 220.0);
        assert_ne!(
            nanosim_circuit::deck_fingerprint(&base.circuit),
            nanosim_circuit::deck_fingerprint(&over.circuit),
            "override must change component values"
        );
        assert_eq!(
            nanosim_circuit::topology_fingerprint(&base.circuit),
            nanosim_circuit::topology_fingerprint(&over.circuit),
            "override must not change the pattern"
        );
    }

    #[test]
    fn param_grid_is_cartesian_first_axis_slowest() {
        let grid = param_grid(&[
            ("rgrid".into(), vec![50.0, 100.0]),
            ("rfeed".into(), vec![25.0, 75.0]),
        ]);
        assert_eq!(grid.len(), 4);
        assert_eq!(
            grid[0],
            vec![("rgrid".into(), 50.0), ("rfeed".into(), 25.0)]
        );
        assert_eq!(
            grid[1],
            vec![("rgrid".into(), 50.0), ("rfeed".into(), 75.0)]
        );
        assert_eq!(
            grid[3],
            vec![("rgrid".into(), 100.0), ("rfeed".into(), 75.0)]
        );
    }

    #[test]
    fn rtd_mesh_n_scales_to_bench_sizes() {
        for n in [10usize, 20, 40] {
            let ckt = rtd_mesh_n(n);
            let expected = 2 + n * n + 2 * n * (n - 1);
            assert_eq!(ckt.elements().len(), expected, "n = {n}");
            assert!(ckt.validate().is_ok(), "n = {n}");
            // The deck variant names the same cells.
            let deck = rtd_mesh_n_deck(n);
            assert!(deck.contains(&format!("X{}_{} g{}_{} cell", n - 1, n - 1, n - 1, n - 1)));
        }
    }
}
