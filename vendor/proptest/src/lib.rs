//! Offline stand-in for the subset of [proptest](https://crates.io/crates/proptest)
//! used by the Nano-Sim workspace.
//!
//! The build environment has no registry access, so this crate provides the
//! small API surface the test suites rely on — `Strategy` with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `collection::vec`, `Just`,
//! `ProptestConfig`, and the `proptest!` / `prop_assert!` / `prop_assume!`
//! macros — backed by a deterministic SplitMix64 generator. There is no
//! shrinking: a failing case panics with the usual assertion message, and the
//! deterministic seeding (derived from the test function name) makes failures
//! reproducible run-to-run.

use std::ops::Range;

/// Deterministic generator driving value production.
#[derive(Debug, Clone)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    /// Creates a runner from a seed (tests derive it from their name).
    pub fn new(seed: u64) -> Self {
        TestRunner {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }
}

/// Why a test case did not complete (drives `prop_assume!`).
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; try another input.
    Reject,
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value from the runner's stream.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, runner: &mut TestRunner) -> f64 {
        self.start + (self.end - self.start) * runner.next_f64()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                let span = (self.end - self.start) as u64;
                self.start + runner.below(span.max(1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// Either an exact length or a length range for [`vec()`].
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, runner: &mut TestRunner) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _runner: &mut TestRunner) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            let span = (self.end - self.start).max(1) as u64;
            self.start + runner.below(span) as usize
        }
    }

    /// Strategy for a `Vec` whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = self.len.pick(runner);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// A vector of `len` (exact or range) elements drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The usual one-line import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

/// FNV-1a hash of the test name, used to seed each property deterministically.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner =
                $crate::TestRunner::new($crate::seed_from_name(stringify!($name)));
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            while ran < config.cases {
                attempts += 1;
                assert!(
                    attempts < config.cases.saturating_mul(20).max(1000),
                    "too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $pat = $crate::Strategy::generate(&$strat, &mut runner);)+
                let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => ran += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Asserts inside a property body (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Rejects the current case when `cond` is false, drawing a fresh input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut r = TestRunner::new(1);
        for _ in 0..1000 {
            let x = (1.5f64..2.5).generate(&mut r);
            assert!((1.5..2.5).contains(&x));
            let n = (3usize..7).generate(&mut r);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut r = TestRunner::new(2);
        for _ in 0..200 {
            let v = collection::vec(0.0f64..1.0, 2usize..5).generate(&mut r);
            assert!(v.len() >= 2 && v.len() < 5);
        }
        let exact = collection::vec(0.0f64..1.0, 4usize).generate(&mut r);
        assert_eq!(exact.len(), 4);
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRunner::new(seed_from_name("x"));
        let mut b = TestRunner::new(seed_from_name("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself works end to end, including assume/assert.
        #[test]
        fn macro_roundtrip(x in 0.0f64..1.0, n in 1usize..4) {
            prop_assume!(x > 0.01);
            prop_assert!(x < 1.0, "x = {x}");
            prop_assert_eq!(n.min(3), n.min(3));
        }
    }
}
