//! Offline stand-in for the subset of [criterion](https://crates.io/crates/criterion)
//! used by the Nano-Sim bench suite.
//!
//! The build environment has no registry access, so this crate implements the
//! `Criterion` / `benchmark_group` / `bench_function` / `iter` surface with a
//! straightforward timing loop: a warm-up run, then `sample_size` timed
//! samples, reporting min/median/mean per benchmark. Statistical analysis,
//! HTML reports and command-line filtering of the real crate are out of
//! scope — swap in the real dependency when a registry is available.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a driver with default settings.
    pub fn default() -> Self {
        Criterion { _private: () }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 10, f);
        self
    }

    /// Hook for `criterion_main!`; the shim has no global reporting.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times the closure under the given name.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed samples.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean: Duration = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<40} min {:>12.3?}  median {:>12.3?}  mean {:>12.3?}  ({} samples)",
        min,
        median,
        mean,
        b.samples.len()
    );
}

/// Declares the benchmark entry list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut count = 0usize;
        group.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(count, 4);
    }
}
